//! Byte-exact heap tuple encoding, following PostgreSQL 8.3's layout:
//! a 23-byte header, an optional null bitmap, alignment padding before
//! each attribute, and MAXALIGN padding at the end.
//!
//! The encoder exists so that "materializing" a design feature in the
//! substrate produces *real* page counts to compare against the what-if
//! estimates (experiment E5 and the interactive scenario's plan
//! verification).

use parinda_catalog::layout::{HEAP_TUPLE_HEADER, MAX_ALIGN};
use parinda_catalog::{Column, Datum, SqlType};

/// Encode a row into its on-disk byte length (we do not store actual bytes
/// beyond what sizing needs, but the arithmetic is exact per value).
///
/// Returns `None` if the row arity does not match the schema.
pub fn tuple_disk_size(columns: &[Column], row: &[Datum]) -> Option<usize> {
    if columns.len() != row.len() {
        return None;
    }
    let has_nullable = columns.iter().any(|c| c.nullable) || row.iter().any(|d| d.is_null());
    let bitmap = if has_nullable { columns.len().div_ceil(8) } else { 0 };
    let mut size = MAX_ALIGN.align_up(HEAP_TUPLE_HEADER + bitmap);
    for (c, d) in columns.iter().zip(row) {
        if d.is_null() {
            continue; // nulls occupy no data space
        }
        size = c.ty.align().align_up(size);
        size += d.stored_size(c.ty);
    }
    Some(MAX_ALIGN.align_up(size))
}

/// Size of one B-tree index entry for `row`'s key values: the paper's
/// per-row overhead `o` plus the aligned key columns.
pub fn index_entry_size(key_columns: &[Column], key: &[Datum]) -> Option<usize> {
    if key_columns.len() != key.len() {
        return None;
    }
    let mut size = parinda_catalog::layout::INDEX_ROW_OVERHEAD;
    for (c, d) in key_columns.iter().zip(key) {
        size = c.ty.align().align_up(size);
        size += if d.is_null() { 0 } else { d.stored_size(c.ty) };
    }
    Some(MAX_ALIGN.align_up(size))
}

/// Validate that a datum is storable under the given type (used by loaders
/// to fail fast on generator bugs).
pub fn datum_matches_type(d: &Datum, ty: SqlType) -> bool {
    matches!(
        (d, ty),
        (Datum::Null, _)
            | (Datum::Bool(_), SqlType::Bool)
            | (Datum::Int(_), SqlType::Int2 | SqlType::Int4 | SqlType::Int8)
            | (Datum::Int(_), SqlType::Date | SqlType::Timestamp)
            | (Datum::Float(_), SqlType::Float4 | SqlType::Float8)
            | (Datum::Str(_), SqlType::Text | SqlType::VarChar(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, ty: SqlType) -> Column {
        Column::new(name, ty).not_null()
    }

    #[test]
    fn fixed_width_tuple_size() {
        // header 23 -> 24; int8 (8) + int4 (4) = 36 -> MAXALIGN 40
        let cols = vec![col("a", SqlType::Int8), col("b", SqlType::Int4)];
        let row = vec![Datum::Int(1), Datum::Int(2)];
        assert_eq!(tuple_disk_size(&cols, &row), Some(40));
    }

    #[test]
    fn padding_before_wide_column() {
        // bool at 24, padding to 32 for int8, then 8 -> 40
        let cols = vec![col("f", SqlType::Bool), col("a", SqlType::Int8)];
        let row = vec![Datum::Bool(true), Datum::Int(1)];
        assert_eq!(tuple_disk_size(&cols, &row), Some(40));
    }

    #[test]
    fn null_values_take_no_space_but_force_bitmap() {
        let cols = vec![
            Column::new("a", SqlType::Int8),
            Column::new("b", SqlType::Int8),
        ];
        let full = tuple_disk_size(&cols, &[Datum::Int(1), Datum::Int(2)]).unwrap();
        let with_null = tuple_disk_size(&cols, &[Datum::Int(1), Datum::Null]).unwrap();
        assert!(with_null < full);
    }

    #[test]
    fn arity_mismatch_is_none() {
        let cols = vec![col("a", SqlType::Int4)];
        assert_eq!(tuple_disk_size(&cols, &[]), None);
    }

    #[test]
    fn string_size_depends_on_length() {
        let cols = vec![col("s", SqlType::Text)];
        let short = tuple_disk_size(&cols, &[Datum::Str("ab".into())]).unwrap();
        let long = tuple_disk_size(&cols, &[Datum::Str("x".repeat(100))]).unwrap();
        assert!(long > short);
    }

    #[test]
    fn index_entry_has_row_overhead() {
        let cols = vec![col("a", SqlType::Int8)];
        // 24 overhead + 8 key = 32
        assert_eq!(index_entry_size(&cols, &[Datum::Int(5)]), Some(32));
    }

    #[test]
    fn datum_type_checks() {
        assert!(datum_matches_type(&Datum::Int(1), SqlType::Int4));
        assert!(datum_matches_type(&Datum::Null, SqlType::Float8));
        assert!(!datum_matches_type(&Datum::Str("x".into()), SqlType::Int4));
        assert!(!datum_matches_type(&Datum::Float(1.0), SqlType::Int8));
    }
}
