//! # parinda-storage
//!
//! Storage-engine substrate: byte-exact heap tuples and pages (PostgreSQL
//! 8.3 layout), append-only heap files, bulk-loaded B-tree indexes with
//! measured page counts, and a [`Database`] that binds them to catalog
//! objects.
//!
//! PARINDA's pitch is that simulating a design feature is orders of
//! magnitude cheaper than building it; this crate is the "building it"
//! side of that comparison (experiment E2) and the ground truth for the
//! Equation-1 accuracy experiment (E5).

#![allow(missing_docs)]

pub mod btree;
pub mod database;
pub mod heap;
pub mod tuple;

pub use btree::{key_cmp, BTree, Entry};
pub use database::Database;
pub use heap::{HeapError, HeapFile, Tid};
pub use tuple::{index_entry_size, tuple_disk_size};
