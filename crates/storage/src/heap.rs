//! In-memory heap files with exact page accounting.
//!
//! Rows are kept decoded (the executor reads them directly) while page
//! boundaries are computed with the byte-exact encoder, so `page_count`
//! reports what PostgreSQL's `relpages` would after a fresh load.

use parinda_catalog::layout::{usable_page_bytes, ITEM_POINTER};
use parinda_catalog::{Column, Datum};

use crate::tuple::{datum_matches_type, tuple_disk_size};

/// Tuple identifier: (page number, slot within page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid {
    pub page: u32,
    pub slot: u16,
}

/// Errors raised when loading rows into a heap.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapError {
    /// Row arity does not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value is incompatible with its column type.
    TypeMismatch { column: String },
    /// A NOT NULL column received a NULL.
    NullViolation { column: String },
    /// A load referenced a table the catalog does not know.
    UnknownTable { table: String },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, table has {expected} columns")
            }
            HeapError::TypeMismatch { column } => {
                write!(f, "value incompatible with column {column}")
            }
            HeapError::NullViolation { column } => {
                write!(f, "NULL in NOT NULL column {column}")
            }
            HeapError::UnknownTable { table } => {
                write!(f, "unknown table {table}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// A heap file: the rows of one table, packed into logical pages.
#[derive(Debug, Clone)]
pub struct HeapFile {
    columns: Vec<Column>,
    rows: Vec<Vec<Datum>>,
    /// Tid of each row, parallel to `rows`.
    tids: Vec<Tid>,
    /// Free bytes remaining in the current (last) page.
    current_free: usize,
    current_page: u32,
    current_slot: u16,
    page_count: u64,
}

impl HeapFile {
    /// An empty heap for rows of the given shape.
    pub fn new(columns: Vec<Column>) -> Self {
        HeapFile {
            columns,
            rows: Vec::new(),
            tids: Vec::new(),
            current_free: usable_page_bytes(),
            current_page: 0,
            current_slot: 0,
            page_count: 1,
        }
    }

    /// Schema of the stored rows.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a row, assigning it a [`Tid`].
    pub fn insert(&mut self, row: Vec<Datum>) -> Result<Tid, HeapError> {
        if row.len() != self.columns.len() {
            return Err(HeapError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        for (c, d) in self.columns.iter().zip(&row) {
            if d.is_null() {
                if !c.nullable {
                    return Err(HeapError::NullViolation { column: c.name.clone() });
                }
            } else if !datum_matches_type(d, c.ty) {
                return Err(HeapError::TypeMismatch { column: c.name.clone() });
            }
        }
        let size = tuple_disk_size(&self.columns, &row).expect("arity checked above")
            + ITEM_POINTER;
        if size > self.current_free {
            self.current_page += 1;
            self.current_slot = 0;
            self.current_free = usable_page_bytes();
            self.page_count += 1;
        }
        self.current_free -= size.min(self.current_free);
        let tid = Tid { page: self.current_page, slot: self.current_slot };
        self.current_slot += 1;
        self.tids.push(tid);
        self.rows.push(row);
        Ok(tid)
    }

    /// Bulk-load rows; returns the number inserted.
    pub fn load<I: IntoIterator<Item = Vec<Datum>>>(&mut self, rows: I) -> Result<usize, HeapError> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Number of pages the rows occupy (≥ 1, like `relpages`).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Fetch a row by position (not Tid); positions are stable because the
    /// substrate heap is append-only.
    pub fn row(&self, pos: usize) -> Option<&[Datum]> {
        self.rows.get(pos).map(|r| r.as_slice())
    }

    /// Fetch a row by its tuple id.
    pub fn fetch(&self, tid: Tid) -> Option<&[Datum]> {
        // tids are assigned in insertion order, so binary search works.
        let pos = self.tids.binary_search(&tid).ok()?;
        self.row(pos)
    }

    /// Iterate all rows in physical order with their tids.
    pub fn scan(&self) -> impl Iterator<Item = (Tid, &[Datum])> + '_ {
        self.tids.iter().copied().zip(self.rows.iter().map(|r| r.as_slice()))
    }

    /// Extract one column's values (used by ANALYZE).
    pub fn column_values(&self, idx: usize) -> Vec<Datum> {
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::SqlType;

    fn heap() -> HeapFile {
        HeapFile::new(vec![
            Column::new("id", SqlType::Int8).not_null(),
            Column::new("v", SqlType::Float8),
        ])
    }

    #[test]
    fn insert_and_fetch() {
        let mut h = heap();
        let tid = h.insert(vec![Datum::Int(1), Datum::Float(0.5)]).unwrap();
        assert_eq!(h.fetch(tid).unwrap()[0], Datum::Int(1));
        assert_eq!(h.row_count(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut h = heap();
        assert!(matches!(
            h.insert(vec![Datum::Int(1)]),
            Err(HeapError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn type_checked() {
        let mut h = heap();
        assert!(matches!(
            h.insert(vec![Datum::Float(1.0), Datum::Float(2.0)]),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn not_null_enforced() {
        let mut h = heap();
        assert!(matches!(
            h.insert(vec![Datum::Null, Datum::Float(1.0)]),
            Err(HeapError::NullViolation { .. })
        ));
        // nullable column accepts NULL
        assert!(h.insert(vec![Datum::Int(1), Datum::Null]).is_ok());
    }

    #[test]
    fn pages_grow_with_rows() {
        let mut h = heap();
        // tuple: header 24 + 16 data = 40, +4 pointer = 44; 8168/44 ≈ 185/page
        for i in 0..1000 {
            h.insert(vec![Datum::Int(i), Datum::Float(i as f64)]).unwrap();
        }
        assert_eq!(h.row_count(), 1000);
        let expected = (1000f64 / (8168f64 / 44f64).floor()).ceil() as u64;
        assert_eq!(h.page_count(), expected);
    }

    #[test]
    fn page_count_matches_layout_estimate_closely() {
        let cols = vec![
            Column::new("id", SqlType::Int8).not_null(),
            Column::new("a", SqlType::Float8).not_null(),
            Column::new("b", SqlType::Int4).not_null(),
        ];
        let mut h = HeapFile::new(cols.clone());
        for i in 0..20_000 {
            h.insert(vec![Datum::Int(i), Datum::Float(0.0), Datum::Int(1)]).unwrap();
        }
        let est = parinda_catalog::layout::heap_pages(20_000, &cols);
        let actual = h.page_count();
        let ratio = est as f64 / actual as f64;
        assert!((0.95..=1.05).contains(&ratio), "est={est} actual={actual}");
    }

    #[test]
    fn scan_returns_all_in_order() {
        let mut h = heap();
        for i in 0..10 {
            h.insert(vec![Datum::Int(i), Datum::Null]).unwrap();
        }
        let got: Vec<i64> = h.scan().map(|(_, r)| r[0].as_i64().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tids_increase() {
        let mut h = heap();
        let a = h.insert(vec![Datum::Int(1), Datum::Null]).unwrap();
        let b = h.insert(vec![Datum::Int(2), Datum::Null]).unwrap();
        assert!(b > a);
    }

    #[test]
    fn column_values_extracts() {
        let mut h = heap();
        h.insert(vec![Datum::Int(7), Datum::Float(1.0)]).unwrap();
        assert_eq!(h.column_values(0), vec![Datum::Int(7)]);
    }
}
