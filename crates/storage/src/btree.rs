//! A real B-tree index: bulk-built from key/tid pairs with byte-exact leaf
//! packing, so the measured leaf-page count can be compared against the
//! what-if estimate from Equation 1 (experiment E5).

use std::cmp::Ordering;
use std::ops::Bound;

use parinda_catalog::layout::{usable_page_bytes, ITEM_POINTER};
use parinda_catalog::{Column, Datum};

use crate::heap::Tid;
use crate::tuple::index_entry_size;

/// One index entry: the key column values plus the heap tuple it points to.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub key: Vec<Datum>,
    pub tid: Tid,
}

/// Compare two multi-column keys in index order (NULLs last, like
/// PostgreSQL's default).
pub fn key_cmp(a: &[Datum], b: &[Datum]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.sql_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// A built B-tree.
#[derive(Debug, Clone)]
pub struct BTree {
    key_columns: Vec<Column>,
    /// Entries sorted by (key, tid).
    entries: Vec<Entry>,
    leaf_pages: u64,
    internal_pages: u64,
    height: u32,
}

impl BTree {
    /// Bulk-load a B-tree from (key, tid) pairs; entries are sorted here.
    ///
    /// Leaf pages are packed at PostgreSQL's default 90 % fill factor for
    /// bulk loads.
    pub fn build(key_columns: Vec<Column>, mut entries: Vec<Entry>) -> Self {
        entries.sort_by(|a, b| key_cmp(&a.key, &b.key).then(a.tid.cmp(&b.tid)));

        const FILL_FACTOR: f64 = 0.90;
        let capacity = (usable_page_bytes() as f64 * FILL_FACTOR) as usize;

        // Pack leaves.
        let mut leaf_pages: u64 = 1;
        let mut free = capacity;
        for e in &entries {
            let sz = index_entry_size(&key_columns, &e.key).expect("key arity") + ITEM_POINTER;
            if sz > free {
                leaf_pages += 1;
                free = capacity;
            }
            free -= sz.min(free);
        }

        // Internal levels: one separator entry per child page. Separator
        // entries have the same width as leaf entries (downlink replaces
        // the heap tid).
        let avg_entry = if entries.is_empty() {
            32.0
        } else {
            entries
                .iter()
                .take(1024)
                .map(|e| index_entry_size(&key_columns, &e.key).unwrap() + ITEM_POINTER)
                .sum::<usize>() as f64
                / entries.len().min(1024) as f64
        };
        let fanout = ((capacity as f64) / avg_entry).max(2.0) as u64;
        let mut internal_pages = 0u64;
        let mut level_pages = leaf_pages;
        let mut height = 0u32;
        while level_pages > 1 {
            level_pages = level_pages.div_ceil(fanout);
            internal_pages += level_pages;
            height += 1;
        }

        BTree { key_columns, entries, leaf_pages, internal_pages, height }
    }

    /// Key schema.
    pub fn key_columns(&self) -> &[Column] {
        &self.key_columns
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Measured leaf pages.
    pub fn leaf_pages(&self) -> u64 {
        self.leaf_pages
    }

    /// Measured internal pages (root included).
    pub fn internal_pages(&self) -> u64 {
        self.internal_pages
    }

    /// Total pages.
    pub fn total_pages(&self) -> u64 {
        self.leaf_pages + self.internal_pages
    }

    /// Tree height above the leaves.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// All tids whose key equals `key` exactly (on the full key).
    pub fn search_eq(&self, key: &[Datum]) -> Vec<Tid> {
        self.range(Bound::Included(key), Bound::Included(key))
    }

    /// Range scan over the *first* `key.len()` columns; bounds compare by
    /// prefix. Returns tids in key order.
    pub fn range(&self, low: Bound<&[Datum]>, high: Bound<&[Datum]>) -> Vec<Tid> {
        let start = match low {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
        };
        let end = match high {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(k) => self.upper_bound(k),
            Bound::Excluded(k) => self.lower_bound(k),
        };
        if start >= end {
            return Vec::new();
        }
        self.entries[start..end].iter().map(|e| e.tid).collect()
    }

    /// First position whose key-prefix is ≥ `key`.
    fn lower_bound(&self, key: &[Datum]) -> usize {
        self.entries
            .partition_point(|e| prefix_cmp(&e.key, key) == Ordering::Less)
    }

    /// First position whose key-prefix is > `key`.
    fn upper_bound(&self, key: &[Datum]) -> usize {
        self.entries
            .partition_point(|e| prefix_cmp(&e.key, key) != Ordering::Greater)
    }

    /// Iterate entries in key order (used for index-only style scans).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.entries.iter()
    }
}

/// Compare an entry key against a (possibly shorter) probe key prefix.
fn prefix_cmp(entry_key: &[Datum], probe: &[Datum]) -> Ordering {
    for (x, y) in entry_key.iter().zip(probe.iter()) {
        match x.sql_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    // Entry is "equal" on the probe prefix regardless of extra columns.
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::SqlType;

    fn key_cols() -> Vec<Column> {
        vec![Column::new("k", SqlType::Int8).not_null()]
    }

    fn tree(n: i64) -> BTree {
        let entries = (0..n)
            .map(|i| Entry {
                key: vec![Datum::Int(i)],
                tid: Tid { page: (i / 100) as u32, slot: (i % 100) as u16 },
            })
            .collect();
        BTree::build(key_cols(), entries)
    }

    #[test]
    fn empty_tree() {
        let t = BTree::build(key_cols(), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.leaf_pages(), 1);
        assert_eq!(t.height(), 0);
        assert!(t.search_eq(&[Datum::Int(5)]).is_empty());
    }

    #[test]
    fn search_finds_exact_key() {
        let t = tree(10_000);
        let hits = t.search_eq(&[Datum::Int(1234)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], Tid { page: 12, slot: 34 });
    }

    #[test]
    fn search_misses_absent_key() {
        let t = tree(100);
        assert!(t.search_eq(&[Datum::Int(1000)]).is_empty());
    }

    #[test]
    fn duplicates_all_returned() {
        let entries = (0..50)
            .map(|i| Entry { key: vec![Datum::Int(7)], tid: Tid { page: 0, slot: i } })
            .collect();
        let t = BTree::build(key_cols(), entries);
        assert_eq!(t.search_eq(&[Datum::Int(7)]).len(), 50);
    }

    #[test]
    fn range_inclusive_exclusive() {
        let t = tree(100);
        let lo = [Datum::Int(10)];
        let hi = [Datum::Int(20)];
        assert_eq!(
            t.range(Bound::Included(&lo[..]), Bound::Included(&hi[..])).len(),
            11
        );
        assert_eq!(
            t.range(Bound::Excluded(&lo[..]), Bound::Excluded(&hi[..])).len(),
            9
        );
        assert_eq!(t.range(Bound::Unbounded, Bound::Excluded(&lo[..])).len(), 10);
        assert_eq!(t.range(Bound::Included(&hi[..]), Bound::Unbounded).len(), 80);
    }

    #[test]
    fn range_results_in_key_order() {
        let t = tree(1000);
        let lo = [Datum::Int(100)];
        let hi = [Datum::Int(200)];
        let tids = t.range(Bound::Included(&lo[..]), Bound::Included(&hi[..]));
        let mut sorted = tids.clone();
        sorted.sort();
        assert_eq!(tids, sorted);
    }

    #[test]
    fn multicolumn_prefix_range() {
        let cols = vec![
            Column::new("a", SqlType::Int4).not_null(),
            Column::new("b", SqlType::Int4).not_null(),
        ];
        let mut entries = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                entries.push(Entry {
                    key: vec![Datum::Int(a), Datum::Int(b)],
                    tid: Tid { page: a as u32, slot: b as u16 },
                });
            }
        }
        let t = BTree::build(cols, entries);
        // probe on the first column only
        let probe = [Datum::Int(3)];
        let hits = t.range(Bound::Included(&probe[..]), Bound::Included(&probe[..]));
        assert_eq!(hits.len(), 10);
        // full key probe
        let full = [Datum::Int(3), Datum::Int(4)];
        assert_eq!(t.search_eq(&full).len(), 1);
    }

    #[test]
    fn leaf_pages_scale_with_entries() {
        let small = tree(1_000);
        let large = tree(10_000);
        assert!(large.leaf_pages() > small.leaf_pages());
        assert!(large.height() >= small.height());
    }

    #[test]
    fn leaf_pages_close_to_equation1() {
        let t = tree(100_000);
        let est = parinda_catalog::layout::index_leaf_pages(100_000, &key_cols());
        let actual = t.leaf_pages();
        // Equation 1 ignores the fill factor, so allow ±15 %.
        let ratio = est as f64 / actual as f64;
        assert!((0.8..=1.2).contains(&ratio), "est={est} actual={actual}");
    }

    #[test]
    fn key_cmp_orders_multicolumn() {
        assert_eq!(
            key_cmp(&[Datum::Int(1), Datum::Int(2)], &[Datum::Int(1), Datum::Int(3)]),
            Ordering::Less
        );
        assert_eq!(key_cmp(&[Datum::Int(1)], &[Datum::Int(1), Datum::Int(0)]), Ordering::Less);
    }
}
