//! The physical database: heaps and B-trees bound to catalog objects.
//!
//! This is what "materialize the suggested design" (paper §4) acts on: the
//! interactive scenario's verification path builds the real structure here,
//! re-analyzes, and re-plans to confirm the what-if estimate.

use std::collections::HashMap;

use parinda_catalog::{analyze_column, Catalog, Column, Datum, IndexId, MetadataProvider, TableId};

use crate::btree::{BTree, Entry};
use crate::heap::{HeapError, HeapFile, Tid};

/// Heap + index storage for the tables of a [`Catalog`].
///
/// `Clone` supports the shared engine's copy-on-write overlays: a session
/// that materializes data privatizes its engine core, deep-copying the
/// heaps and indexes it is about to mutate.
#[derive(Debug, Default, Clone)]
pub struct Database {
    heaps: HashMap<TableId, HeapFile>,
    indexes: HashMap<IndexId, BTree>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create (or replace) the heap for `table`, loading `rows` into it,
    /// and refresh the catalog's row/page counts.
    pub fn load_table(
        &mut self,
        catalog: &mut Catalog,
        table: TableId,
        rows: Vec<Vec<Datum>>,
    ) -> Result<(), HeapError> {
        if parinda_failpoint::should_fail("storage::load") {
            return Err(HeapError::UnknownTable { table: "failpoint storage::load".to_string() });
        }
        let columns = catalog
            .table(table)
            .ok_or(HeapError::UnknownTable { table: format!("{table:?}") })?
            .columns
            .clone();
        let mut heap = HeapFile::new(columns);
        heap.load(rows)?;
        let Some(t) = catalog.table_mut(table) else {
            return Err(HeapError::UnknownTable { table: format!("{table:?}") });
        };
        t.row_count = heap.row_count();
        t.pages = heap.page_count();
        self.heaps.insert(table, heap);
        Ok(())
    }

    /// The heap for a table, if loaded.
    pub fn heap(&self, table: TableId) -> Option<&HeapFile> {
        self.heaps.get(&table)
    }

    /// The built B-tree for an index, if materialized.
    pub fn btree(&self, index: IndexId) -> Option<&BTree> {
        self.indexes.get(&index)
    }

    /// Physically build the B-tree for catalog index `index` from its
    /// table's heap, and update the catalog's page count with the measured
    /// value. Returns the number of entries.
    ///
    /// This is the expensive operation the what-if layer avoids; experiment
    /// E2 times this against statistics-only simulation.
    pub fn build_index(&mut self, catalog: &mut Catalog, index: IndexId) -> Option<usize> {
        let idx = catalog.index(index)?.clone();
        let heap = self.heaps.get(&idx.table)?;
        let key_cols: Vec<Column> = idx
            .key_columns
            .iter()
            .map(|&i| heap.columns()[i].clone())
            .collect();
        let entries: Vec<Entry> = heap
            .scan()
            .map(|(tid, row)| Entry {
                key: idx.key_columns.iter().map(|&i| row[i].clone()).collect(),
                tid,
            })
            .collect();
        let n = entries.len();
        let tree = BTree::build(key_cols, entries);
        catalog.update_index_size(index, tree.leaf_pages(), tree.height());
        self.indexes.insert(index, tree);
        Some(n)
    }

    /// Run ANALYZE over every loaded table: compute fresh column statistics
    /// into the catalog.
    pub fn analyze(&self, catalog: &mut Catalog) {
        let tables: Vec<TableId> = self.heaps.keys().copied().collect();
        for tid in tables {
            self.analyze_table(catalog, tid);
        }
    }

    /// ANALYZE one table.
    pub fn analyze_table(&self, catalog: &mut Catalog, table: TableId) {
        let Some(heap) = self.heaps.get(&table) else { return };
        let ncols = heap.columns().len();
        for i in 0..ncols {
            let ty = heap.columns()[i].ty;
            let values = heap.column_values(i);
            let stats = analyze_column(ty, &values);
            catalog.set_column_stats(table, i, stats);
        }
    }

    /// ANALYZE one table from a deterministic row sample, like a real
    /// server (PostgreSQL samples `300 × statistics_target` rows). The
    /// full-scan [`Database::analyze_table`] stays the default because the
    /// what-if accuracy experiments want noise-free statistics; this
    /// variant exists to measure how much estimate quality sampling costs.
    ///
    /// `n_distinct` is extrapolated from the sample with the Haas–Stokes
    /// style heuristic PostgreSQL uses (scale by the sampling fraction when
    /// many sample values are unique).
    pub fn analyze_table_sampled(
        &self,
        catalog: &mut Catalog,
        table: TableId,
        sample_rows: usize,
        seed: u64,
    ) {
        let Some(heap) = self.heaps.get(&table) else { return };
        let total = heap.row_count() as usize;
        if total == 0 || sample_rows >= total {
            self.analyze_table(catalog, table);
            return;
        }
        // deterministic pseudo-random sample positions (LCG; no rand dep)
        let mut picks: Vec<usize> = Vec::with_capacity(sample_rows);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut seen = std::collections::HashSet::with_capacity(sample_rows * 2);
        while picks.len() < sample_rows {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pos = (state >> 16) as usize % total;
            if seen.insert(pos) {
                picks.push(pos);
            }
        }
        picks.sort_unstable();

        let ncols = heap.columns().len();
        for i in 0..ncols {
            let ty = heap.columns()[i].ty;
            let values: Vec<parinda_catalog::Datum> = picks
                .iter()
                .map(|&p| heap.row(p).expect("pick < total")[i].clone())
                .collect();
            let mut stats = analyze_column(ty, &values);
            // Extrapolate an absolute distinct count observed in the
            // sample: if nearly every sampled value was distinct, assume
            // the column scales with the table.
            if stats.n_distinct > 0.0 {
                let ratio = stats.n_distinct / sample_rows as f64;
                if ratio > 0.9 {
                    stats.n_distinct = -ratio.min(1.0);
                }
            }
            catalog.set_column_stats(table, i, stats);
        }
    }

    /// Fetch a row through an index Tid.
    pub fn fetch(&self, table: TableId, tid: Tid) -> Option<&[Datum]> {
        self.heaps.get(&table)?.fetch(tid)
    }

    /// Drop a materialized index structure (catalog entry untouched).
    pub fn drop_index_storage(&mut self, index: IndexId) -> bool {
        self.indexes.remove(&index).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::SqlType;

    fn setup() -> (Catalog, Database, TableId) {
        let mut cat = Catalog::new();
        let t = cat.create_table(
            "obj",
            vec![
                Column::new("id", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
            ],
            0,
        );
        let mut db = Database::new();
        let rows: Vec<Vec<Datum>> = (0..5000)
            .map(|i| vec![Datum::Int(i), Datum::Float((i % 360) as f64)])
            .collect();
        db.load_table(&mut cat, t, rows).unwrap();
        (cat, db, t)
    }

    #[test]
    fn load_updates_catalog_counts() {
        let (cat, db, t) = setup();
        let table = cat.table(t).unwrap();
        assert_eq!(table.row_count, 5000);
        assert_eq!(table.pages, db.heap(t).unwrap().page_count());
    }

    #[test]
    fn build_index_measures_pages() {
        let (mut cat, mut db, _t) = setup();
        let est_pages = {
            let id = cat.create_index("i_ra", "obj", &["ra"]).unwrap();
            cat.index(id).unwrap().pages
        };
        let id = cat.index_by_name("i_ra").unwrap().id;
        let n = db.build_index(&mut cat, id).unwrap();
        assert_eq!(n, 5000);
        let measured = cat.index(id).unwrap().pages;
        // measured size should be in the same ballpark as Equation 1
        let ratio = est_pages as f64 / measured as f64;
        assert!((0.7..=1.3).contains(&ratio), "est={est_pages} measured={measured}");
        assert!(db.btree(id).is_some());
    }

    #[test]
    fn analyze_populates_stats() {
        let (mut cat, db, t) = setup();
        db.analyze(&mut cat);
        let s = cat.column_stats(t, 1).unwrap();
        assert!(s.histogram.len() > 10 || !s.mcv.is_empty());
    }

    #[test]
    fn fetch_via_index() {
        let (mut cat, mut db, t) = setup();
        let id = cat.create_index("i_id", "obj", &["id"]).unwrap();
        db.build_index(&mut cat, id).unwrap();
        let tids = db.btree(id).unwrap().search_eq(&[Datum::Int(42)]);
        assert_eq!(tids.len(), 1);
        let row = db.fetch(t, tids[0]).unwrap();
        assert_eq!(row[0], Datum::Int(42));
    }

    #[test]
    fn drop_index_storage_removes_tree() {
        let (mut cat, mut db, _) = setup();
        let id = cat.create_index("i_id", "obj", &["id"]).unwrap();
        db.build_index(&mut cat, id).unwrap();
        assert!(db.drop_index_storage(id));
        assert!(!db.drop_index_storage(id));
    }
}

#[cfg(test)]
mod sampled_tests {
    use super::*;
    use parinda_catalog::SqlType;

    fn setup(n: i64) -> (Catalog, Database, TableId) {
        let mut cat = Catalog::new();
        let t = cat.create_table(
            "obj",
            vec![
                parinda_catalog::Column::new("id", SqlType::Int8).not_null(),
                parinda_catalog::Column::new("k", SqlType::Int4).not_null(),
            ],
            0,
        );
        let mut db = Database::new();
        let rows: Vec<Vec<Datum>> =
            (0..n).map(|i| vec![Datum::Int(i), Datum::Int(i % 7)]).collect();
        db.load_table(&mut cat, t, rows).unwrap();
        (cat, db, t)
    }

    #[test]
    fn sampled_stats_approximate_full_stats() {
        let (mut cat, db, t) = setup(20_000);
        db.analyze_table(&mut cat, t);
        let full_k = cat.column_stats(t, 1).unwrap().clone();
        db.analyze_table_sampled(&mut cat, t, 2_000, 42);
        let samp_k = cat.column_stats(t, 1).unwrap().clone();
        // low-cardinality column: the sample must find all 7 values
        assert_eq!(full_k.n_distinct, 7.0);
        assert_eq!(samp_k.n_distinct, 7.0);
        // unique column: sampled n_distinct extrapolates to a ratio
        let samp_id = cat.column_stats(t, 0).unwrap();
        assert!(samp_id.n_distinct < 0.0, "got {}", samp_id.n_distinct);
    }

    #[test]
    fn sampled_analyze_is_deterministic() {
        let (mut cat1, db1, t1) = setup(5_000);
        db1.analyze_table_sampled(&mut cat1, t1, 500, 7);
        let a = cat1.column_stats(t1, 1).unwrap().clone();
        let (mut cat2, db2, t2) = setup(5_000);
        db2.analyze_table_sampled(&mut cat2, t2, 500, 7);
        let b = cat2.column_stats(t2, 1).unwrap().clone();
        assert_eq!(a, b);
    }

    #[test]
    fn oversampling_falls_back_to_full_scan() {
        let (mut cat, db, t) = setup(100);
        db.analyze_table_sampled(&mut cat, t, 1_000, 1);
        // identical to full analyze
        let sampled = cat.column_stats(t, 1).unwrap().clone();
        db.analyze_table(&mut cat, t);
        assert_eq!(&sampled, cat.column_stats(t, 1).unwrap());
    }
}
