//! Property tests: the B-tree must agree with a `BTreeMap`-based oracle on
//! equality and range probes, and page accounting must be monotone.

use std::collections::BTreeMap;
use std::ops::Bound;

use parinda_catalog::{Column, Datum, SqlType};
use parinda_storage::{BTree, Entry, Tid};
use proptest::prelude::*;

fn entries_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-200i64..200, 0..300)
}

fn build(keys: &[i64]) -> (BTree, BTreeMap<i64, Vec<Tid>>) {
    let cols = vec![Column::new("k", SqlType::Int8).not_null()];
    let entries: Vec<Entry> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Entry {
            key: vec![Datum::Int(k)],
            tid: Tid { page: (i / 100) as u32, slot: (i % 100) as u16 },
        })
        .collect();
    let mut oracle: BTreeMap<i64, Vec<Tid>> = BTreeMap::new();
    for e in &entries {
        oracle
            .entry(e.key[0].as_i64().unwrap())
            .or_default()
            .push(e.tid);
    }
    (BTree::build(cols, entries), oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn search_eq_matches_oracle(keys in entries_strategy(), probe in -250i64..250) {
        let (tree, oracle) = build(&keys);
        let mut got = tree.search_eq(&[Datum::Int(probe)]);
        got.sort();
        let mut want = oracle.get(&probe).cloned().unwrap_or_default();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_matches_oracle(
        keys in entries_strategy(),
        lo in -250i64..250,
        span in 0i64..100,
        lo_incl in any::<bool>(),
        hi_incl in any::<bool>(),
    ) {
        let hi = lo + span;
        let (tree, oracle) = build(&keys);
        let lo_key = [Datum::Int(lo)];
        let hi_key = [Datum::Int(hi)];
        let got: Vec<Tid> = tree.range(
            if lo_incl { Bound::Included(&lo_key[..]) } else { Bound::Excluded(&lo_key[..]) },
            if hi_incl { Bound::Included(&hi_key[..]) } else { Bound::Excluded(&hi_key[..]) },
        );
        // std's BTreeMap panics on (Excluded(x), Excluded(x)); that range
        // is empty by definition
        let mut want: Vec<Tid> = if lo == hi && !lo_incl && !hi_incl {
            Vec::new()
        } else {
            oracle
                .range((
                    if lo_incl { Bound::Included(lo) } else { Bound::Excluded(lo) },
                    if hi_incl { Bound::Included(hi) } else { Bound::Excluded(hi) },
                ))
                .flat_map(|(_, tids)| tids.iter().copied())
                .collect()
        };
        want.sort();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        prop_assert_eq!(got_sorted, want);
    }

    #[test]
    fn unbounded_range_returns_everything(keys in entries_strategy()) {
        let (tree, _) = build(&keys);
        prop_assert_eq!(tree.range(Bound::Unbounded, Bound::Unbounded).len(), keys.len());
    }

    #[test]
    fn more_entries_never_fewer_pages(keys in entries_strategy()) {
        let (small, _) = build(&keys);
        let mut more = keys.clone();
        more.extend_from_slice(&keys);
        let (big, _) = build(&more);
        prop_assert!(big.leaf_pages() >= small.leaf_pages());
        prop_assert!(big.total_pages() >= small.total_pages());
        prop_assert!(big.height() >= small.height());
    }
}
