//! EXPLAIN ANALYZE-style instrumented execution: run a plan and annotate
//! every node with actual row counts and wall-clock time, so estimated and
//! actual behaviour can be compared side by side (the demo's plan panes).

use std::time::Instant;

use parinda_catalog::Catalog;
use parinda_optimizer::{BoundQuery, PlanKind, PlanNode};
use parinda_storage::Database;

use crate::exec::{execute, ExecError, Row};

/// Per-node actuals collected during instrumented execution.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeActuals {
    /// Rows the node produced.
    pub rows: usize,
    /// Wall-clock time spent producing them (including children).
    pub elapsed: std::time::Duration,
}

/// An instrumented execution result.
#[derive(Debug, Clone)]
pub struct AnalyzedPlan {
    /// The final output rows.
    pub rows: Vec<Row>,
    /// Actuals per plan node, in pre-order.
    pub actuals: Vec<NodeActuals>,
    /// Total execution wall-clock.
    pub total: std::time::Duration,
}

/// Execute `plan` with instrumentation.
///
/// The materializing executor evaluates nodes bottom-up, so per-node times
/// are measured by running each *subtree* in isolation; this repeats work
/// (O(depth) overhead) but keeps the production path allocation-free of
/// instrumentation. Intended for interactive inspection, not benchmarks.
pub fn execute_analyze(
    plan: &PlanNode,
    catalog: &Catalog,
    db: &Database,
) -> Result<AnalyzedPlan, ExecError> {
    // parinda-lint: allow(nondeterminism): EXPLAIN ANALYZE reports measured wall time — diagnostic output, never feeds advisor results
    let t0 = Instant::now();
    let rows = execute(plan, catalog, db)?;
    let total = t0.elapsed();

    let mut actuals = Vec::with_capacity(plan.node_count());
    collect_actuals(plan, catalog, db, &mut actuals)?;

    Ok(AnalyzedPlan { rows, actuals, total })
}

fn collect_actuals(
    node: &PlanNode,
    catalog: &Catalog,
    db: &Database,
    out: &mut Vec<NodeActuals>,
) -> Result<(), ExecError> {
    // Parameterized inner scans cannot run stand-alone; report them as
    // zero-cost leaves (their work is attributed to the enclosing loop).
    let standalone = !matches!(
        &node.kind,
        PlanKind::IndexScan { param_prefix, .. } if !param_prefix.is_empty()
    );
    let (rows, elapsed) = if standalone {
        // parinda-lint: allow(nondeterminism): per-node actual timings are the point of ANALYZE — diagnostic only
        let t0 = Instant::now();
        let r = execute(node, catalog, db)?;
        (r.len(), t0.elapsed())
    } else {
        (0, std::time::Duration::ZERO)
    };
    out.push(NodeActuals { rows, elapsed });
    for c in node.children() {
        collect_actuals(c, catalog, db, out)?;
    }
    Ok(())
}

/// Render an EXPLAIN ANALYZE text block: the estimated plan annotated with
/// actual rows and times.
pub fn explain_analyze(
    plan: &PlanNode,
    query: &BoundQuery,
    catalog: &Catalog,
    db: &Database,
) -> Result<String, ExecError> {
    let analyzed = execute_analyze(plan, catalog, db)?;
    let estimated = parinda_optimizer::explain(plan, query, catalog);

    // splice actuals into the estimated text line by line (both are in
    // pre-order with one line per node)
    let mut out = String::new();
    for (line, a) in estimated.lines().zip(&analyzed.actuals) {
        out.push_str(line);
        out.push_str(&format!("  (actual rows={} time={:?})\n", a.rows, a.elapsed));
    }
    out.push_str(&format!(
        "Total runtime: {:?} ({} rows)\n",
        analyzed.total,
        analyzed.rows.len()
    ));
    Ok(out)
}

/// Estimation-quality summary: per scan/join node, the ratio of estimated
/// to actual rows (the planner-quality diagnostic DBAs actually read).
pub fn row_estimate_errors(plan: &PlanNode, actuals: &[NodeActuals]) -> Vec<(String, f64, usize)> {
    let mut nodes = Vec::new();
    plan.walk(&mut |n| nodes.push((n.node_name().to_string(), n.rows)));
    nodes
        .iter()
        .zip(actuals)
        .filter(|((name, _), _)| {
            matches!(
                name.as_str(),
                "Seq Scan" | "Index Scan" | "Hash Join" | "Merge Join" | "Nested Loop"
            )
        })
        .map(|((name, est), a)| {
            let ratio = if a.rows == 0 { *est } else { est / a.rows as f64 };
            (name.clone(), ratio, a.rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Column, Datum, SqlType};
    use parinda_optimizer::optimize;
    use parinda_sql::parse_select;

    fn setup() -> (Catalog, Database) {
        let mut cat = Catalog::new();
        let t = cat.create_table(
            "obj",
            vec![
                Column::new("id", SqlType::Int8).not_null(),
                Column::new("k", SqlType::Int4).not_null(),
            ],
            0,
        );
        let mut db = Database::new();
        let rows: Vec<Vec<Datum>> =
            (0..500).map(|i| vec![Datum::Int(i), Datum::Int(i % 5)]).collect();
        db.load_table(&mut cat, t, rows).unwrap();
        db.analyze(&mut cat);
        (cat, db)
    }

    #[test]
    fn analyze_reports_actual_rows() {
        let (cat, db) = setup();
        let sel = parse_select("SELECT id FROM obj WHERE k = 2").unwrap();
        let (_, plan) = optimize(&sel, &cat).unwrap();
        let a = execute_analyze(&plan, &cat, &db).unwrap();
        assert_eq!(a.rows.len(), 100);
        assert_eq!(a.actuals.len(), plan.node_count());
        // the root actuals equal the result size
        assert_eq!(a.actuals[0].rows, 100);
    }

    #[test]
    fn explain_analyze_renders_both_estimates_and_actuals() {
        let (cat, db) = setup();
        let sel = parse_select("SELECT k, COUNT(*) FROM obj GROUP BY k").unwrap();
        let (q, plan) = optimize(&sel, &cat).unwrap();
        let text = explain_analyze(&plan, &q, &cat, &db).unwrap();
        assert!(text.contains("cost="), "{text}");
        assert!(text.contains("actual rows=5"), "{text}");
        assert!(text.contains("Total runtime"), "{text}");
    }

    #[test]
    fn estimate_errors_computed_for_scans() {
        let (cat, db) = setup();
        let sel = parse_select("SELECT id FROM obj WHERE k = 2").unwrap();
        let (_, plan) = optimize(&sel, &cat).unwrap();
        let a = execute_analyze(&plan, &cat, &db).unwrap();
        let errs = row_estimate_errors(&plan, &a.actuals);
        assert!(!errs.is_empty());
        // on exact statistics the scan estimate is within 2x
        for (name, ratio, _) in &errs {
            assert!((0.5..=2.0).contains(ratio), "{name}: ratio {ratio}");
        }
    }
}
