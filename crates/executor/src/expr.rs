//! Expression evaluation with SQL three-valued logic.
//!
//! Unknown is represented as [`Datum::Null`]; predicates pass only when
//! they evaluate to `Bool(true)`, matching WHERE semantics.

use std::collections::HashMap;

use parinda_catalog::Datum;
use parinda_optimizer::{BoundExpr, Slot};
use parinda_sql::BinOp;

/// Maps slots to positions within the current row.
pub type SlotMap = HashMap<Slot, usize>;

/// Build a slot map from a node's output slot list.
pub fn slot_map(output: &[Slot]) -> SlotMap {
    output.iter().enumerate().map(|(i, s)| (*s, i)).collect()
}

/// Evaluation errors (all indicate planner/executor disagreement, not bad
/// data — data errors surface as NULL like in SQL).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The expression referenced a slot the row does not carry.
    MissingSlot(Slot),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingSlot(s) => {
                write!(f, "expression references slot (rel {}, col {}) not in row", s.rel, s.col)
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate an expression against a row.
pub fn eval(expr: &BoundExpr, row: &[Datum], slots: &SlotMap) -> Result<Datum, EvalError> {
    Ok(match expr {
        BoundExpr::Column(s) => {
            let pos = slots.get(s).copied().ok_or(EvalError::MissingSlot(*s))?;
            row[pos].clone()
        }
        BoundExpr::Literal(d) => d.clone(),
        BoundExpr::Binary { op, left, right } => {
            let l = eval(left, row, slots)?;
            let r = eval(right, row, slots)?;
            eval_binary(*op, &l, &r)
        }
        BoundExpr::Not(e) => match eval(e, row, slots)? {
            Datum::Bool(b) => Datum::Bool(!b),
            Datum::Null => Datum::Null,
            _ => Datum::Null,
        },
        BoundExpr::Between { expr, low, high, negated } => {
            let v = eval(expr, row, slots)?;
            let lo = eval(low, row, slots)?;
            let hi = eval(high, row, slots)?;
            let ge = eval_binary(BinOp::GtEq, &v, &lo);
            let le = eval_binary(BinOp::LtEq, &v, &hi);
            let both = and3(&ge, &le);
            if *negated {
                not3(&both)
            } else {
                both
            }
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval(expr, row, slots)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            let mut hit = false;
            for e in list {
                let x = eval(e, row, slots)?;
                if x.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&x) {
                    hit = true;
                    break;
                }
            }
            let r = if hit {
                Datum::Bool(true)
            } else if saw_null {
                Datum::Null
            } else {
                Datum::Bool(false)
            };
            if *negated {
                not3(&r)
            } else {
                r
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, slots)?;
            Datum::Bool(v.is_null() != *negated)
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, row, slots)?;
            match v {
                Datum::Null => Datum::Null,
                Datum::Str(s) => {
                    let m = like_match(&s, pattern);
                    Datum::Bool(m != *negated)
                }
                _ => Datum::Null,
            }
        }
    })
}

/// Does the predicate hold for the row (NULL/false both fail)?
pub fn passes(expr: &BoundExpr, row: &[Datum], slots: &SlotMap) -> Result<bool, EvalError> {
    Ok(matches!(eval(expr, row, slots)?, Datum::Bool(true)))
}

fn eval_binary(op: BinOp, l: &Datum, r: &Datum) -> Datum {
    use BinOp::*;
    match op {
        And => and3(l, r),
        Or => or3(l, r),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Datum::Null;
            }
            let ord = l.sql_cmp(r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Datum::Bool(b)
        }
        Add | Sub | Mul | Div => arith(op, l, r),
    }
}

fn arith(op: BinOp, l: &Datum, r: &Datum) -> Datum {
    use Datum::*;
    match (l, r) {
        (Null, _) | (_, Null) => Null,
        (Int(a), Int(b)) => match op {
            BinOp::Add => Int(a.wrapping_add(*b)),
            BinOp::Sub => Int(a.wrapping_sub(*b)),
            BinOp::Mul => Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Null
                } else {
                    Int(a / b)
                }
            }
            _ => Null,
        },
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else { return Null };
            match op {
                BinOp::Add => Float(a + b),
                BinOp::Sub => Float(a - b),
                BinOp::Mul => Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Null
                    } else {
                        Float(a / b)
                    }
                }
                _ => Null,
            }
        }
    }
}

fn and3(l: &Datum, r: &Datum) -> Datum {
    match (l, r) {
        (Datum::Bool(false), _) | (_, Datum::Bool(false)) => Datum::Bool(false),
        (Datum::Bool(true), Datum::Bool(true)) => Datum::Bool(true),
        _ => Datum::Null,
    }
}

fn or3(l: &Datum, r: &Datum) -> Datum {
    match (l, r) {
        (Datum::Bool(true), _) | (_, Datum::Bool(true)) => Datum::Bool(true),
        (Datum::Bool(false), Datum::Bool(false)) => Datum::Bool(false),
        _ => Datum::Null,
    }
}

fn not3(d: &Datum) -> Datum {
    match d {
        Datum::Bool(b) => Datum::Bool(!b),
        _ => Datum::Null,
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // try consuming 0..len chars
                (0..=s.len()).any(|i| rec(&s[i..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> BoundExpr {
        BoundExpr::Literal(Datum::Int(i))
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    fn ev(e: &BoundExpr) -> Datum {
        eval(e, &[], &SlotMap::new()).unwrap()
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(ev(&bin(BinOp::Add, lit(2), lit(3))), Datum::Int(5));
        assert_eq!(ev(&bin(BinOp::Div, lit(7), lit(2))), Datum::Int(3));
        assert_eq!(ev(&bin(BinOp::Div, lit(7), lit(0))), Datum::Null);
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let e = bin(BinOp::Mul, lit(2), BoundExpr::Literal(Datum::Float(1.5)));
        assert_eq!(ev(&e), Datum::Float(3.0));
    }

    #[test]
    fn comparisons_with_nulls_are_null() {
        let e = bin(BinOp::Eq, lit(1), BoundExpr::Literal(Datum::Null));
        assert_eq!(ev(&e), Datum::Null);
    }

    #[test]
    fn three_valued_and_or() {
        let t = BoundExpr::Literal(Datum::Bool(true));
        let f = BoundExpr::Literal(Datum::Bool(false));
        let n = BoundExpr::Literal(Datum::Null);
        assert_eq!(ev(&bin(BinOp::And, f.clone(), n.clone())), Datum::Bool(false));
        assert_eq!(ev(&bin(BinOp::And, t.clone(), n.clone())), Datum::Null);
        assert_eq!(ev(&bin(BinOp::Or, t.clone(), n.clone())), Datum::Bool(true));
        assert_eq!(ev(&bin(BinOp::Or, f, n)), Datum::Null);
        let _ = t;
    }

    #[test]
    fn between_evaluates_inclusively() {
        let e = BoundExpr::Between {
            expr: Box::new(lit(5)),
            low: Box::new(lit(5)),
            high: Box::new(lit(10)),
            negated: false,
        };
        assert_eq!(ev(&e), Datum::Bool(true));
    }

    #[test]
    fn in_list_with_null_semantics() {
        // 1 IN (2, NULL) -> NULL; 1 IN (1, NULL) -> TRUE
        let e = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(2), BoundExpr::Literal(Datum::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Datum::Null);
        let e2 = BoundExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(1), BoundExpr::Literal(Datum::Null)],
            negated: false,
        };
        assert_eq!(ev(&e2), Datum::Bool(true));
    }

    #[test]
    fn is_null_checks() {
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Datum::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Datum::Bool(true));
        let e2 = BoundExpr::IsNull { expr: Box::new(lit(1)), negated: true };
        assert_eq!(ev(&e2), Datum::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("galaxy", "gal%"));
        assert!(like_match("galaxy", "%axy"));
        assert!(like_match("galaxy", "g_l%"));
        assert!(!like_match("galaxy", "gal"));
        assert!(like_match("", "%"));
        assert!(!like_match("a", "_%_"));
        assert!(like_match("ab", "_%_"));
    }

    #[test]
    fn column_lookup_via_slot_map() {
        let slot = Slot { rel: 0, col: 2 };
        let mut m = SlotMap::new();
        m.insert(slot, 0);
        let e = BoundExpr::Column(slot);
        assert_eq!(eval(&e, &[Datum::Int(9)], &m).unwrap(), Datum::Int(9));
    }

    #[test]
    fn missing_slot_is_error() {
        let e = BoundExpr::Column(Slot { rel: 0, col: 0 });
        assert!(eval(&e, &[], &SlotMap::new()).is_err());
    }

    #[test]
    fn passes_requires_true() {
        let m = SlotMap::new();
        assert!(passes(&BoundExpr::Literal(Datum::Bool(true)), &[], &m).unwrap());
        assert!(!passes(&BoundExpr::Literal(Datum::Null), &[], &m).unwrap());
        assert!(!passes(&BoundExpr::Literal(Datum::Bool(false)), &[], &m).unwrap());
    }
}
