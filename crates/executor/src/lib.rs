//! # parinda-executor
//!
//! Volcano-style execution substrate: runs the optimizer's physical plans
//! against the in-memory storage engine. PARINDA itself only *estimates*
//! benefits; this crate lets the reproduction *measure* them — the
//! workload-speedup experiment (E1) executes the workload before and after
//! materializing the advisor's suggestions and compares wall-clock times,
//! and correctness tests cross-check every join/aggregation path against
//! naive evaluation.

#![allow(missing_docs)]

pub mod analyze;
pub mod exec;
pub mod expr;
pub mod row;

pub use analyze::{execute_analyze, explain_analyze, AnalyzedPlan, NodeActuals};
pub use exec::{execute, ExecError, Row};
pub use expr::{eval, like_match, passes, slot_map, EvalError, SlotMap};
pub use row::RowKey;
