//! Plan execution over the in-memory storage engine.
//!
//! A straightforward materializing executor: each node produces a
//! `Vec<Row>`. This keeps semantics obvious and is plenty fast at the
//! laptop scale the measured experiments run at; wall-clock comparisons in
//! the benches always compare like against like.

use std::collections::HashMap;
use std::ops::Bound;

use parinda_catalog::{Catalog, Datum, IndexId, TableId};
use parinda_optimizer::query::BoundOutput;
use parinda_optimizer::{BoundExpr, PlanKind, PlanNode, Slot};
use parinda_sql::AggFunc;
use parinda_storage::Database;

use crate::expr::{eval, passes, slot_map, EvalError, SlotMap};
use crate::row::RowKey;

/// A produced row.
pub type Row = Vec<Datum>;

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The plan scans a table whose heap was never loaded.
    MissingHeap(TableId),
    /// The plan uses an index that is not materialized (e.g. a what-if
    /// index that was never built — plans over hypothetical designs are
    /// costable but not runnable, exactly as in the paper).
    MissingIndex(IndexId),
    /// Expression referenced a slot not present in the row.
    Eval(EvalError),
    /// Plan shape the executor does not recognize (planner bug).
    Malformed(&'static str),
}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingHeap(t) => write!(f, "no heap loaded for table {:?}", t),
            ExecError::MissingIndex(i) => {
                write!(f, "index {:?} is not materialized (what-if only?)", i)
            }
            ExecError::Eval(e) => write!(f, "{e}"),
            ExecError::Malformed(m) => write!(f, "malformed plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execute a plan against a catalog + database.
pub fn execute(plan: &PlanNode, catalog: &Catalog, db: &Database) -> Result<Vec<Row>, ExecError> {
    let _ = catalog; // kept in the signature for API stability (EXPLAIN-style helpers)
    Executor { db }.run(plan, None)
}

struct Executor<'a> {
    db: &'a Database,
}

/// Parameter values supplied by an outer nested-loop row.
struct Params<'a> {
    values: &'a [Datum],
}

impl<'a> Executor<'a> {
    fn run(&self, node: &PlanNode, params: Option<&Params<'_>>) -> Result<Vec<Row>, ExecError> {
        match &node.kind {
            PlanKind::SeqScan { rel: _, table, filter } => self.seq_scan(node, *table, filter),
            PlanKind::IndexScan { table, index, eq_prefix, param_prefix, range, filter, .. } => {
                self.index_scan(node, *table, *index, eq_prefix, param_prefix, range, filter, params)
            }
            PlanKind::NestLoop { outer, inner, keys, filter } => {
                self.nest_loop(node, outer, inner, keys, filter)
            }
            PlanKind::HashJoin { outer, inner, keys, filter } => {
                self.hash_join(node, outer, inner, keys, filter)
            }
            PlanKind::MergeJoin { outer, inner, keys, filter } => {
                self.merge_join(node, outer, inner, keys, filter)
            }
            PlanKind::Materialize { input } => self.run(input, params),
            PlanKind::Sort { input, keys } => {
                let mut rows = self.run(input, params)?;
                rows.sort_by(|a, b| {
                    for k in keys {
                        let ord = a[k.pos].sql_cmp(&b[k.pos]);
                        let ord = if k.desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(rows)
            }
            PlanKind::Aggregate { input, group_by, items } => {
                self.aggregate(input, group_by, items)
            }
            PlanKind::Project { input, items } => {
                let rows = self.run(input, params)?;
                let slots = slot_map(&input.output);
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut row = Vec::with_capacity(items.len());
                    for item in items {
                        match &item.expr {
                            BoundOutput::Scalar(e) => row.push(eval(e, &r, &slots)?),
                            BoundOutput::Agg { .. } => {
                                return Err(ExecError::Malformed("aggregate under Project"))
                            }
                        }
                    }
                    out.push(row);
                }
                Ok(out)
            }
            PlanKind::Unique { input } => {
                let rows = self.run(input, params)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for r in rows {
                    if seen.insert(RowKey::encode(r.iter())) {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            PlanKind::Limit { input, n } => {
                let mut rows = self.run(input, params)?;
                rows.truncate(*n as usize);
                Ok(rows)
            }
        }
    }

    /// Scan-local slot map: the full table row in table coordinates.
    fn table_slots(&self, rel: usize, ncols: usize) -> SlotMap {
        (0..ncols).map(|col| (Slot { rel, col }, col)).collect()
    }

    fn project_scan(&self, node: &PlanNode, rel: usize, full_row: &[Datum]) -> Row {
        node.output
            .iter()
            .map(|s| {
                debug_assert_eq!(s.rel, rel);
                full_row[s.col].clone()
            })
            .collect()
    }

    fn seq_scan(
        &self,
        node: &PlanNode,
        table: TableId,
        filter: &[BoundExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let heap = self.db.heap(table).ok_or(ExecError::MissingHeap(table))?;
        let rel = node.output.first().map(|s| s.rel).unwrap_or(0);
        let slots = self.table_slots(rel, heap.columns().len());
        let mut out = Vec::new();
        'rows: for (_, row) in heap.scan() {
            for f in filter {
                if !passes(f, row, &slots)? {
                    continue 'rows;
                }
            }
            out.push(self.project_scan(node, rel, row));
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn index_scan(
        &self,
        node: &PlanNode,
        table: TableId,
        index: IndexId,
        eq_prefix: &[Datum],
        param_prefix: &[Slot],
        range: &Option<parinda_optimizer::IndexRange>,
        filter: &[BoundExpr],
        params: Option<&Params<'_>>,
    ) -> Result<Vec<Row>, ExecError> {
        let heap = self.db.heap(table).ok_or(ExecError::MissingHeap(table))?;
        let tree = self.db.btree(index).ok_or(ExecError::MissingIndex(index))?;
        let rel = node.output.first().map(|s| s.rel).unwrap_or(0);
        let slots = self.table_slots(rel, heap.columns().len());

        // Assemble the probe prefix: constants, then runtime parameters.
        let mut prefix: Vec<Datum> = eq_prefix.to_vec();
        if !param_prefix.is_empty() {
            let p = params.ok_or(ExecError::Malformed("parameterized scan without params"))?;
            prefix.extend(p.values.iter().cloned());
        }

        // Compose range bounds on the column after the prefix.
        let (low, high): (Vec<Datum>, Vec<Datum>);
        let (lo_bound, hi_bound) = match range {
            None if prefix.is_empty() => (Bound::Unbounded, Bound::Unbounded),
            None => {
                low = prefix.clone();
                high = prefix.clone();
                (Bound::Included(&low[..]), Bound::Included(&high[..]))
            }
            Some(r) => {
                let lo = match &r.low {
                    Some((d, incl)) => {
                        let mut v = prefix.clone();
                        v.push(d.clone());
                        low = v;
                        if *incl {
                            Bound::Included(&low[..])
                        } else {
                            Bound::Excluded(&low[..])
                        }
                    }
                    None if prefix.is_empty() => {
                        low = Vec::new();
                        let _ = &low;
                        Bound::Unbounded
                    }
                    None => {
                        low = prefix.clone();
                        Bound::Included(&low[..])
                    }
                };
                let hi = match &r.high {
                    Some((d, incl)) => {
                        let mut v = prefix.clone();
                        v.push(d.clone());
                        high = v;
                        if *incl {
                            Bound::Included(&high[..])
                        } else {
                            Bound::Excluded(&high[..])
                        }
                    }
                    None if prefix.is_empty() => {
                        high = Vec::new();
                        let _ = &high;
                        Bound::Unbounded
                    }
                    None => {
                        high = prefix.clone();
                        Bound::Included(&high[..])
                    }
                };
                (lo, hi)
            }
        };

        let tids = tree.range(lo_bound, hi_bound);
        let mut out = Vec::with_capacity(tids.len());
        'tids: for tid in tids {
            let row = heap
                .fetch(tid)
                .ok_or(ExecError::Malformed("index tid points past heap"))?;
            for f in filter {
                if !passes(f, row, &slots)? {
                    continue 'tids;
                }
            }
            out.push(self.project_scan(node, rel, row));
        }
        Ok(out)
    }

    fn nest_loop(
        &self,
        node: &PlanNode,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: &[parinda_optimizer::JoinKey],
        filter: &[BoundExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let outer_rows = self.run(outer, None)?;
        let outer_slots = slot_map(&outer.output);
        let combined_slots = slot_map(&node.output);

        // Parameterized inner? (IndexScan with param_prefix, possibly under
        // Materialize which the planner never does for param scans.)
        let param_scan = matches!(
            &inner.kind,
            PlanKind::IndexScan { param_prefix, .. } if !param_prefix.is_empty()
        );

        let mut out = Vec::new();
        if param_scan {
            let PlanKind::IndexScan { param_prefix, .. } = &inner.kind else { unreachable!() };
            for orow in &outer_rows {
                let values: Vec<Datum> = param_prefix
                    .iter()
                    .map(|s| {
                        outer_slots
                            .get(s)
                            .map(|&p| orow[p].clone())
                            .ok_or(EvalError::MissingSlot(*s))
                    })
                    .collect::<Result<_, _>>()?;
                if values.iter().any(|v| v.is_null()) {
                    continue; // NULL never equijoins
                }
                let irows = self.run(inner, Some(&Params { values: &values }))?;
                for irow in irows {
                    let mut row = orow.clone();
                    row.extend(irow);
                    if self.join_row_passes(&row, &combined_slots, keys, filter)? {
                        out.push(row);
                    }
                }
            }
        } else {
            let inner_rows = self.run(inner, None)?;
            for orow in &outer_rows {
                for irow in &inner_rows {
                    let mut row = orow.clone();
                    row.extend(irow.iter().cloned());
                    if self.join_row_passes(&row, &combined_slots, keys, filter)? {
                        out.push(row);
                    }
                }
            }
        }
        Ok(out)
    }

    fn join_row_passes(
        &self,
        row: &[Datum],
        slots: &SlotMap,
        keys: &[parinda_optimizer::JoinKey],
        filter: &[BoundExpr],
    ) -> Result<bool, ExecError> {
        for k in keys {
            let o = slots.get(&k.outer).copied().ok_or(EvalError::MissingSlot(k.outer))?;
            let i = slots.get(&k.inner).copied().ok_or(EvalError::MissingSlot(k.inner))?;
            if !row[o].sql_eq(&row[i]) {
                return Ok(false);
            }
        }
        for f in filter {
            if !passes(f, row, slots)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn hash_join(
        &self,
        node: &PlanNode,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: &[parinda_optimizer::JoinKey],
        filter: &[BoundExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let outer_rows = self.run(outer, None)?;
        let inner_rows = self.run(inner, None)?;
        let outer_slots = slot_map(&outer.output);
        let inner_slots = slot_map(&inner.output);
        let combined_slots = slot_map(&node.output);

        let inner_key_pos: Vec<usize> = keys
            .iter()
            .map(|k| inner_slots.get(&k.inner).copied().ok_or(EvalError::MissingSlot(k.inner)))
            .collect::<Result<_, _>>()?;
        let outer_key_pos: Vec<usize> = keys
            .iter()
            .map(|k| outer_slots.get(&k.outer).copied().ok_or(EvalError::MissingSlot(k.outer)))
            .collect::<Result<_, _>>()?;

        let mut table: HashMap<RowKey, Vec<usize>> = HashMap::new();
        for (i, r) in inner_rows.iter().enumerate() {
            let kv: Vec<&Datum> = inner_key_pos.iter().map(|&p| &r[p]).collect();
            if kv.iter().any(|d| d.is_null()) {
                continue;
            }
            table.entry(RowKey::encode(kv)).or_default().push(i);
        }

        let mut out = Vec::new();
        for orow in &outer_rows {
            let kv: Vec<&Datum> = outer_key_pos.iter().map(|&p| &orow[p]).collect();
            if kv.iter().any(|d| d.is_null()) {
                continue;
            }
            if let Some(matches) = table.get(&RowKey::encode(kv)) {
                for &i in matches {
                    let mut row = orow.clone();
                    row.extend(inner_rows[i].iter().cloned());
                    if self.join_row_passes(&row, &combined_slots, keys, filter)? {
                        out.push(row);
                    }
                }
            }
        }
        Ok(out)
    }

    fn merge_join(
        &self,
        node: &PlanNode,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: &[parinda_optimizer::JoinKey],
        filter: &[BoundExpr],
    ) -> Result<Vec<Row>, ExecError> {
        let k0 = keys.first().ok_or(ExecError::Malformed("merge join without keys"))?;
        let outer_rows = self.run(outer, None)?;
        let inner_rows = self.run(inner, None)?;
        let outer_slots = slot_map(&outer.output);
        let inner_slots = slot_map(&inner.output);
        let combined_slots = slot_map(&node.output);
        let op = outer_slots.get(&k0.outer).copied().ok_or(EvalError::MissingSlot(k0.outer))?;
        let ip = inner_slots.get(&k0.inner).copied().ok_or(EvalError::MissingSlot(k0.inner))?;

        // Inputs are sorted on the first key by plan construction; merge
        // with duplicate-group handling.
        let mut out = Vec::new();
        let mut i = 0usize;
        let mut j = 0usize;
        while i < outer_rows.len() && j < inner_rows.len() {
            let a = &outer_rows[i][op];
            let b = &inner_rows[j][ip];
            if a.is_null() {
                i += 1;
                continue;
            }
            if b.is_null() {
                j += 1;
                continue;
            }
            match a.sql_cmp(b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // find the extent of the equal group on both sides
                    let mut i2 = i;
                    while i2 < outer_rows.len() && outer_rows[i2][op].sql_eq(a) {
                        i2 += 1;
                    }
                    let mut j2 = j;
                    while j2 < inner_rows.len() && inner_rows[j2][ip].sql_eq(b) {
                        j2 += 1;
                    }
                    for orow in &outer_rows[i..i2] {
                        for irow in &inner_rows[j..j2] {
                            let mut row = orow.clone();
                            row.extend(irow.iter().cloned());
                            if self.join_row_passes(&row, &combined_slots, keys, filter)? {
                                out.push(row);
                            }
                        }
                    }
                    i = i2;
                    j = j2;
                }
            }
        }
        Ok(out)
    }

    fn aggregate(
        &self,
        input: &PlanNode,
        group_by: &[Slot],
        items: &[parinda_optimizer::OutputItem],
    ) -> Result<Vec<Row>, ExecError> {
        let rows = self.run(input, None)?;
        let slots = slot_map(&input.output);
        let group_pos: Vec<usize> = group_by
            .iter()
            .map(|s| slots.get(s).copied().ok_or(EvalError::MissingSlot(*s)))
            .collect::<Result<_, _>>()?;

        // group rows
        let mut groups: Vec<(Row, Vec<usize>)> = Vec::new();
        let mut index: HashMap<RowKey, usize> = HashMap::new();
        for (ri, r) in rows.iter().enumerate() {
            let key_vals: Row = group_pos.iter().map(|&p| r[p].clone()).collect();
            let key = RowKey::encode(key_vals.iter());
            let gi = *index.entry(key).or_insert_with(|| {
                groups.push((key_vals, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(ri);
        }
        // a global aggregate over zero rows still produces one group
        if groups.is_empty() && group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let mut out = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let mut row = Vec::with_capacity(items.len());
            for item in items {
                match &item.expr {
                    BoundOutput::Scalar(e) => {
                        // evaluate on a representative member
                        let rep = members.first().map(|&ri| &rows[ri]);
                        match rep {
                            Some(r) => row.push(eval(e, r, &slots)?),
                            None => row.push(Datum::Null),
                        }
                    }
                    BoundOutput::Agg { func, arg, distinct } => {
                        row.push(self.eval_agg(*func, arg, *distinct, members, &rows, &slots)?);
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    fn eval_agg(
        &self,
        func: AggFunc,
        arg: &Option<BoundExpr>,
        distinct: bool,
        members: &[usize],
        rows: &[Row],
        slots: &SlotMap,
    ) -> Result<Datum, ExecError> {
        // COUNT(*) counts rows regardless of values.
        if arg.is_none() {
            return Ok(Datum::Int(members.len() as i64));
        }
        let expr = arg.as_ref().unwrap();
        let mut values: Vec<Datum> = Vec::with_capacity(members.len());
        for &ri in members {
            let v = eval(expr, &rows[ri], slots)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        if distinct {
            let mut seen = std::collections::HashSet::new();
            values.retain(|v| seen.insert(RowKey::encode(std::iter::once(v))));
        }
        Ok(match func {
            AggFunc::Count => Datum::Int(values.len() as i64),
            AggFunc::Min => values
                .iter()
                .min_by(|a, b| a.sql_cmp(b))
                .cloned()
                .unwrap_or(Datum::Null),
            AggFunc::Max => values
                .iter()
                .max_by(|a, b| a.sql_cmp(b))
                .cloned()
                .unwrap_or(Datum::Null),
            AggFunc::Sum => {
                if values.is_empty() {
                    Datum::Null
                } else if values.iter().all(|v| matches!(v, Datum::Int(_))) {
                    Datum::Int(values.iter().filter_map(|v| v.as_i64()).sum())
                } else {
                    Datum::Float(values.iter().filter_map(|v| v.as_f64()).sum())
                }
            }
            AggFunc::Avg => {
                if values.is_empty() {
                    Datum::Null
                } else {
                    let sum: f64 = values.iter().filter_map(|v| v.as_f64()).sum();
                    Datum::Float(sum / values.len() as f64)
                }
            }
        })
    }
}
