//! Hashable row-key encoding (floats by bit pattern, strings by bytes),
//! used by hash joins, grouping, DISTINCT, and DISTINCT aggregates.

use parinda_catalog::Datum;

/// An order-insensitive, hash-friendly encoding of a datum tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowKey(Vec<u8>);

impl RowKey {
    /// Encode a sequence of datums into a key. Equal SQL values encode
    /// equally (ints and whole floats are normalized together).
    pub fn encode<'a, I: IntoIterator<Item = &'a Datum>>(values: I) -> RowKey {
        let mut buf = Vec::new();
        for v in values {
            match v {
                Datum::Null => buf.push(0u8),
                Datum::Bool(b) => {
                    buf.push(1);
                    buf.push(*b as u8);
                }
                Datum::Int(i) => {
                    // normalize with floats that hold integral values
                    buf.push(2);
                    buf.extend((*i as f64).to_bits().to_be_bytes());
                }
                Datum::Float(f) => {
                    buf.push(2);
                    // normalize -0.0 to 0.0 and NaNs to one pattern
                    let f = if f.is_nan() { f64::NAN } else if *f == 0.0 { 0.0 } else { *f };
                    buf.extend(f.to_bits().to_be_bytes());
                }
                Datum::Str(s) => {
                    buf.push(3);
                    buf.extend((s.len() as u32).to_be_bytes());
                    buf.extend(s.as_bytes());
                }
            }
        }
        RowKey(buf)
    }

    /// Does the encoded key contain a NULL marker at any position?
    pub fn has_null(values: &[Datum]) -> bool {
        values.iter().any(|v| v.is_null())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_equal_keys() {
        let a = RowKey::encode(&[Datum::Int(5), Datum::Str("x".into())]);
        let b = RowKey::encode(&[Datum::Int(5), Datum::Str("x".into())]);
        assert_eq!(a, b);
    }

    #[test]
    fn int_and_whole_float_normalize_together() {
        let a = RowKey::encode(&[Datum::Int(3)]);
        let b = RowKey::encode(&[Datum::Float(3.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_values_differ() {
        assert_ne!(
            RowKey::encode(&[Datum::Int(1)]),
            RowKey::encode(&[Datum::Int(2)])
        );
        assert_ne!(
            RowKey::encode(&[Datum::Str("ab".into())]),
            RowKey::encode(&[Datum::Str("ba".into())])
        );
    }

    #[test]
    fn string_lengths_prevent_ambiguity() {
        // ("a", "bc") must differ from ("ab", "c")
        let a = RowKey::encode(&[Datum::Str("a".into()), Datum::Str("bc".into())]);
        let b = RowKey::encode(&[Datum::Str("ab".into()), Datum::Str("c".into())]);
        assert_ne!(a, b);
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(
            RowKey::encode(&[Datum::Float(0.0)]),
            RowKey::encode(&[Datum::Float(-0.0)])
        );
    }

    #[test]
    fn null_detection() {
        assert!(RowKey::has_null(&[Datum::Int(1), Datum::Null]));
        assert!(!RowKey::has_null(&[Datum::Int(1)]));
    }
}
