//! End-to-end correctness: parse → bind → plan → execute, cross-checked
//! between physical designs (results must not depend on the design) and
//! against hand-computed answers.

use parinda_catalog::{Catalog, Column, Datum, SqlType};
use parinda_executor::{execute, Row};
use parinda_optimizer::{optimize, optimize_with, CostParams, PlannerFlags};
use parinda_sql::parse_select;
use parinda_storage::Database;

/// Deterministic small dataset: obj (200 rows), spec (40 rows).
fn setup() -> (Catalog, Database) {
    let mut cat = Catalog::new();
    let obj = cat.create_table(
        "obj",
        vec![
            Column::new("id", SqlType::Int8).not_null(),
            Column::new("ra", SqlType::Float8).not_null(),
            Column::new("kind", SqlType::Int4).not_null(),
            Column::new("name", SqlType::Text),
        ],
        0,
    );
    let spec = cat.create_table(
        "spec",
        vec![
            Column::new("sid", SqlType::Int8).not_null(),
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("z", SqlType::Float8),
        ],
        0,
    );
    let mut db = Database::new();
    let obj_rows: Vec<Row> = (0..200)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Float(i as f64 * 1.8),
                Datum::Int(i % 4),
                if i % 10 == 0 { Datum::Null } else { Datum::Str(format!("obj{i}")) },
            ]
        })
        .collect();
    let spec_rows: Vec<Row> = (0..40)
        .map(|i| {
            vec![
                Datum::Int(1000 + i),
                Datum::Int(i * 5), // joins to obj.id multiples of 5
                if i % 7 == 0 { Datum::Null } else { Datum::Float(i as f64 * 0.01) },
            ]
        })
        .collect();
    db.load_table(&mut cat, obj, obj_rows).unwrap();
    db.load_table(&mut cat, spec, spec_rows).unwrap();
    db.analyze(&mut cat);
    (cat, db)
}

fn run(cat: &Catalog, db: &Database, sql: &str) -> Vec<Row> {
    let sel = parse_select(sql).unwrap();
    let (_, plan) = optimize(&sel, cat).unwrap();
    execute(&plan, cat, db).unwrap()
}

fn sorted(mut rows: Vec<Row>) -> Vec<String> {
    let mut s: Vec<String> = rows
        .drain(..)
        .map(|r| r.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("|"))
        .collect();
    s.sort();
    s
}

#[test]
fn filter_eq() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT id FROM obj WHERE kind = 2");
    assert_eq!(rows.len(), 50);
    assert!(rows.iter().all(|r| r[0].as_i64().unwrap() % 4 == 2));
}

#[test]
fn filter_range_and_projection() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT id, ra FROM obj WHERE ra BETWEEN 9.0 AND 18.0");
    // ra = 1.8*i in [9, 18] -> i in [5, 10]
    assert_eq!(rows.len(), 6);
}

#[test]
fn like_and_null_handling() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT id FROM obj WHERE name LIKE 'obj1%'");
    // obj1, obj1x, obj1xx: ids 1, 10..19 (10 is NULL name), 100..199 minus NULL names
    let expected = (0..200)
        .filter(|i| i % 10 != 0 && format!("obj{i}").starts_with("obj1"))
        .count();
    assert_eq!(rows.len(), expected);

    let nulls = run(&cat, &db, "SELECT id FROM obj WHERE name IS NULL");
    assert_eq!(nulls.len(), 20);
}

#[test]
fn arithmetic_in_select() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT id * 2 + 1 FROM obj WHERE id = 3");
    assert_eq!(rows, vec![vec![Datum::Int(7)]]);
}

#[test]
fn join_matches_expected_pairs() {
    let (cat, db) = setup();
    let rows = run(
        &cat,
        &db,
        "SELECT o.id, s.sid FROM obj o, spec s WHERE o.id = s.objid",
    );
    // spec.objid = i*5 for i in 0..40 -> 0..195 step 5, all within obj ids
    assert_eq!(rows.len(), 40);
}

#[test]
fn join_with_restriction() {
    let (cat, db) = setup();
    let rows = run(
        &cat,
        &db,
        "SELECT o.id FROM obj o, spec s WHERE o.id = s.objid AND o.kind = 0 AND s.z > 0.1",
    );
    // kind = 0 -> id % 4 == 0; objid = 5i so need 5i % 4 == 0 -> i % 4 == 0
    // z = 0.01*i > 0.1 -> i > 10; z null when i % 7 == 0 (excluded anyway by > )
    let expected = (0..40)
        .filter(|&i| i % 4 == 0 && i > 10 && i % 7 != 0)
        .count();
    assert_eq!(rows.len(), expected);
}

#[test]
fn group_by_aggregates() {
    let (cat, db) = setup();
    let rows = run(
        &cat,
        &db,
        "SELECT kind, COUNT(*), MIN(id), MAX(id), AVG(ra) FROM obj GROUP BY kind ORDER BY kind",
    );
    assert_eq!(rows.len(), 4);
    // kind 0: ids 0,4,...,196 -> count 50, min 0, max 196
    assert_eq!(rows[0][0], Datum::Int(0));
    assert_eq!(rows[0][1], Datum::Int(50));
    assert_eq!(rows[0][2], Datum::Int(0));
    assert_eq!(rows[0][3], Datum::Int(196));
}

#[test]
fn count_ignores_nulls_count_star_does_not() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT COUNT(*), COUNT(name) FROM obj");
    assert_eq!(rows[0][0], Datum::Int(200));
    assert_eq!(rows[0][1], Datum::Int(180));
}

#[test]
fn distinct_count() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT COUNT(DISTINCT kind) FROM obj");
    assert_eq!(rows[0][0], Datum::Int(4));
}

#[test]
fn order_by_desc_and_limit() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT id FROM obj ORDER BY id DESC LIMIT 3");
    assert_eq!(
        rows,
        vec![vec![Datum::Int(199)], vec![Datum::Int(198)], vec![Datum::Int(197)]]
    );
}

#[test]
fn select_distinct() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT DISTINCT kind FROM obj");
    assert_eq!(rows.len(), 4);
}

#[test]
fn results_invariant_under_indexes() {
    // The core what-if guarantee in reverse: materializing a design feature
    // must never change query results.
    let queries = [
        "SELECT id FROM obj WHERE id = 42",
        "SELECT id, ra FROM obj WHERE ra BETWEEN 50.0 AND 120.0 AND kind = 1",
        "SELECT o.id, s.z FROM obj o, spec s WHERE o.id = s.objid AND s.z > 0.05",
        "SELECT kind, COUNT(*) FROM obj WHERE id < 100 GROUP BY kind",
        "SELECT id FROM obj WHERE kind IN (1, 3) ORDER BY id LIMIT 20",
    ];
    let (cat, db) = setup();
    let before: Vec<_> = queries.iter().map(|q| sorted(run(&cat, &db, q))).collect();

    let (mut cat2, mut db2) = setup();
    for (name, tbl, cols) in [
        ("i_obj_id", "obj", vec!["id"]),
        ("i_obj_kind_ra", "obj", vec!["kind", "ra"]),
        ("i_spec_objid", "spec", vec!["objid"]),
        ("i_obj_ra", "obj", vec!["ra"]),
    ] {
        let id = cat2.create_index(name, tbl, &cols).unwrap();
        db2.build_index(&mut cat2, id).unwrap();
    }
    let after: Vec<_> = queries.iter().map(|q| sorted(run(&cat2, &db2, q))).collect();
    for ((q, b), a) in queries.iter().zip(&before).zip(&after) {
        assert_eq!(b, a, "results changed for {q}");
    }
}

#[test]
fn results_invariant_under_flags() {
    // Forcing different join methods must not change results.
    let (mut cat, mut db) = setup();
    let id = cat.create_index("i_obj_id", "obj", &["id"]).unwrap();
    db.build_index(&mut cat, id).unwrap();
    let sql = "SELECT o.id, s.sid FROM obj o, spec s WHERE o.id = s.objid AND o.kind = 0";
    let sel = parse_select(sql).unwrap();

    let mut results = Vec::new();
    for (nl, hj, mj) in [
        (true, true, true),
        (false, true, true),
        (true, false, true),
        (true, true, false),
        (false, false, true),
        (true, false, false),
    ] {
        let flags = PlannerFlags {
            enable_nestloop: nl,
            enable_hashjoin: hj,
            enable_mergejoin: mj,
            ..Default::default()
        };
        let (_, plan) = optimize_with(&sel, &cat, &CostParams::default(), &flags).unwrap();
        results.push(sorted(execute(&plan, &cat, &db).unwrap()));
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn empty_result_sets() {
    let (cat, db) = setup();
    assert!(run(&cat, &db, "SELECT id FROM obj WHERE id = 99999").is_empty());
    assert!(run(&cat, &db, "SELECT id FROM obj WHERE id < 0").is_empty());
    // aggregate over empty input still yields one row
    let rows = run(&cat, &db, "SELECT COUNT(*) FROM obj WHERE id < 0");
    assert_eq!(rows, vec![vec![Datum::Int(0)]]);
}

#[test]
fn three_way_join() {
    let (mut cat, mut db) = setup();
    let pairs = cat.create_table(
        "pairs",
        vec![
            Column::new("a", SqlType::Int8).not_null(),
            Column::new("b", SqlType::Int8).not_null(),
        ],
        0,
    );
    let rows: Vec<Row> = (0..20).map(|i| vec![Datum::Int(i * 10), Datum::Int(i * 5)]).collect();
    db.load_table(&mut cat, pairs, rows).unwrap();
    db.analyze_table(&mut cat, pairs);

    let got = run(
        &cat,
        &db,
        "SELECT o.id, p.b, s.sid FROM obj o, pairs p, spec s \
         WHERE o.id = p.a AND p.b = s.objid",
    );
    // p: (10i, 5i); o.id = 10i exists for i<20; s.objid = 5j -> need 5i = 5j
    assert_eq!(got.len(), 20);
}

#[test]
fn qualified_wildcard() {
    let (cat, db) = setup();
    let rows = run(&cat, &db, "SELECT s.* FROM spec s WHERE s.sid = 1005");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].len(), 3);
}

#[test]
fn merge_join_forced_produces_correct_results() {
    // force merge join explicitly and cross-check against hash join
    let (mut cat, mut db) = setup();
    let id = cat.create_index("i_obj_id", "obj", &["id"]).unwrap();
    db.build_index(&mut cat, id).unwrap();
    let sql = "SELECT o.id, s.sid FROM obj o, spec s WHERE o.id = s.objid";
    let sel = parse_select(sql).unwrap();
    let mj_flags = PlannerFlags {
        enable_hashjoin: false,
        enable_nestloop: false,
        ..Default::default()
    };
    let (_, mj_plan) = optimize_with(&sel, &cat, &CostParams::default(), &mj_flags).unwrap();
    let mut saw_merge = false;
    mj_plan.walk(&mut |n| {
        if n.node_name() == "Merge Join" {
            saw_merge = true;
        }
    });
    assert!(saw_merge, "merge join should be the only enabled join method");
    let (_, hj_plan) = optimize(&sel, &cat).unwrap();
    assert_eq!(
        sorted(execute(&mj_plan, &cat, &db).unwrap()),
        sorted(execute(&hj_plan, &cat, &db).unwrap())
    );
}

#[test]
fn missing_heap_and_unbuilt_index_error_cleanly() {
    use parinda_executor::ExecError;
    // catalog says the table/index exist; storage has neither
    let mut cat = parinda_catalog::Catalog::new();
    cat.create_table(
        "ghost",
        vec![Column::new("a", SqlType::Int8).not_null()],
        100,
    );
    let db = Database::new();
    let sel = parse_select("SELECT a FROM ghost").unwrap();
    let (_, plan) = optimize(&sel, &cat).unwrap();
    assert!(matches!(
        execute(&plan, &cat, &db),
        Err(ExecError::MissingHeap(_))
    ));

    // a what-if (never built) index must fail execution with MissingIndex
    let (mut cat2, db2) = setup();
    cat2.create_index("i_never_built", "obj", &["id"]).unwrap();
    let sel2 = parse_select("SELECT ra FROM obj WHERE id = 3").unwrap();
    let (_, plan2) = optimize(&sel2, &cat2).unwrap();
    if !plan2.indexes_used().is_empty() {
        assert!(matches!(
            execute(&plan2, &cat2, &db2),
            Err(ExecError::MissingIndex(_))
        ));
    }
}
