//! Property test: for random single-table predicates, the full
//! parse→bind→plan→execute pipeline must agree with a naive row-by-row
//! reference evaluator — under every physical design.

use parinda_catalog::{Catalog, Column, Datum, SqlType};
use parinda_executor::execute;
use parinda_optimizer::optimize;
use parinda_sql::parse_select;
use parinda_storage::Database;
use proptest::prelude::*;

/// Deterministic table: 300 rows of (id, v float, k small-int).
fn setup(build_indexes: bool) -> (Catalog, Database) {
    let mut cat = Catalog::new();
    let t = cat.create_table(
        "t",
        vec![
            Column::new("id", SqlType::Int8).not_null(),
            Column::new("v", SqlType::Float8).not_null(),
            Column::new("k", SqlType::Int4).not_null(),
        ],
        0,
    );
    let mut db = Database::new();
    let rows: Vec<Vec<Datum>> = (0..300)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Float(((i * 37) % 100) as f64 / 10.0),
                Datum::Int(i % 7),
            ]
        })
        .collect();
    db.load_table(&mut cat, t, rows).unwrap();
    db.analyze(&mut cat);
    if build_indexes {
        for (name, cols) in [("i_id", vec!["id"]), ("i_v", vec!["v"]), ("i_kv", vec!["k", "v"])] {
            let id = cat.create_index(name, "t", &cols).unwrap();
            db.build_index(&mut cat, id).unwrap();
        }
    }
    (cat, db)
}

/// The reference evaluator: filter rows literally.
fn reference(pred: &Pred) -> Vec<i64> {
    (0..300i64)
        .filter(|&i| {
            let v = ((i * 37) % 100) as f64 / 10.0;
            let k = i % 7;
            pred.eval(i, v, k)
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Pred {
    IdEq(i64),
    VRange(f64, f64),
    KEq(i64),
    KInVRange(i64, f64, f64),
    Or(i64, i64),
}

impl Pred {
    fn sql(&self) -> String {
        match self {
            Pred::IdEq(x) => format!("id = {x}"),
            Pred::VRange(a, b) => format!("v BETWEEN {a:.2} AND {b:.2}"),
            Pred::KEq(k) => format!("k = {k}"),
            Pred::KInVRange(k, a, b) => format!("k = {k} AND v BETWEEN {a:.2} AND {b:.2}"),
            Pred::Or(a, b) => format!("k = {a} OR k = {b}"),
        }
    }

    fn eval(&self, id: i64, v: f64, k: i64) -> bool {
        match self {
            Pred::IdEq(x) => id == *x,
            Pred::VRange(a, b) => v >= *a && v <= *b,
            Pred::KEq(x) => k == *x,
            Pred::KInVRange(x, a, b) => k == *x && v >= *a && v <= *b,
            Pred::Or(a, b) => k == *a || k == *b,
        }
    }
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (-10i64..310).prop_map(Pred::IdEq),
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(a, b)| {
            let r = |x: f64| (x * 100.0).round() / 100.0;
            Pred::VRange(r(a.min(b)), r(a.max(b)))
        }),
        (0i64..9).prop_map(Pred::KEq),
        ((0i64..9), 0.0f64..10.0, 0.0f64..10.0).prop_map(|(k, a, b)| {
            let r = |x: f64| (x * 100.0).round() / 100.0;
            Pred::KInVRange(k, r(a.min(b)), r(a.max(b)))
        }),
        ((0i64..9), (0i64..9)).prop_map(|(a, b)| Pred::Or(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn executor_matches_reference(pred in pred_strategy(), with_indexes in any::<bool>()) {
        let (cat, db) = setup(with_indexes);
        let sql = format!("SELECT id FROM t WHERE {}", pred.sql());
        let sel = parse_select(&sql).unwrap();
        let (_, plan) = optimize(&sel, &cat).unwrap();
        let mut got: Vec<i64> = execute(&plan, &cat, &db)
            .unwrap()
            .into_iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        got.sort_unstable();
        let want = reference(&pred);
        prop_assert_eq!(got, want, "sql: {}", sql);
    }

    #[test]
    fn aggregates_match_reference(pred in pred_strategy()) {
        let (cat, db) = setup(true);
        let sql = format!("SELECT COUNT(*), MIN(id), MAX(id) FROM t WHERE {}", pred.sql());
        let sel = parse_select(&sql).unwrap();
        let (_, plan) = optimize(&sel, &cat).unwrap();
        let rows = execute(&plan, &cat, &db).unwrap();
        let want = reference(&pred);
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(rows[0][0].as_i64().unwrap(), want.len() as i64, "sql: {}", sql);
        if want.is_empty() {
            prop_assert!(rows[0][1].is_null());
            prop_assert!(rows[0][2].is_null());
        } else {
            prop_assert_eq!(rows[0][1].as_i64().unwrap(), *want.first().unwrap());
            prop_assert_eq!(rows[0][2].as_i64().unwrap(), *want.last().unwrap());
        }
    }

    #[test]
    fn limit_truncates_exactly(pred in pred_strategy(), n in 0u64..50) {
        let (cat, db) = setup(false);
        let sql = format!("SELECT id FROM t WHERE {} ORDER BY id LIMIT {n}", pred.sql());
        let sel = parse_select(&sql).unwrap();
        let (_, plan) = optimize(&sel, &cat).unwrap();
        let got: Vec<i64> = execute(&plan, &cat, &db)
            .unwrap()
            .into_iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let want: Vec<i64> = reference(&pred).into_iter().take(n as usize).collect();
        prop_assert_eq!(got, want, "sql: {}", sql);
    }
}
