//! SQL front-end errors.

use std::fmt;

/// Error produced by the lexer or parser, carrying a byte offset into the
/// original statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Byte offset of the offending token or character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
    /// Which stage produced the error.
    pub stage: Stage,
}

/// Front-end stage that raised the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
}

impl SqlError {
    /// A lexer error at `offset`.
    pub fn lex(offset: usize, message: impl Into<String>) -> Self {
        SqlError { offset, message: message.into(), stage: Stage::Lex }
    }

    /// A parser error at `offset`.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        SqlError { offset, message: message.into(), stage: Stage::Parse }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
        };
        write!(f, "{stage} error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_stage() {
        let e = SqlError::parse(12, "expected FROM");
        assert_eq!(e.to_string(), "parse error at byte 12: expected FROM");
    }
}
