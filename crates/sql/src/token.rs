//! Token stream produced by the lexer.

use std::fmt;

/// SQL keywords recognized by the parser (case-insensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    As,
    Join,
    Inner,
    Left,
    Outer,
    On,
    Group,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Distinct,
    Between,
    In,
    Is,
    Null,
    Like,
    True,
    False,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl Keyword {
    /// Parse a keyword from an identifier, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "AS" => As,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "OUTER" => Outer,
            "ON" => On,
            "GROUP" => Group,
            "ORDER" => Order,
            "BY" => By,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "DISTINCT" => Distinct,
            "BETWEEN" => Between,
            "IN" => In,
            "IS" => Is,
            "NULL" => Null,
            "LIKE" => Like,
            "TRUE" => True,
            "FALSE" => False,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            _ => return None,
        })
    }
}

/// One lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset in the input where the token starts.
    pub offset: usize,
}

/// The token kinds of our SQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unquoted identifier, lower-cased (PostgreSQL folding).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::NotEq => write!(f, "`<>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::LtEq => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::GtEq => write!(f, "`>=`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_case_insensitive() {
        assert_eq!(Keyword::from_ident("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("photoobj"), None);
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(TokenKind::Comma.to_string(), "`,`");
        assert_eq!(TokenKind::Ident("ra".into()).to_string(), "identifier `ra`");
    }
}
