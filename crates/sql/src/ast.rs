//! Abstract syntax tree for the SELECT subset PARINDA workloads use.
//!
//! Explicit `JOIN ... ON` clauses are normalized by the parser into the
//! comma-separated `FROM` list plus `WHERE` conjuncts (inner joins only),
//! matching how the SDSS workload is written and simplifying the planner's
//! query-graph extraction.

use parinda_catalog::Datum;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Literal {
    /// Convert to a runtime [`Datum`].
    pub fn to_datum(&self) -> Datum {
        match self {
            Literal::Null => Datum::Null,
            Literal::Bool(b) => Datum::Bool(*b),
            Literal::Int(i) => Datum::Int(*i),
            Literal::Float(f) => Datum::Float(*f),
            Literal::Str(s) => Datum::Str(s.clone()),
        }
    }
}

/// A possibly-qualified column reference (`t.ra` or `ra`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, if qualified.
    pub table: Option<String>,
    /// Column name (lower-cased by the lexer).
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

/// Binary operators, in the precedence groups the parser uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
}

impl BinOp {
    /// Is this a comparison operator (yields boolean)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// Mirror of the comparison when operands are swapped (`a < b` ⇔ `b > a`).
    pub fn commute(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Eq,
            BinOp::NotEq => BinOp::NotEq,
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            _ => return None,
        })
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Literal),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// Aggregate call; `arg = None` encodes `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
}

impl Expr {
    /// Shorthand for a binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `a AND b`, skipping trivial sides.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    /// Split a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary { op: BinOp::And, left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from conjuncts; `None` when empty.
    pub fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() { return None } else { exprs.remove(0) };
        Some(exprs.into_iter().fold(first, Expr::and))
    }

    /// All column references mentioned anywhere in the expression.
    pub fn column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    /// Visit every column reference.
    pub fn visit_columns<'a, F: FnMut(&'a ColumnRef)>(&'a self, f: &mut F) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Not(e) => e.visit_columns(f),
            Expr::Between { expr, low, high, .. } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Like { expr, .. } => expr.visit_columns(f),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// Does the expression contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.contains_aggregate(),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table in the FROM list with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the rest of the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl Select {
    /// All column references in every clause of the statement.
    pub fn all_column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        for item in &self.items {
            if let SelectItem::Expr { expr, .. } = item {
                expr.visit_columns(&mut |c| out.push(c));
            }
        }
        if let Some(w) = &self.where_clause {
            w.visit_columns(&mut |c| out.push(c));
        }
        for e in &self.group_by {
            e.visit_columns(&mut |c| out.push(c));
        }
        for o in &self.order_by {
            o.expr.visit_columns(&mut |c| out.push(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and(Expr::and(col("a"), col("b")), col("c"));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn conjoin_round_trips() {
        let parts = vec![col("a"), col("b"), col("c")];
        let e = Expr::conjoin(parts).unwrap();
        assert_eq!(e.conjuncts().len(), 3);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let e = Expr::binary(BinOp::Or, col("a"), col("b"));
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn column_refs_are_collected() {
        let e = Expr::Between {
            expr: Box::new(col("ra")),
            low: Box::new(Expr::Literal(Literal::Int(1))),
            high: Box::new(col("dec")),
            negated: false,
        };
        let refs = e.column_refs();
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn commute_flips_inequalities() {
        assert_eq!(BinOp::Lt.commute(), Some(BinOp::Gt));
        assert_eq!(BinOp::Eq.commute(), Some(BinOp::Eq));
        assert_eq!(BinOp::Add.commute(), None);
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::Agg { func: AggFunc::Count, arg: None, distinct: false };
        let e = Expr::binary(BinOp::Add, agg, Expr::Literal(Literal::Int(1)));
        assert!(e.contains_aggregate());
        assert!(!col("x").contains_aggregate());
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef { name: "photoobj".into(), alias: Some("p".into()) };
        assert_eq!(t.binding(), "p");
        let t2 = TableRef { name: "photoobj".into(), alias: None };
        assert_eq!(t2.binding(), "photoobj");
    }
}
