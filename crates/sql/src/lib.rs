//! # parinda-sql
//!
//! SQL front-end substrate: lexer, AST, recursive-descent parser, and
//! pretty-printer for the analytical SELECT subset used by SDSS-style
//! workloads (joins, range/equality/IN/BETWEEN/LIKE predicates,
//! aggregation, GROUP BY / ORDER BY / LIMIT).
//!
//! PARINDA needs a SQL front-end twice: to analyze the input workload for
//! candidate design features, and to *rewrite* queries against suggested
//! partitions (paper §3.3). The printer guarantees rewritten statements
//! re-parse to the same AST (checked by property tests).

#![allow(missing_docs)]

pub mod ast;
pub mod ddl;
mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    AggFunc, BinOp, ColumnRef, Expr, Literal, OrderByItem, Select, SelectItem, TableRef,
};
pub use ddl::{parse_ddl_script, CreateIndex, CreateTable, Statement};
pub use error::SqlError;
pub use parser::{parse_script, parse_select};
