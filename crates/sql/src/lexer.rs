//! Hand-written SQL lexer.

use crate::error::SqlError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlError::lex(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            ',' => push(&mut tokens, TokenKind::Comma, &mut i),
            '.' => push(&mut tokens, TokenKind::Dot, &mut i),
            '(' => push(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push(&mut tokens, TokenKind::RParen, &mut i),
            '*' => push(&mut tokens, TokenKind::Star, &mut i),
            '+' => push(&mut tokens, TokenKind::Plus, &mut i),
            '-' => push(&mut tokens, TokenKind::Minus, &mut i),
            '/' => push(&mut tokens, TokenKind::Slash, &mut i),
            ';' => push(&mut tokens, TokenKind::Semicolon, &mut i),
            '=' => push(&mut tokens, TokenKind::Eq, &mut i),
            '<' => {
                let start = i;
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::LtEq, offset: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::NotEq, offset: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset: start });
                    i += 1;
                }
            }
            '>' => {
                let start = i;
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::GtEq, offset: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: start });
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token { kind: TokenKind::NotEq, offset: i });
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::lex(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            '"' => {
                // quoted identifier: preserved case, no keyword folding
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::lex(start, "unterminated quoted identifier"));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Ident(s), offset: start });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| SqlError::lex(start, "invalid numeric literal"))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => TokenKind::Float(
                            text.parse()
                                .map_err(|_| SqlError::lex(start, "invalid numeric literal"))?,
                        ),
                    }
                };
                tokens.push(Token { kind, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::from_ident(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_ascii_lowercase()),
                };
                tokens.push(Token { kind, offset: start });
            }
            other => {
                return Err(SqlError::lex(i, format!("unexpected character `{other}`")));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: bytes.len() });
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, offset: *i });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_select() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT ra FROM photoobj"),
            vec![
                Keyword(crate::token::Keyword::Select),
                Ident("ra".into()),
                Keyword(crate::token::Keyword::From),
                Ident("photoobj".into()),
                Eof
            ]
        );
    }

    #[test]
    fn identifiers_fold_to_lowercase() {
        assert_eq!(kinds("ObjID")[0], TokenKind::Ident("objid".into()));
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        assert_eq!(kinds("\"ObjID\"")[0], TokenKind::Ident("ObjID".into()));
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.5")[0], TokenKind::Float(4.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
    }

    #[test]
    fn huge_integer_becomes_float() {
        assert!(matches!(kinds("99999999999999999999")[0], TokenKind::Float(_)));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'o''neil'")[0], TokenKind::Str("o'neil".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment\n 2 /* block */ 3"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Int(3), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(kinds("< <= > >= = <> !="), vec![Lt, LtEq, Gt, GtEq, Eq, NotEq, NotEq, Eof]);
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(tokenize("select #").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("SELECT ra").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
