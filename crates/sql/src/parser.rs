//! Recursive-descent parser for the SELECT subset.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parse one SELECT statement (a trailing `;` is allowed).
pub fn parse_select(input: &str) -> Result<Select, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.select()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(select)
}

/// Parse a workload script: multiple statements separated by `;`.
pub fn parse_script(input: &str) -> Result<Vec<Select>, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_if(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.select()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_if(&TokenKind::Keyword(kw))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        self.expect(TokenKind::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(SqlError::parse(
                self.offset(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);

        let mut items = vec![self.select_item()?];
        while self.eat_if(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }

        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        let mut join_preds: Vec<Expr> = Vec::new();
        loop {
            if self.eat_if(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            } else if matches!(self.peek(), TokenKind::Keyword(Keyword::Join))
                || matches!(self.peek(), TokenKind::Keyword(Keyword::Inner))
            {
                // INNER? JOIN t ON expr — normalized into FROM + WHERE.
                self.eat_kw(Keyword::Inner);
                self.expect_kw(Keyword::Join)?;
                from.push(self.table_ref()?);
                self.expect_kw(Keyword::On)?;
                join_preds.push(self.expr()?);
            } else if matches!(self.peek(), TokenKind::Keyword(Keyword::Left)) {
                return Err(SqlError::parse(
                    self.offset(),
                    "outer joins are not supported by this subset",
                ));
            } else {
                break;
            }
        }

        let mut where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        for p in join_preds {
            where_clause = Some(match where_clause {
                Some(w) => Expr::and(w, p),
                None => p,
            });
        }

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat_if(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw(Keyword::Limit) {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::parse(
                        self.offset(),
                        format!("expected non-negative integer after LIMIT, found {other}"),
                    ))
                }
            }
        } else {
            None
        };

        Ok(Select { distinct, items, from, where_clause, group_by, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_if(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // t.* lookahead
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// Entry point: lowest precedence (OR).
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw(Keyword::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;

        let negated = if matches!(self.peek(), TokenKind::Keyword(Keyword::Not)) {
            // only valid before BETWEEN / IN / LIKE
            let next = self.tokens.get(self.pos + 1).map(|t| &t.kind);
            if matches!(
                next,
                Some(TokenKind::Keyword(Keyword::Between))
                    | Some(TokenKind::Keyword(Keyword::In))
                    | Some(TokenKind::Keyword(Keyword::Like))
            ) {
                self.bump();
                true
            } else {
                false
            }
        } else {
            false
        };

        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(TokenKind::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_if(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = match self.bump() {
                TokenKind::Str(s) => s,
                other => {
                    return Err(SqlError::parse(
                        self.offset(),
                        format!("expected string pattern after LIKE, found {other}"),
                    ))
                }
            };
            return Ok(Expr::Like { expr: Box::new(left), pattern, negated });
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }

        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_if(&TokenKind::Minus) {
            // constant-fold negative literals, otherwise 0 - expr
            return Ok(match self.unary()? {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(f)) => Expr::Literal(Literal::Float(-f)),
                other => Expr::binary(BinOp::Sub, Expr::Literal(Literal::Int(0)), other),
            });
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(kw) if agg_func(kw).is_some() => {
                self.bump();
                let Some(func) = agg_func(kw) else {
                    return Err(SqlError::parse(self.offset(), "expected aggregate function"));
                };
                self.expect(TokenKind::LParen)?;
                if self.eat_if(&TokenKind::Star) {
                    self.expect(TokenKind::RParen)?;
                    if func != AggFunc::Count {
                        return Err(SqlError::parse(
                            self.offset(),
                            "only COUNT may take * as an argument",
                        ));
                    }
                    return Ok(Expr::Agg { func, arg: None, distinct: false });
                }
                let distinct = self.eat_kw(Keyword::Distinct);
                let arg = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct })
            }
            TokenKind::Ident(first) => {
                self.bump();
                if self.eat_if(&TokenKind::Dot) {
                    let column = self.ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(first, column)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(first)))
                }
            }
            other => Err(SqlError::parse(
                self.offset(),
                format!("expected expression, found {other}"),
            )),
        }
    }
}

fn agg_func(kw: Keyword) -> Option<AggFunc> {
    Some(match kw {
        Keyword::Count => AggFunc::Count,
        Keyword::Sum => AggFunc::Sum,
        Keyword::Avg => AggFunc::Avg,
        Keyword::Min => AggFunc::Min,
        Keyword::Max => AggFunc::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let s = parse_select("SELECT ra FROM photoobj").unwrap();
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.items.len(), 1);
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn parse_star_and_qualified_star() {
        let s = parse_select("SELECT *, p.* FROM photoobj p").unwrap();
        assert_eq!(s.items[0], SelectItem::Wildcard);
        assert_eq!(s.items[1], SelectItem::QualifiedWildcard("p".into()));
    }

    #[test]
    fn parse_where_with_precedence() {
        let s = parse_select("SELECT ra FROM p WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR at top, AND binds tighter
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => match *right {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected AND under OR, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_in_like_isnull() {
        let s = parse_select(
            "SELECT x FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1,2,3) \
             AND c LIKE 'gal%' AND d IS NOT NULL AND e NOT IN (4)",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 5);
    }

    #[test]
    fn join_normalized_into_where() {
        let s = parse_select(
            "SELECT p.ra FROM photoobj p JOIN specobj s ON p.objid = s.bestobjid WHERE s.z > 0.1",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn inner_join_keyword() {
        let s = parse_select("SELECT a FROM t1 INNER JOIN t2 ON t1.x = t2.y").unwrap();
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn left_join_rejected() {
        assert!(parse_select("SELECT a FROM t1 LEFT JOIN t2 ON t1.x = t2.y").is_err());
    }

    #[test]
    fn group_order_limit() {
        let s = parse_select(
            "SELECT type, COUNT(*) FROM photoobj GROUP BY type ORDER BY type DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn aggregates() {
        let s = parse_select("SELECT COUNT(*), AVG(z), SUM(DISTINCT x) FROM t").unwrap();
        assert_eq!(s.items.len(), 3);
        match &s.items[2] {
            SelectItem::Expr { expr: Expr::Agg { distinct, .. }, .. } => assert!(distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_only() {
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse_select("SELECT x FROM t WHERE a > -5").unwrap();
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Literal::Int(-5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn aliases() {
        let s = parse_select("SELECT p.ra AS alpha, dec delta FROM photoobj AS p").unwrap();
        match &s.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("alpha")),
            _ => panic!(),
        }
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("delta")),
            _ => panic!(),
        }
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        // 'banana' parses as a table alias; 'extra' is trailing input
        assert!(parse_select("SELECT a FROM t banana extra").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
    }

    #[test]
    fn trailing_tokens_after_alias_rejected() {
        assert!(parse_select("SELECT a FROM t x y").is_err());
    }

    #[test]
    fn parse_script_splits_statements() {
        let v = parse_script("SELECT a FROM t; SELECT b FROM u;\n;SELECT c FROM w").unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn not_between() {
        let s = parse_select("SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2").unwrap();
        match s.where_clause.unwrap() {
            Expr::Between { negated, .. } => assert!(negated),
            other => panic!("{other:?}"),
        }
    }
}
