//! SQL pretty-printer.
//!
//! Used by the AutoPart query rewriter (paper §3.3) to emit the rewritten
//! workload, and by property tests to check parse → print → parse
//! round-trips.

use std::fmt;

use crate::ast::*;

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Bool(true) => write!(f, "TRUE"),
            Literal::Bool(false) => write!(f, "FALSE"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // keep a decimal point so it re-parses as a float
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Binding strength used for minimal parenthesization.
    fn precedence(&self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }
}

fn expr_precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Not(_) => 3,
        Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } | Expr::Like { .. } => 4,
        _ => 10,
    }
}

fn fmt_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if expr_precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Binary { op, left, right } => {
                let p = op.precedence();
                // comparisons are non-associative (both sides must bind
                // tighter); everything else prints left-associatively, so
                // the right side always needs to bind tighter — even for
                // semantically associative ops, or `a * (b * c)` would
                // re-parse with different structure
                let lp = if op.is_comparison() { p + 1 } else { p };
                let rp = p + 1;
                fmt_child(f, left, lp)?;
                write!(f, " {} ", op.sql())?;
                fmt_child(f, right, rp)
            }
            Expr::Not(e) => {
                write!(f, "NOT ")?;
                fmt_child(f, e, 4)
            }
            Expr::Between { expr, low, high, negated } => {
                fmt_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " BETWEEN ")?;
                fmt_child(f, low, 5)?;
                write!(f, " AND ")?;
                fmt_child(f, high, 5)
            }
            Expr::InList { expr, list, negated } => {
                fmt_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                fmt_child(f, expr, 5)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                fmt_child(f, expr, 5)?;
                write!(
                    f,
                    " {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::Agg { func, arg, distinct } => {
                let name = match func {
                    AggFunc::Count => "COUNT",
                    AggFunc::Sum => "SUM",
                    AggFunc::Avg => "AVG",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                };
                match arg {
                    None => write!(f, "{name}(*)"),
                    Some(a) => {
                        write!(f, "{name}({}{a})", if *distinct { "DISTINCT " } else { "" })
                    }
                }
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_select;

    fn round_trip(sql: &str) -> String {
        parse_select(sql).unwrap().to_string()
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("select ra, dec from photoobj where type = 3"),
            "SELECT ra, dec FROM photoobj WHERE type = 3"
        );
    }

    #[test]
    fn printed_sql_reparses_identically() {
        let cases = [
            "SELECT p.ra, s.z FROM photoobj AS p, specobj AS s \
             WHERE p.objid = s.bestobjid AND p.ra BETWEEN 180.0 AND 190.0",
            "SELECT type, COUNT(*) FROM photoobj GROUP BY type ORDER BY type DESC LIMIT 5",
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z IN (1, 2, 3)",
            "SELECT a FROM t WHERE NOT (x = 1) AND name LIKE 'gal%'",
            "SELECT a - (b - c) FROM t",
            "SELECT AVG(DISTINCT z) FROM specobj WHERE z IS NOT NULL",
        ];
        for sql in cases {
            let once = parse_select(sql).unwrap();
            let printed = once.to_string();
            let twice = parse_select(&printed).unwrap();
            assert_eq!(once, twice, "round trip failed for: {sql} -> {printed}");
        }
    }

    #[test]
    fn parens_preserved_where_needed() {
        let s = round_trip("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3");
        assert!(s.contains("(x = 1 OR y = 2)"), "{s}");
    }

    #[test]
    fn subtraction_associativity() {
        // a - (b - c) must not print as a - b - c
        let s = round_trip("SELECT a - (b - c) FROM t");
        assert!(s.contains("a - (b - c)"), "{s}");
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        let s = round_trip("SELECT x FROM t WHERE r < 2.0");
        assert!(s.contains("2.0"), "{s}");
    }
}
