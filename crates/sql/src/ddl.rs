//! DDL subset: `CREATE TABLE` and `CREATE INDEX`, so a schema can be
//! loaded from a script instead of built programmatically (the demo's
//! "original physical design" input).
//!
//! ```sql
//! CREATE TABLE photoobj (
//!     objid BIGINT NOT NULL,
//!     ra DOUBLE PRECISION,
//!     name VARCHAR(32),
//!     PRIMARY KEY (objid)
//! ) ROWS 9000000;                 -- extension: declared cardinality
//! CREATE INDEX i_ra ON photoobj (ra);
//! ```
//!
//! The non-standard `ROWS n` clause declares the table cardinality for
//! statistics-only sessions (a real server would learn it from data).

use parinda_catalog::SqlType;

use crate::ast::Select;
use crate::error::SqlError;
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: SqlType,
    pub not_null: bool,
}

/// A parsed `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub primary_key: Vec<String>,
    /// Declared cardinality (`ROWS n`), if any.
    pub rows: Option<u64>,
}

/// A parsed `CREATE INDEX`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
}

/// Any statement of the supported script language.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Select),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
}

/// Parse a mixed script of DDL and SELECT statements.
pub fn parse_ddl_script(input: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = DdlParser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement(input)?);
    }
    Ok(out)
}

struct DdlParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl DdlParser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Eat a specific bare word (DDL keywords are ordinary identifiers to
    /// the lexer, so SELECT queries may keep using them as column names).
    fn eat_word(&mut self, word: &str) -> bool {
        match self.peek() {
            TokenKind::Ident(s) if s == word => {
                self.bump();
                true
            }
            _ => false,
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), SqlError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("expected `{word}`, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(SqlError::parse(
                self.offset(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn statement(&mut self, input: &str) -> Result<Statement, SqlError> {
        if matches!(self.peek(), TokenKind::Ident(s) if s == "create") {
            self.bump();
            return self.create();
        }
        // delegate to the SELECT parser: find this statement's extent
        let start = self.offset();
        let mut end = input.len();
        while !self.at_eof() {
            if matches!(self.peek(), TokenKind::Semicolon) {
                end = self.offset();
                break;
            }
            self.bump();
        }
        let sel = crate::parser::parse_select(&input[start..end])?;
        Ok(Statement::Select(sel))
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        if self.eat_word("table") {
            return self.create_table();
        }
        if self.eat_word("index") {
            return self.create_index();
        }
        Err(SqlError::parse(
            self.offset(),
            format!("expected TABLE or INDEX after CREATE, found {}", self.peek()),
        ))
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_word("primary") {
                self.expect_word("key")?;
                self.expect(TokenKind::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            } else {
                let col = self.ident()?;
                let ty = self.type_name()?;
                let mut not_null = false;
                if self.eat(&TokenKind::Keyword(Keyword::Not)) {
                    self.expect(TokenKind::Keyword(Keyword::Null))?;
                    not_null = true;
                }
                columns.push(ColumnDef { name: col, ty, not_null });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        let rows = if self.eat_word("rows") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::parse(
                        self.offset(),
                        format!("expected row count after ROWS, found {other}"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Statement::CreateTable(CreateTable { name, columns, primary_key, rows }))
    }

    fn create_index(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect(TokenKind::Keyword(Keyword::On))?;
        let table = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(TokenKind::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex { name, table, columns }))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SqlError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn type_name(&mut self) -> Result<SqlType, SqlError> {
        let at = self.offset();
        let word = self.ident()?;
        Ok(match word.as_str() {
            "bool" | "boolean" => SqlType::Bool,
            "smallint" | "int2" => SqlType::Int2,
            "int" | "integer" | "int4" => SqlType::Int4,
            "bigint" | "int8" => SqlType::Int8,
            "real" | "float4" => SqlType::Float4,
            "float8" => SqlType::Float8,
            "double" => {
                // DOUBLE PRECISION
                self.eat_word("precision");
                SqlType::Float8
            }
            "text" => SqlType::Text,
            "date" => SqlType::Date,
            "timestamp" => SqlType::Timestamp,
            "varchar" => {
                self.expect(TokenKind::LParen)?;
                let n = match self.bump() {
                    TokenKind::Int(n) if n > 0 => n as u32,
                    other => {
                        return Err(SqlError::parse(
                            self.offset(),
                            format!("expected length after varchar(, found {other}"),
                        ))
                    }
                };
                self.expect(TokenKind::RParen)?;
                SqlType::VarChar(n)
            }
            other => {
                return Err(SqlError::parse(at, format!("unknown type `{other}`")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmts = parse_ddl_script(
            "CREATE TABLE obj (\
               id BIGINT NOT NULL,\
               ra DOUBLE PRECISION,\
               name VARCHAR(32),\
               flag BOOLEAN,\
               PRIMARY KEY (id)\
             ) ROWS 5000;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 1);
        let Statement::CreateTable(ct) = &stmts[0] else { panic!("{stmts:?}") };
        assert_eq!(ct.name, "obj");
        assert_eq!(ct.columns.len(), 4);
        assert_eq!(ct.columns[0].ty, SqlType::Int8);
        assert!(ct.columns[0].not_null);
        assert_eq!(ct.columns[1].ty, SqlType::Float8);
        assert!(!ct.columns[1].not_null);
        assert_eq!(ct.columns[2].ty, SqlType::VarChar(32));
        assert_eq!(ct.primary_key, vec!["id"]);
        assert_eq!(ct.rows, Some(5000));
    }

    #[test]
    fn parse_create_index() {
        let stmts = parse_ddl_script("CREATE INDEX i_ra ON obj (ra, dec)").unwrap();
        let Statement::CreateIndex(ci) = &stmts[0] else { panic!() };
        assert_eq!(ci.name, "i_ra");
        assert_eq!(ci.table, "obj");
        assert_eq!(ci.columns, vec!["ra", "dec"]);
    }

    #[test]
    fn mixed_script_with_selects() {
        let stmts = parse_ddl_script(
            "CREATE TABLE t (a INT) ROWS 10;\n\
             SELECT a FROM t WHERE a = 1;\n\
             CREATE INDEX i ON t (a);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::CreateTable(_)));
        assert!(matches!(stmts[1], Statement::Select(_)));
        assert!(matches!(stmts[2], Statement::CreateIndex(_)));
    }

    #[test]
    fn ddl_words_remain_usable_as_column_names() {
        // `key` and `rows` are not reserved
        let stmts =
            parse_ddl_script("CREATE TABLE t (key INT, rows INT); SELECT key FROM t").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn errors_on_unknown_type() {
        assert!(parse_ddl_script("CREATE TABLE t (a JSONB)").is_err());
    }

    #[test]
    fn errors_on_bad_create() {
        assert!(parse_ddl_script("CREATE VIEW v").is_err());
        assert!(parse_ddl_script("CREATE TABLE t (").is_err());
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let stmts = parse_ddl_script(
            "-- schema\nCREATE TABLE t (\n  a INT -- the a column\n) ROWS 1;\n",
        )
        .unwrap();
        assert_eq!(stmts.len(), 1);
    }
}
