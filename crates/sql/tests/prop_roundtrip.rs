//! Property test: pretty-printing a parsed statement and re-parsing it
//! yields the identical AST (the rewriter depends on this).

use parinda_sql::ast::*;
use parinda_sql::parse_select;
use proptest::prelude::*;

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        (-1.0e6..1.0e6f64).prop_map(|f| Literal::Float((f * 100.0).round() / 100.0)),
        "[a-z]{0,8}".prop_map(Literal::Str),
    ]
}

fn column_strategy() -> impl Strategy<Value = ColumnRef> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(ColumnRef::bare),
        ("[a-z][a-z0-9]{0,3}", "[a-z][a-z0-9_]{0,6}")
            .prop_map(|(t, c)| ColumnRef::qualified(t, c)),
    ]
    .prop_filter("avoid keywords", |c| {
        let kw = |s: &str| parinda_sql::token::Keyword::from_ident(s).is_some();
        !kw(&c.column) && c.table.as_deref().map(|t| !kw(t)).unwrap_or(true)
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy().prop_map(Expr::Literal),
        column_strategy().prop_map(Expr::Column),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::LtEq),
                    Just(BinOp::Gt),
                    Just(BinOp::GtEq),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), literal_strategy(), literal_strategy(), any::<bool>()).prop_map(
                |(e, lo, hi, neg)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(Expr::Literal(lo)),
                    high: Box::new(Expr::Literal(hi)),
                    negated: neg,
                }
            ),
            (
                inner.clone(),
                prop::collection::vec(literal_strategy().prop_map(Expr::Literal), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, neg)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: neg,
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                expr: Box::new(e),
                negated: neg,
            }),
            (inner, "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, pat, neg)| Expr::Like {
                expr: Box::new(e),
                pattern: pat,
                negated: neg,
            }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        prop::collection::vec(
            (expr_strategy(), prop::option::of("[a-z][a-z0-9]{0,5}")).prop_filter(
                "avoid keyword aliases",
                |(_, a)| {
                    a.as_deref()
                        .map(|x| parinda_sql::token::Keyword::from_ident(x).is_none())
                        .unwrap_or(true)
                },
            ),
            1..4,
        ),
        prop::collection::vec(
            ("[a-z][a-z0-9]{0,5}", prop::option::of("[a-z][a-z0-9]{0,3}")).prop_filter(
                "avoid keyword table names",
                |(n, a)| {
                    parinda_sql::token::Keyword::from_ident(n).is_none()
                        && a.as_deref()
                            .map(|x| parinda_sql::token::Keyword::from_ident(x).is_none())
                            .unwrap_or(true)
                },
            ),
            1..3,
        ),
        prop::option::of(expr_strategy()),
        any::<bool>(),
        prop::option::of(0u64..1000),
    )
        .prop_map(|(items, from, where_clause, distinct, limit)| Select {
            distinct,
            items: items
                .into_iter()
                .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                .collect(),
            from: from
                .into_iter()
                .map(|(name, alias)| TableRef { name, alias })
                .collect(),
            where_clause,
            group_by: vec![],
            order_by: vec![],
            limit,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(sel in select_strategy()) {
        let printed = sel.to_string();
        let reparsed = parse_select(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\nsql: {printed}")))?;
        prop_assert_eq!(sel, reparsed, "printed: {}", printed);
    }

    #[test]
    fn printing_is_deterministic(sel in select_strategy()) {
        prop_assert_eq!(sel.to_string(), sel.to_string());
    }
}
