//! # parinda-server
//!
//! The advisor as a service: a daemon that serves many simultaneous
//! PARINDA sessions over one [`SharedEngine`]. Each connection gets its
//! own console — private workload, staged what-if design, budgets,
//! cancellation token, and trace — while the catalog, storage, and the
//! INUM plan memo are shared copy-on-write, so one session's advisor run
//! warms the plan cache for everyone.
//!
//! The wire protocol *is* the console grammar: clients send the same
//! line-oriented commands the REPL accepts, terminated by `\n`, over a
//! plain TCP stream (std-only; no TLS, bind to loopback). Replies are
//! length-prefixed frames so clients never have to guess where output
//! ends:
//!
//! ```text
//! ok <nbytes>\n<payload>            command succeeded
//! err <kind> <nbytes>\n<payload>    command failed (kind = error taxonomy)
//! bye 0\n                           connection is closing
//! ```
//!
//! `<payload>` is exactly `<nbytes>` bytes and (when non-empty) ends in
//! a newline, so a shell client can also just stream the whole
//! connection and read it as text. One greeting frame is sent on
//! connect, then exactly one frame per request line, in order.
//!
//! Two meta-commands exist only on the wire, intercepted before console
//! dispatch: `server stats` (a stable `key value` report of the daemon's
//! counters and the shared engine's plan-cache attribution) and `server
//! shutdown` (graceful stop: in-flight advisor runs are cancelled at
//! their next checkpoint, every connection is drained, the listener
//! exits).
//!
//! Cancellation is scoped per connection: `cancel` sent while that
//! connection's advisor runs is delivered immediately to *its* token by
//! the connection's reader thread (acknowledged in order, after the
//! interrupted request's reply); it never degrades another session.
//! Budget admission is two-layer: a connection's own `budget` settings
//! compose with the server-wide [`ServerOptions::max_budget_ms`] cap
//! (the engine enforces `min` of the two).
//!
//! ## Durability
//!
//! With [`Server::bind_durable`] (the CLI's `serve --data-dir`), the
//! daemon journals every state-mutating console command to a
//! checksummed metadata WAL (`parinda-wal`) **before** applying it —
//! journal-before-apply — and periodically compacts the log into a
//! `parinda-snapshot/v1` snapshot. On startup the daemon replays
//! snapshot + WAL tail and restores every session that did not `quit`
//! cleanly; a reconnecting client adopts one with the wire-only
//! `server attach <id>` meta-command and can render its journaled
//! command list with `server transcript`. If the data dir misbehaves
//! (full disk, I/O error, injected fault), the daemon degrades to
//! ephemeral mode with a one-time `DEGRADED:` warning and a
//! `wal_append_failures` counter instead of dying. Without a data dir
//! every durability path is skipped and the daemon's output is
//! byte-identical to the ephemeral server.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use parinda::{Console, ConsoleReply, SharedEngine};
use parinda_parallel::CancelToken;
use parinda_trace::{Counter, Trace};
use parinda_wal::{DataDir, Record, Recovery, Wal};

/// How long the accept loop sleeps when no connection is pending before
/// re-checking the shutdown token.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Socket read timeout: the interval at which an idle connection's
/// reader re-checks the server shutdown token.
const READ_POLL: Duration = Duration::from_millis(50);

/// Hard cap on one request line; a longer line drops the connection
/// (protects the daemon from an unbounded-buffer client).
const MAX_LINE_BYTES: usize = 1 << 20;

/// Reply sent when a reader-intercepted `cancel` was delivered to an
/// in-flight request (distinct from the console's own pre-arm reply, so
/// clients can tell which semantics they got).
pub const CANCEL_ACK: &str =
    "cancellation delivered to the request in flight; its reply precedes this one";

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum simultaneously connected sessions; further connects are
    /// refused with an `err resource` frame. `0` means unlimited.
    pub max_sessions: usize,
    /// Server-wide per-request wall-clock cap composed (by `min`) with
    /// each session's own `budget` setting. `None` leaves sessions
    /// entirely to their own budgets.
    pub max_budget_ms: Option<u64>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { max_sessions: 64, max_budget_ms: None }
    }
}

/// Everything [`Server::bind_durable`] needs to run with a durable
/// data directory: the validated directory, what recovery found in it,
/// the engine bootstrap spec, and the snapshot cadence.
pub struct Durability {
    /// The validated data directory (see [`DataDir::open`]).
    pub data_dir: DataDir,
    /// The state recovered from it (snapshot + surviving WAL tail).
    pub recovery: Recovery,
    /// How the shared engine was built: `paper`, `laptop:<rows>`,
    /// `ddl\n<script>`, or `none`. Persisted so a restart can rebuild
    /// the identical engine without the original `--load` flag.
    pub bootstrap: String,
    /// Take a compacting snapshot every this many WAL records
    /// (clamped to at least 1). The daemon also snapshots at startup
    /// (folding the recovered tail away) and after the shutdown drain.
    pub snapshot_every: u64,
}

impl Durability {
    /// Open `path`, recover whatever it holds, and pair it with a
    /// bootstrap spec — the one recorded in the data dir wins over the
    /// caller's (a restart must rebuild the identical engine).
    pub fn open(path: &std::path::Path, bootstrap: &str) -> io::Result<Durability> {
        let data_dir = DataDir::open(path)?;
        let recovery = data_dir.recover()?;
        let bootstrap =
            recovery.bootstrap.clone().unwrap_or_else(|| bootstrap.to_string());
        Ok(Durability { data_dir, recovery, bootstrap, snapshot_every: 256 })
    }
}

/// Durable-mode state hanging off [`Inner`]: the open WAL, the
/// in-memory mirror of the journal (what snapshots persist), and the
/// consoles restored at startup awaiting `server attach`.
struct Durable {
    wal: Wal,
    bootstrap: String,
    snapshot_every: u64,
    /// Set on the first WAL failure; from then on the daemon is
    /// ephemeral (appends are skipped, snapshots suppressed).
    degraded: AtomicBool,
    /// Next durable session id to allocate.
    next_session: AtomicU64,
    /// Live durable sessions → their journaled command lines, in
    /// order. Mirrors the log so snapshots never re-read it. Lock
    /// order: `journal` before the WAL's internal lock — appends and
    /// snapshots both follow it, which is what makes a snapshot's
    /// `last_lsn` consistent with the session map it writes.
    journal: Mutex<BTreeMap<u64, Vec<String>>>,
    /// Sessions replayed at startup, waiting for a client to attach.
    restored: Mutex<BTreeMap<u64, Console>>,
}

impl Durable {
    fn lock_journal(&self) -> MutexGuard<'_, BTreeMap<u64, Vec<String>>> {
        self.journal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_restored(&self) -> MutexGuard<'_, BTreeMap<u64, Console>> {
        self.restored.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Frame a successful reply payload.
pub fn frame_output(out: &str) -> Vec<u8> {
    let mut payload = out.to_string();
    if !payload.is_empty() && !payload.ends_with('\n') {
        payload.push('\n');
    }
    let mut f = format!("ok {}\n", payload.len()).into_bytes();
    f.extend_from_slice(payload.as_bytes());
    f
}

/// Frame an error reply; the payload repeats the REPL's rendering so a
/// streaming client sees exactly what the terminal user would.
pub fn frame_error(kind: &str, message: &str) -> Vec<u8> {
    let payload = format!("error [{kind}]: {message}\n");
    let mut f = format!("err {kind} {}\n", payload.len()).into_bytes();
    f.extend_from_slice(payload.as_bytes());
    f
}

/// The closing frame.
pub fn frame_bye() -> Vec<u8> {
    b"bye 0\n".to_vec()
}

/// Frame one console reply exactly as the daemon would. Exposed so the
/// tests can build the expected serial transcript through the same
/// encoder the server uses — byte identity by construction.
pub fn frame_reply(reply: &ConsoleReply) -> Vec<u8> {
    match reply {
        ConsoleReply::Output(out) => frame_output(out),
        ConsoleReply::Error(e) => frame_error(e.kind(), &e.to_string()),
        ConsoleReply::Quit => frame_bye(),
    }
}

/// The greeting frame sent to every accepted connection.
pub fn greeting() -> Vec<u8> {
    frame_output(
        "PARINDA advisor service ready: console grammar over the wire \
         (also `server stats`, `server shutdown`)",
    )
}

/// Evaluate a failpoint probe without letting an injected panic escape
/// into the daemon's accept or request path: a panic counts as "fired".
fn failpoint_fires(probe: impl Fn() -> bool + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(probe).unwrap_or(true)
}

/// Shared daemon state: the engine, the knobs, and the counters behind
/// `server stats`.
struct Inner {
    engine: SharedEngine,
    options: ServerOptions,
    shutdown: CancelToken,
    /// Server-level observability: one `server_request` span per request
    /// across all sessions. Never attached to a session console, so
    /// per-session `profile` output is byte-identical to the REPL.
    trace: Trace,
    sessions_accepted: AtomicU64,
    sessions_rejected: AtomicU64,
    sessions_active: AtomicU64,
    requests: AtomicU64,
    request_errors: AtomicU64,
    cancelled_inflight: AtomicU64,
    worker_panics_recovered: AtomicU64,
    /// Per-connection cancellation tokens, for the shutdown fan-out.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    /// Durable-mode state; `None` runs the daemon fully ephemeral.
    durable: Option<Durable>,
}

/// What one journaling attempt did (drives the one-time `DEGRADED:`
/// warning on the reply whose command lost durability).
enum JournalOutcome {
    /// Journaled and fsynced (or durability is off / already degraded —
    /// nothing to warn about).
    Ok,
    /// This very request's append failed: durability was just lost.
    JustDegraded(String),
}

impl Inner {
    fn lock_tokens(&self) -> MutexGuard<'_, HashMap<u64, CancelToken>> {
        self.tokens.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The `server stats` report: stable `key value` lines, one per
    /// counter, grep-friendly for scripted clients. The durability
    /// block is always present (`durability off`, all zeros, when no
    /// data dir is configured) so scripted greps never have to branch.
    fn render_stats(&self) -> String {
        let report = self.trace.snapshot();
        let spans = report.spans.get("server_request").map(|s| s.count).unwrap_or(0);
        let (dur_state, restorable) = match &self.durable {
            None => ("off", 0),
            Some(d) => (
                if d.degraded.load(Ordering::Relaxed) { "degraded" } else { "on" },
                d.lock_restored().len(),
            ),
        };
        format!(
            "sessions_accepted {}\nsessions_rejected {}\nsessions_active {}\n\
             requests {}\nrequest_errors {}\ncancelled_inflight {}\n\
             worker_panics_recovered {}\nserver_request_spans {}\n\
             inum_plan_cache_hits {}\ninum_plan_cache_misses {}\n\
             inum_plan_cache_entries {}\nengine_generation {}\n\
             durability {}\nwal_records {}\nwal_bytes {}\nsnapshots_taken {}\n\
             recovery_replayed_records {}\nrecovery_truncated_tail {}\n\
             wal_append_failures {}\nrestorable_sessions {}",
            self.sessions_accepted.load(Ordering::Relaxed),
            self.sessions_rejected.load(Ordering::Relaxed),
            self.sessions_active.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.request_errors.load(Ordering::Relaxed),
            self.cancelled_inflight.load(Ordering::Relaxed),
            self.worker_panics_recovered.load(Ordering::Relaxed),
            spans,
            self.engine.plan_cache_hits(),
            self.engine.plan_cache_misses(),
            self.engine.plan_cache_entries(),
            self.engine.generation(),
            dur_state,
            report.counter(Counter::WalRecords),
            report.counter(Counter::WalBytes),
            report.counter(Counter::SnapshotsTaken),
            report.counter(Counter::RecoveryReplayedRecords),
            report.counter(Counter::RecoveryTruncatedTail),
            report.counter(Counter::WalAppendFailures),
            restorable,
        )
    }

    /// Append one record to the WAL and fsync it, containing injected
    /// panics; any failure flips the daemon to degraded ephemeral mode.
    fn durable_append(&self, d: &Durable, record: &Record) -> JournalOutcome {
        if d.degraded.load(Ordering::Relaxed) {
            return JournalOutcome::Ok; // already ephemeral; warned once
        }
        // parinda-lint: allow(guard-across-unwind): panic containment is the point — an injected WAL fault degrades the daemon instead of killing it, and the caller's journal guard unwinds cleanly on every path
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> io::Result<u64> {
                let appended = d.wal.append(record)?;
                d.wal.sync(appended.lsn)?;
                Ok(appended.bytes)
            },
        ));
        match outcome {
            Ok(Ok(bytes)) => {
                self.trace.count(Counter::WalRecords, 1);
                self.trace.count(Counter::WalBytes, bytes);
                JournalOutcome::Ok
            }
            Ok(Err(e)) => self.degrade(d, &e.to_string()),
            Err(_) => self.degrade(d, "panic inside the WAL append path"),
        }
    }

    /// Flip to degraded ephemeral mode (idempotent) and produce the
    /// one-time warning for the reply in flight.
    fn degrade(&self, d: &Durable, reason: &str) -> JournalOutcome {
        self.trace.count(Counter::WalAppendFailures, 1);
        if d.degraded.swap(true, Ordering::SeqCst) {
            return JournalOutcome::Ok; // someone else already warned
        }
        let msg = format!(
            "durability lost ({reason}); daemon continues in ephemeral mode, \
             commands after this point will not survive a restart"
        );
        eprintln!("DEGRADED: {msg}");
        JournalOutcome::JustDegraded(msg)
    }

    /// Journal one state-mutating console line for a connection,
    /// allocating its durable session id (and journaling the `open`)
    /// on first use. Holds the journal lock across the WAL appends so
    /// a concurrent snapshot can never cover an LSN whose command is
    /// missing from the session map it persists.
    fn journal_line(&self, sess: &mut ConnSession, line: &str) -> JournalOutcome {
        let Some(d) = &self.durable else { return JournalOutcome::Ok };
        if d.degraded.load(Ordering::Relaxed) {
            return JournalOutcome::Ok;
        }
        let mut journal = d.lock_journal();
        let id = match sess.durable_id {
            Some(id) => id,
            None => {
                let id = d.next_session.fetch_add(1, Ordering::SeqCst);
                match self.durable_append(d, &Record::Open(id)) {
                    JournalOutcome::Ok => {}
                    degraded => return degraded,
                }
                journal.insert(id, Vec::new());
                sess.durable_id = Some(id);
                id
            }
        };
        let line = line.trim_end_matches(['\r', '\n']).to_string();
        match self.durable_append(d, &Record::Cmd { session: id, line: line.clone() }) {
            JournalOutcome::Ok => {}
            degraded => return degraded,
        }
        journal.entry(id).or_default().push(line);
        // Periodic compaction, while we still hold the journal lock.
        if d.wal.since_snapshot() >= d.snapshot_every {
            self.snapshot_locked(d, &journal);
        }
        JournalOutcome::Ok
    }

    /// Journal a clean `quit`: the session's state is dropped, not
    /// restored on the next startup.
    fn journal_close(&self, sess: &ConnSession) {
        let (Some(d), Some(id)) = (&self.durable, sess.durable_id) else { return };
        let mut journal = d.lock_journal();
        // The close record's outcome doesn't reach a reply (the
        // connection is saying goodbye); degradation is still recorded.
        let _ = self.durable_append(d, &Record::Close(id));
        journal.remove(&id);
    }

    /// Take a compacting snapshot now (startup, periodic, shutdown).
    fn take_snapshot(&self) {
        let Some(d) = &self.durable else { return };
        let journal = d.lock_journal();
        self.snapshot_locked(d, &journal);
    }

    /// Snapshot with the journal lock already held (see the lock-order
    /// note on [`Durable::journal`]).
    fn snapshot_locked(&self, d: &Durable, journal: &BTreeMap<u64, Vec<String>>) {
        if d.degraded.load(Ordering::Relaxed) {
            return;
        }
        let next = d.next_session.load(Ordering::SeqCst);
        // parinda-lint: allow(guard-across-unwind): panic containment is the point — a snapshot panic flips the daemon to degraded mode; the journal guard held by the caller is poison-free because degradation is one atomic store
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.wal.snapshot(&d.bootstrap, next, journal)
        }));
        match outcome {
            Ok(Ok(())) => {
                self.trace.count(Counter::SnapshotsTaken, 1);
            }
            Ok(Err(e)) => {
                self.degrade(d, &format!("snapshot failed: {e}"));
            }
            Err(_) => {
                self.degrade(d, "panic inside the snapshot path");
            }
        }
    }

    /// Replay every recovered session into a live console (counted and
    /// spanned), persist the bootstrap on a fresh data dir, and fold
    /// snapshot + tail into one clean startup snapshot.
    fn recover_sessions(&self, recovery: &Recovery) {
        let Some(d) = &self.durable else { return };
        self.trace.count(Counter::RecoveryReplayedRecords, recovery.replayed_records);
        self.trace.count(Counter::RecoveryTruncatedTail, recovery.truncated_tail);
        {
            let _span = self.trace.span("recovery_replay");
            let journal = d.lock_journal().clone();
            // Replay with NO lock held: `run_line` fans out to the
            // parallel workers (catch_unwind + blocking recv), and the
            // lock analysis (parinda-lint `blocking-while-locked`)
            // rightly rejects holding `restored` across that. The
            // consoles are built locally and published in one short
            // critical section at the end.
            let mut replayed: BTreeMap<u64, Console> = BTreeMap::new();
            for (id, cmds) in &journal {
                let mut console = Console::with_engine(&self.engine);
                for line in cmds {
                    // Replay is deterministic: even a command that
                    // errors errors identically, so the overlay matches
                    // the pre-crash session bit for bit.
                    let _ = console.run_line(line);
                }
                replayed.insert(*id, console);
            }
            d.lock_restored().extend(replayed);
        }
        if recovery.bootstrap.is_none() && !d.bootstrap.is_empty() {
            let _ = self.durable_append(d, &Record::Bootstrap(d.bootstrap.clone()));
        }
        self.take_snapshot();
    }
}

/// One event from a connection's reader thread to its worker.
enum Event {
    /// A complete request line (without the trailing newline).
    Line(String),
    /// A `cancel` that was delivered straight to the in-flight request.
    CancelAck,
    /// The client hung up, sent an oversized line, or the server is
    /// shutting down.
    Eof,
}

/// Decrements `sessions_active` and unregisters the connection's cancel
/// token on every exit path, including contained panics.
struct ConnGuard {
    inner: Arc<Inner>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.inner.lock_tokens().remove(&self.id);
        self.inner.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks the calling
/// thread; [`Server::spawn`] runs it on its own thread and returns a
/// [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// A running daemon: its address plus a shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: CancelToken,
    join: thread::JoinHandle<io::Result<String>>,
}

impl ServerHandle {
    /// Where the daemon listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful stop (same as a client's `server shutdown`)
    /// and wait for the accept loop and every connection to drain.
    /// Returns the post-drain `server stats` report — rendered *after*
    /// every reader+worker pair was joined and the final snapshot
    /// taken, so tests can assert clean-point invariants (e.g.
    /// `worker_panics_recovered 0`) with no shutdown race.
    pub fn shutdown(self) -> io::Result<String> {
        self.shutdown.cancel();
        match self.join.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::new(io::ErrorKind::Other, "server thread panicked")),
        }
    }
}

impl Server {
    /// Bind the daemon to `addr` (use `127.0.0.1:0` for an ephemeral
    /// port) over a shared engine. [`ServerOptions::max_budget_ms`] is
    /// installed on the engine as the server-wide budget cap.
    pub fn bind(engine: SharedEngine, addr: &str, options: ServerOptions) -> io::Result<Server> {
        Server::make(engine, addr, options, None)
    }

    /// Bind a *durable* daemon: every state-mutating console command is
    /// journaled (fsynced) to `dur.data_dir` before it applies, the
    /// sessions recovered from the directory are replayed and held for
    /// `server attach`, and a startup snapshot folds the recovered WAL
    /// tail away. The engine passed in must have been built from
    /// `dur.bootstrap` (see [`Durability::open`]).
    pub fn bind_durable(
        engine: SharedEngine,
        addr: &str,
        options: ServerOptions,
        dur: Durability,
    ) -> io::Result<Server> {
        let Durability { data_dir, recovery, bootstrap, snapshot_every } = dur;
        let wal = data_dir.open_wal(&recovery)?;
        let durable = Durable {
            wal,
            bootstrap,
            snapshot_every: snapshot_every.max(1),
            degraded: AtomicBool::new(false),
            next_session: AtomicU64::new(recovery.next_session.max(1)),
            journal: Mutex::new(recovery.sessions.clone()),
            restored: Mutex::new(BTreeMap::new()),
        };
        let server = Server::make(engine, addr, options, Some(durable))?;
        server.inner.recover_sessions(&recovery);
        Ok(server)
    }

    fn make(
        engine: SharedEngine,
        addr: &str,
        options: ServerOptions,
        durable: Option<Durable>,
    ) -> io::Result<Server> {
        let engine = match options.max_budget_ms {
            Some(ms) => engine.with_max_budget_ms(Some(ms)),
            None => engine,
        };
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                engine,
                options,
                shutdown: CancelToken::new(),
                trace: Trace::recording(),
                sessions_accepted: AtomicU64::new(0),
                sessions_rejected: AtomicU64::new(0),
                sessions_active: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                request_errors: AtomicU64::new(0),
                cancelled_inflight: AtomicU64::new(0),
                worker_panics_recovered: AtomicU64::new(0),
                tokens: Mutex::new(HashMap::new()),
                durable,
            }),
        })
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The token that stops the daemon; cancel it from a signal handler
    /// or another thread for the same effect as `server shutdown`.
    pub fn shutdown_token(&self) -> CancelToken {
        self.inner.shutdown.clone()
    }

    /// Run the accept loop on the current thread until shutdown, then
    /// cancel every in-flight session, drain all connections (bounded
    /// by the server budget cap), take the final snapshot, and return
    /// the post-drain `server stats` report.
    pub fn run(self) -> io::Result<String> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut next_id: u64 = 0;
        while !self.inner.shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    next_id += 1;
                    self.accept_one(stream, next_id, &mut handles);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
            // Reap finished connections so the handle list stays small
            // on long-lived daemons.
            handles.retain(|h| !h.is_finished());
        }
        // Graceful shutdown: stop every in-flight advisor run at its
        // next checkpoint, then drain the reader+worker pairs *before*
        // the final snapshot so shutdown is always a clean point. The
        // drain is bounded (the server budget cap, with a floor) — a
        // wedged client cannot hold the snapshot hostage; its journaled
        // commands are already in the WAL, so recovery stays correct.
        for token in self.inner.lock_tokens().values() {
            token.cancel();
        }
        let drain_ms = self.inner.options.max_budget_ms.unwrap_or(0).max(5_000);
        let poll_ms = ACCEPT_POLL.as_millis() as u64;
        let mut waited: u64 = 0;
        let mut remaining = handles;
        loop {
            let (done, rest): (Vec<_>, Vec<_>) =
                remaining.into_iter().partition(|h| h.is_finished());
            for h in done {
                h.join().ok();
            }
            remaining = rest;
            if remaining.is_empty() || waited >= drain_ms {
                break;
            }
            thread::sleep(ACCEPT_POLL);
            waited += poll_ms;
        }
        // Clean point: no worker is (observably) mid-request; persist
        // the compacted state and report what the drain left behind.
        self.inner.take_snapshot();
        Ok(self.inner.render_stats())
    }

    /// Run the daemon on its own thread; returns once the listener is
    /// live, so the address is immediately connectable.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_token();
        let join = thread::Builder::new()
            .name("parinda-server".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, shutdown, join })
    }

    /// Admission control plus the handoff to a connection thread.
    fn accept_one(
        &self,
        mut stream: TcpStream,
        id: u64,
        handles: &mut Vec<thread::JoinHandle<()>>,
    ) {
        if failpoint_fires(|| parinda_failpoint::should_fail("server::accept")) {
            self.inner.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            stream.write_all(&frame_error("resource", "connection refused by failpoint server::accept")).ok();
            stream.shutdown(Shutdown::Both).ok();
            return;
        }
        let max = self.inner.options.max_sessions;
        if max != 0 && self.inner.sessions_active.load(Ordering::Relaxed) >= max as u64 {
            self.inner.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            stream
                .write_all(&frame_error(
                    "resource",
                    &format!("session limit reached ({max} active); retry later"),
                ))
                .ok();
            stream.shutdown(Shutdown::Both).ok();
            return;
        }
        self.inner.sessions_accepted.fetch_add(1, Ordering::Relaxed);
        self.inner.sessions_active.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new();
        self.inner.lock_tokens().insert(id, token.clone());
        let inner = Arc::clone(&self.inner);
        let spawned = thread::Builder::new()
            .name(format!("parinda-conn-{id}"))
            .spawn(move || serve_connection(inner, stream, id, token));
        match spawned {
            Ok(h) => handles.push(h),
            Err(_) => {
                // Thread spawn failed (resource exhaustion): undo the
                // bookkeeping; the guard never ran.
                self.inner.lock_tokens().remove(&id);
                self.inner.sessions_active.fetch_sub(1, Ordering::Relaxed);
                self.inner.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A connection's console plus its durability identity: the durable
/// session id is allocated lazily on the first journaled command (or
/// adopted wholesale by `server attach`).
struct ConnSession {
    console: Console,
    durable_id: Option<u64>,
    /// The connection's cancel token; re-installed on an attached
    /// console so the reader thread's `cancel` delivery keeps working.
    token: CancelToken,
}

/// The per-connection worker: owns the console, replies in request
/// order, and delegates socket reading to a companion reader thread so
/// `cancel` can interrupt a request already running.
fn serve_connection(inner: Arc<Inner>, mut stream: TcpStream, id: u64, token: CancelToken) {
    let _guard = ConnGuard { inner: Arc::clone(&inner), id };
    if stream.write_all(&greeting()).is_err() {
        return;
    }
    let busy = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Event>();
    let reader = {
        let Ok(read_half) = stream.try_clone() else { return };
        let busy = Arc::clone(&busy);
        let token = token.clone();
        let shutdown = inner.shutdown.clone();
        let counter = Arc::clone(&inner);
        thread::Builder::new()
            .name(format!("parinda-read-{id}"))
            .spawn(move || read_lines(read_half, tx, busy, token, shutdown, counter))
    };
    let Ok(reader) = reader else { return };

    let mut console = Console::with_engine(&inner.engine);
    console.set_cancel_token(token.clone());
    let mut sess = ConnSession { console, durable_id: None, token };
    loop {
        let event = match rx.recv() {
            Ok(e) => e,
            Err(_) => break,
        };
        match event {
            Event::Eof => {
                // Client gone or server stopping: best-effort farewell.
                // No `close` is journaled — an abruptly dropped durable
                // session stays restorable after a restart.
                stream.write_all(&frame_bye()).ok();
                break;
            }
            Event::CancelAck => {
                if stream.write_all(&frame_output(CANCEL_ACK)).is_err() {
                    break;
                }
            }
            Event::Line(line) => {
                busy.store(true, Ordering::SeqCst);
                let (bytes, done) = handle_request(&inner, &mut sess, &line);
                busy.store(false, Ordering::SeqCst);
                if stream.write_all(&bytes).is_err() || done {
                    break;
                }
            }
        }
    }
    // Unblock the reader if it is still waiting on the socket.
    stream.shutdown(Shutdown::Both).ok();
    reader.join().ok();
}

/// Dispatch one request line; returns the reply frame and whether the
/// connection should close afterwards.
fn handle_request(inner: &Inner, sess: &mut ConnSession, line: &str) -> (Vec<u8>, bool) {
    let _span = inner.trace.span("server_request");
    inner.requests.fetch_add(1, Ordering::Relaxed);
    if failpoint_fires(|| parinda_failpoint::should_fail("server::session")) {
        inner.request_errors.fetch_add(1, Ordering::Relaxed);
        return (frame_error("internal", "failpoint server::session"), false);
    }
    // Wire-only meta-commands, intercepted before console dispatch.
    let meta = line.trim().to_ascii_lowercase();
    if meta == "server stats" {
        return (frame_output(&inner.render_stats()), false);
    }
    if meta == "server shutdown" {
        inner.shutdown.cancel();
        let mut bytes = frame_output("shutting down: draining sessions");
        bytes.extend_from_slice(&frame_bye());
        return (bytes, true);
    }
    if meta == "server transcript" {
        return (frame_output(&render_transcript(inner, sess)), false);
    }
    if let Some(arg) = meta.strip_prefix("server attach ") {
        return (attach_session(inner, sess, arg.trim()), false);
    }
    // Journal-before-apply: a state-mutating command reaches the fsynced
    // WAL before the console sees it, so the crash-recovered replay is
    // never missing an applied mutation.
    let mut degraded_note = None;
    if inner.durable.is_some() {
        if let Ok(cmd) = parinda::parse_command(line) {
            if parinda::is_state_mutating(&cmd) {
                if let JournalOutcome::JustDegraded(msg) = inner.journal_line(sess, line) {
                    degraded_note = Some(msg);
                }
            }
        }
    }
    let reply = sess.console.run_line(line);
    if let ConsoleReply::Error(e) = &reply {
        inner.request_errors.fetch_add(1, Ordering::Relaxed);
        if e.kind() == "internal" {
            // guard() turned a worker panic into a typed reply; the
            // session (and the daemon) lives on.
            inner.worker_panics_recovered.fetch_add(1, Ordering::Relaxed);
        }
    }
    let done = matches!(reply, ConsoleReply::Quit);
    if done {
        // A clean quit drops the durable session; only abrupt
        // disconnects stay restorable.
        inner.journal_close(sess);
    }
    let bytes = match (&reply, degraded_note) {
        (ConsoleReply::Output(out), Some(note)) => {
            // Surface the durability loss on the very reply whose
            // command it affected.
            let mut combined = String::new();
            if !out.is_empty() {
                combined.push_str(out);
                if !combined.ends_with('\n') {
                    combined.push('\n');
                }
            }
            combined.push_str(&format!("DEGRADED: {note}"));
            frame_output(&combined)
        }
        _ => frame_reply(&reply),
    };
    (bytes, done)
}

/// `server transcript`: the journaled command list of this connection's
/// durable session, one line per replayable command.
fn render_transcript(inner: &Inner, sess: &ConnSession) -> String {
    let (Some(d), Some(id)) = (&inner.durable, sess.durable_id) else {
        return "no durable session: nothing journaled".into();
    };
    let journal = d.lock_journal();
    match journal.get(&id) {
        Some(cmds) if !cmds.is_empty() => cmds.join("\n"),
        _ => format!("session {id}: no journaled commands"),
    }
}

/// `server attach <id>`: adopt a session restored at startup. Refused
/// when durability is off, when this connection already has a durable
/// identity, or when no restorable session has that id.
fn attach_session(inner: &Inner, sess: &mut ConnSession, arg: &str) -> Vec<u8> {
    let Some(d) = &inner.durable else {
        return frame_error("io", "durability is off: no restorable sessions");
    };
    let Ok(id) = arg.parse::<u64>() else {
        return frame_error("parse", &format!("usage: server attach <id> (got `{arg}`)"));
    };
    if sess.durable_id.is_some() {
        return frame_error(
            "resource",
            "this connection already has a durable session; attach must come first",
        );
    }
    let Some(console) = d.lock_restored().remove(&id) else {
        return frame_error("io", &format!("no restorable session {id}"));
    };
    let replayed = d.lock_journal().get(&id).map(|c| c.len()).unwrap_or(0);
    sess.console = console;
    // The restored console carries its replay-time token; swap in this
    // connection's so the reader's in-flight `cancel` delivery works.
    sess.console.set_cancel_token(sess.token.clone());
    sess.durable_id = Some(id);
    frame_output(&format!(
        "attached durable session {id}: {replayed} journaled command(s) replayed"
    ))
}

/// The reader half of a connection: assemble request lines, deliver
/// `cancel` to an in-flight request immediately, and translate client
/// hangup / server shutdown / oversized input into one `Eof` event.
fn read_lines(
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    busy: Arc<AtomicBool>,
    token: CancelToken,
    shutdown: CancelToken,
    counter: Arc<Inner>,
) {
    stream.set_read_timeout(Some(READ_POLL)).ok();
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if shutdown.is_cancelled() {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        pending.extend_from_slice(&buf[..n]);
        if pending.len() > MAX_LINE_BYTES {
            break;
        }
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
            if line.trim().eq_ignore_ascii_case("cancel") && busy.load(Ordering::SeqCst) {
                // Deliver straight to the running request; the console
                // will see the flag at its next checkpoint. The ack is
                // queued so replies stay in request order.
                token.cancel();
                counter.cancelled_inflight.fetch_add(1, Ordering::Relaxed);
                if tx.send(Event::CancelAck).is_err() {
                    return;
                }
            } else if tx.send(Event::Line(line)).is_err() {
                return;
            }
        }
    }
    tx.send(Event::Eof).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn tiny_engine() -> SharedEngine {
        SharedEngine::from_ddl(
            "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION NOT NULL,
                               PRIMARY KEY (id)) ROWS 5000;",
        )
        .expect("tiny DDL parses")
    }

    /// Read one `ok/err/bye` frame; returns (header, payload).
    fn read_frame(r: &mut impl BufRead) -> (String, String) {
        let mut header = String::new();
        r.read_line(&mut header).expect("frame header");
        let header = header.trim_end().to_string();
        let n: usize = header
            .rsplit(' ')
            .next()
            .and_then(|w| w.parse().ok())
            .expect("sized frame header");
        let mut payload = vec![0u8; n];
        r.read_exact(&mut payload).expect("frame payload");
        (header, String::from_utf8_lossy(&payload).into_owned())
    }

    #[test]
    fn frames_are_length_prefixed() {
        assert_eq!(frame_output("hi"), b"ok 3\nhi\n".to_vec());
        assert_eq!(frame_output(""), b"ok 0\n".to_vec());
        assert_eq!(frame_bye(), b"bye 0\n".to_vec());
        let f = frame_error("parse", "nope");
        let s = String::from_utf8_lossy(&f).into_owned();
        assert!(s.starts_with("err parse "), "{s}");
        assert!(s.ends_with("error [parse]: nope\n"), "{s}");
    }

    #[test]
    fn roundtrip_one_session() {
        let server = Server::bind(tiny_engine(), "127.0.0.1:0", ServerOptions::default())
            .expect("bind");
        let handle = server.spawn().expect("spawn");
        let stream = TcpStream::connect(handle.addr())
            .expect("connect");
        let mut w = stream.try_clone().expect("clone");
        let mut r = io::BufReader::new(stream);
        let (h, _) = read_frame(&mut r); // greeting
        assert!(h.starts_with("ok "), "{h}");
        w.write_all(b"show tables\nfrobnicate\nserver stats\nquit\n")
            .expect("write");
        let (h, p) = read_frame(&mut r);
        assert!(h.starts_with("ok "), "{h}");
        assert!(p.contains("obs"), "{p}");
        let (h, p) = read_frame(&mut r);
        assert!(h.starts_with("err parse "), "{h}");
        assert!(p.contains("unknown command"), "{p}");
        let (h, p) = read_frame(&mut r);
        assert!(h.starts_with("ok "), "{h}");
        assert!(p.contains("requests 3"), "{p}");
        assert!(p.contains("worker_panics_recovered 0"), "{p}");
        assert!(p.contains("server_request_spans "), "{p}");
        let (h, _) = read_frame(&mut r);
        assert_eq!(h, "bye 0");
        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn session_limit_refuses_with_resource_error() {
        let server = Server::bind(
            tiny_engine(),
            "127.0.0.1:0",
            ServerOptions { max_sessions: 1, ..ServerOptions::default() },
        )
        .expect("bind");
        let handle = server.spawn().expect("spawn");
        let first = TcpStream::connect(handle.addr())
            .expect("connect");
        let mut r1 = io::BufReader::new(first);
        let (h, _) = read_frame(&mut r1);
        assert!(h.starts_with("ok "), "{h}");
        // Second connection must be refused while the first is active.
        let second = TcpStream::connect(handle.addr())
            .expect("connect");
        let mut r2 = io::BufReader::new(second);
        let (h, p) = read_frame(&mut r2);
        assert!(h.starts_with("err resource "), "{h}");
        assert!(p.contains("session limit"), "{p}");
        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn shutdown_drains_idle_connections() {
        let server = Server::bind(tiny_engine(), "127.0.0.1:0", ServerOptions::default())
            .expect("bind");
        let handle = server.spawn().expect("spawn");
        let stream = TcpStream::connect(handle.addr())
            .expect("connect");
        let mut r = io::BufReader::new(stream);
        let (h, _) = read_frame(&mut r);
        assert!(h.starts_with("ok "), "{h}");
        // No quit: the idle connection must be drained by shutdown.
        handle.shutdown().expect("clean shutdown");
        let (h, _) = read_frame(&mut r);
        assert_eq!(h, "bye 0");
    }
}
