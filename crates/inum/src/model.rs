//! The INUM cached cost model (Papadomanolakis, Dash, Ailamaki, VLDB'07;
//! paper §3.4).
//!
//! INUM exploits the fact that an optimal plan's *internal* nodes (joins,
//! sorts, aggregation) do not change when only the access paths under them
//! change, as long as the inputs keep the same interesting orders. So:
//!
//! 1. For each query, cache one optimal internal plan per combination of
//!    per-relation interesting orders × nested-loop on/off (the what-if
//!    join component's two scenarios).
//! 2. To cost a configuration, pick for each relation the cheapest access
//!    path the configuration offers (computed once per candidate and
//!    memoized), add the cached internal cost, and take the minimum over
//!    the cached cases.
//!
//! This turns "millions of query cost estimations" into table lookups plus
//! a few additions — "in the order of minutes instead of days".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use parinda_catalog::{Catalog, Index, IndexId, MetadataProvider};
use parinda_optimizer::cost::sort_cost;
use parinda_optimizer::planner::{base_rel_rows, base_scan_paths};
use parinda_optimizer::{
    bind, plan_query, BoundQuery, CostParams, PlanKind, PlanNode, PlannerFlags,
};
use parinda_parallel::{
    par_try_map_budgeted_traced, par_try_map_indexed_traced, Budget, Parallelism,
};
use parinda_sql::Select;
use parinda_trace::{Counter, Trace};
use parinda_whatif::{HypotheticalCatalog, JoinScenario};

use crate::config::{CandId, CandidateIndex, Configuration};
use crate::shared::{PlanKey, SharedPlanCache};

/// Maximum interesting-order combinations cached per query.
const MAX_CASES_PER_QUERY: usize = 24;

/// Cache-construction options, exposed for the ablation experiments:
/// how rich is the cached internal-plan set?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InumOptions {
    /// Cap on interesting-order combinations per query (1 = only the
    /// unordered case, i.e. no interesting-order modelling).
    pub max_cases_per_query: usize,
    /// Cache the nested-loop on/off *pair* per case (paper §3.2's what-if
    /// join component). `false` = only the default-flags plan.
    pub join_scenario_pairs: bool,
}

impl Default for InumOptions {
    fn default() -> Self {
        InumOptions { max_cases_per_query: MAX_CASES_PER_QUERY, join_scenario_pairs: true }
    }
}

/// One access requirement of a cached internal plan.
#[derive(Debug, Clone, PartialEq)]
struct RelAccess {
    rel: usize,
    /// How many times the scan executes (parameterized NL inner: outer rows).
    multiplier: f64,
    /// Column (table coords) the scan's output must be ordered on.
    required_order: Option<usize>,
    /// `Some(col)`: the scan must be an index probe on `col` (only under a
    /// parameterized nested loop).
    param_probe: Option<usize>,
}

/// A cached internal plan for one (orders, join-scenario) case.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CachedCase {
    internal_cost: f64,
    accesses: Vec<RelAccess>,
}

/// Memo key/value store: (query, rel, candidate) → access cost
/// (`None` candidate = sequential scan; `None` value = not applicable).
/// Guarded by a mutex so concurrent what-if sweeps can share it; entries
/// are pure functions of the key, so racing writers insert equal values
/// and the cache stays deterministic under any interleaving.
type AccessMemo = Mutex<HashMap<(usize, usize, Option<usize>), Option<AccessCost>>>;

/// Per-(query, rel, candidate) memoized access-path cost.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AccessCost {
    /// Total cost of one scan execution.
    cost: f64,
    /// Leading key column of the path (order it provides), if an index.
    order_col: Option<usize>,
}

/// The INUM model over a workload.
pub struct InumModel<'a> {
    catalog: &'a Catalog,
    params: CostParams,
    options: InumOptions,
    par: Parallelism,
    queries: Vec<BoundQuery>,
    /// Canonical SQL text per query, parallel to `queries`. This is the
    /// identity [`apply_delta`] matches templates by when an epoch
    /// advances: unchanged text ⇒ the bound query, its cached cases, and
    /// its memo entries all carry over.
    ///
    /// [`apply_delta`]: InumModel::apply_delta
    sql: Vec<String>,
    /// Per-query workload weights (statement multiplicities from template
    /// clustering); `None` = every query counts once. Weights scale
    /// [`workload_cost`] and steer budgeted cache population toward the
    /// heaviest templates first — they never change a single query's cost.
    ///
    /// [`workload_cost`]: InumModel::workload_cost
    weights: Option<Vec<f64>>,
    /// Cached internal-plan cases per query; `None` when a build budget
    /// expired before this query's cache was populated — [`cost`] then
    /// falls back to a live optimizer call ([`exact_cost`]). Case lists
    /// are `Arc`'d so an engine-wide [`SharedPlanCache`] can hand the
    /// same list to many models without copying.
    ///
    /// [`cost`]: InumModel::cost
    /// [`exact_cost`]: InumModel::exact_cost
    cases: Vec<Option<Arc<Vec<CachedCase>>>>,
    candidates: Vec<CandidateIndex>,
    access_memo: AccessMemo,
    /// memo: (query, rel, candidate) -> parameterized probe cost
    probe_memo: Mutex<HashMap<(usize, usize, usize), Option<f64>>>,
    estimations: AtomicU64,
    full_optimizations: AtomicU64,
    /// Observability handle (disabled by default): cache hits/misses and
    /// optimizer invocations are counted here; build phases record spans.
    /// Tracing never feeds back into any cost or ordering decision.
    trace: Trace,
}

/// Errors building the model.
#[derive(Debug, Clone, PartialEq)]
pub enum InumError {
    Bind(usize, String),
    Plan(usize, String),
    /// A cache-population worker panicked; the panic was contained at the
    /// parallel boundary and surfaces here (deterministic at any thread
    /// count: the lowest-index failure is reported).
    Worker(String),
}

impl std::fmt::Display for InumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InumError::Bind(q, e) => write!(f, "query {q}: bind failed: {e}"),
            InumError::Plan(q, e) => write!(f, "query {q}: planning failed: {e}"),
            InumError::Worker(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InumError {}

/// What one [`InumModel::apply_delta`] reused versus rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// Templates whose bound query and cached cases carried over.
    pub reused: usize,
    /// Templates bound and/or populated from scratch (new arrivals plus
    /// any the original build's budget had skipped).
    pub rebuilt: usize,
    /// Old templates dropped, with their memo entries, because they no
    /// longer appear in the workload.
    pub evicted: usize,
}

impl<'a> InumModel<'a> {
    /// Build the model: bind every query and populate the internal-plan
    /// cache (the expensive, once-per-workload step).
    pub fn build(
        catalog: &'a Catalog,
        workload: &[Select],
        params: CostParams,
    ) -> Result<Self, InumError> {
        Self::build_with(catalog, workload, params, InumOptions::default())
    }

    /// [`InumModel::build`] with explicit cache-richness options (used by
    /// the ablation experiment).
    pub fn build_with(
        catalog: &'a Catalog,
        workload: &[Select],
        params: CostParams,
        options: InumOptions,
    ) -> Result<Self, InumError> {
        Self::build_par(catalog, workload, params, options, Parallelism::auto())
    }

    /// Fully explicit build: cache-richness options plus the thread-count
    /// policy for cache population (each query's interesting-order ×
    /// nestloop plan enumeration is independent, so queries fan out over
    /// the pool; results are identical at any thread count).
    pub fn build_par(
        catalog: &'a Catalog,
        workload: &[Select],
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
    ) -> Result<Self, InumError> {
        Self::build_budgeted(catalog, workload, params, options, par, &Budget::unlimited())
    }

    /// [`InumModel::build_par`] under a [`Budget`]: cache population stops
    /// at the budget boundary and the queries whose caches were not built
    /// are marked degraded — [`cost`] serves them with live optimizer
    /// calls instead of failing. A budget round cap bounds the number of
    /// query caches populated (deterministic at any thread count); a
    /// deadline/cancel stops between queries. With an unlimited budget
    /// this is exactly [`InumModel::build_par`].
    ///
    /// [`cost`]: InumModel::cost
    pub fn build_budgeted(
        catalog: &'a Catalog,
        workload: &[Select],
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
        budget: &Budget,
    ) -> Result<Self, InumError> {
        Self::build_budgeted_traced(catalog, workload, params, options, par, budget, Trace::disabled())
    }

    /// [`InumModel::build_budgeted`] with an observability handle: the
    /// bind and cache-population sweeps record `inum_build/*` spans, and
    /// the model keeps the handle to count cache hits/misses and
    /// optimizer invocations for the rest of its life.
    #[allow(clippy::too_many_arguments)]
    pub fn build_budgeted_traced(
        catalog: &'a Catalog,
        workload: &[Select],
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
        budget: &Budget,
        trace: Trace,
    ) -> Result<Self, InumError> {
        Self::build_inner(catalog, workload, None, params, options, par, budget, trace, None)
    }

    /// Weighted build for compressed workloads: each query carries a
    /// statement multiplicity. [`workload_cost`] becomes the weighted sum,
    /// and when a build [`Budget`] caps cache population, queries are
    /// populated in weight-descending order (stable on index), so the
    /// caches that serve the most statements are built first. With all
    /// weights 1.0 this is exactly [`InumModel::build_budgeted_traced`] —
    /// bit-identical.
    ///
    /// [`workload_cost`]: InumModel::workload_cost
    #[allow(clippy::too_many_arguments)]
    pub fn build_weighted_traced(
        catalog: &'a Catalog,
        workload: &[Select],
        weights: &[f64],
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
        budget: &Budget,
        trace: Trace,
    ) -> Result<Self, InumError> {
        assert_eq!(weights.len(), workload.len(), "one weight per query");
        Self::build_inner(
            catalog,
            workload,
            Some(weights.to_vec()),
            params,
            options,
            par,
            budget,
            trace,
            None,
        )
    }

    /// Build against an engine-wide [`SharedPlanCache`]: each query's
    /// case list is served from the cache when any earlier build over the
    /// same catalog already populated it, and published on a miss. Hits
    /// and misses are attributed to `trace` as
    /// [`Counter::SharedPlanHits`] / [`Counter::SharedPlanMisses`] and to
    /// the cache's own exact totals. Cached case lists are pure functions
    /// of (catalog, query SQL, [`InumOptions`]), so a warm cache is
    /// bit-identical to a cold build — only faster. With `weights` this
    /// is the shared-cache variant of
    /// [`InumModel::build_weighted_traced`]; without, of
    /// [`InumModel::build_budgeted_traced`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_shared_traced(
        catalog: &'a Catalog,
        workload: &[Select],
        weights: Option<&[f64]>,
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
        budget: &Budget,
        trace: Trace,
        cache: &SharedPlanCache,
    ) -> Result<Self, InumError> {
        if let Some(w) = weights {
            assert_eq!(w.len(), workload.len(), "one weight per query");
        }
        Self::build_inner(
            catalog,
            workload,
            weights.map(|w| w.to_vec()),
            params,
            options,
            par,
            budget,
            trace,
            Some(cache),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build_inner(
        catalog: &'a Catalog,
        workload: &[Select],
        weights: Option<Vec<f64>>,
        params: CostParams,
        options: InumOptions,
        par: Parallelism,
        budget: &Budget,
        trace: Trace,
        shared: Option<&SharedPlanCache>,
    ) -> Result<Self, InumError> {
        let bound = par_try_map_indexed_traced(par, workload.len(), &trace, "inum_build/bind", |i| {
            if parinda_failpoint::should_fail("inum::bind") {
                return Err("failpoint inum::bind: injected error".to_string());
            }
            bind(&workload[i], catalog).map_err(|e| e.to_string())
        })
        .map_err(|p| InumError::Worker(p.to_string()))?;
        let mut queries = Vec::with_capacity(workload.len());
        for (i, q) in bound.into_iter().enumerate() {
            queries.push(q.map_err(|e| InumError::Bind(i, e))?);
        }
        let sql: Vec<String> = workload.iter().map(|q| q.to_string()).collect();
        let mut model = InumModel {
            catalog,
            params,
            options,
            par,
            queries,
            sql,
            weights,
            cases: Vec::new(),
            candidates: Vec::new(),
            access_memo: Mutex::new(HashMap::new()),
            probe_memo: Mutex::new(HashMap::new()),
            estimations: AtomicU64::new(0),
            full_optimizations: AtomicU64::new(0),
            trace,
        };
        let nq = model.queries.len();
        // Population order: identity for uniform workloads; weight-
        // descending (stable on index) when weights are present, so a
        // budget cap lands on the caches serving the most statements.
        let mut order: Vec<usize> = (0..nq).collect();
        if let Some(w) = &model.weights {
            order.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then(a.cmp(&b)));
        }
        // A round cap caps how many query caches are populated; the
        // deadline/cancel check rides inside the budgeted sweep.
        let cap = budget.max_rounds().map_or(nq, |r| r.min(nq));
        // Shared-cache keys are the canonical SQL text plus the two
        // cache-richness knobs; the catalog is pinned by the cache's
        // attachment to one immutable engine core (see `shared.rs`).
        let keys: Option<Vec<PlanKey>> = shared.map(|_| {
            workload
                .iter()
                .map(|q| (q.to_string(), options.max_cases_per_query, options.join_scenario_pairs))
                .collect()
        });
        let built = par_try_map_budgeted_traced(
            par,
            cap,
            budget,
            &model.trace,
            "inum_build/populate",
            |k| {
                let qi = order[k];
                match (shared, &keys) {
                    (Some(cache), Some(keys)) => {
                        if let Some(cases) = cache.lookup(&keys[qi]) {
                            model.trace.count(Counter::SharedPlanHits, 1);
                            return Ok(cases);
                        }
                        model.trace.count(Counter::SharedPlanMisses, 1);
                        let cases = Arc::new(model.build_cases(qi)?);
                        cache.insert(keys[qi].clone(), Arc::clone(&cases));
                        Ok(cases)
                    }
                    _ => model.build_cases(qi).map(Arc::new),
                }
            },
        )
        .map_err(|p| InumError::Worker(p.to_string()))?;
        let populated = built.done.len();
        model.cases.resize_with(nq, || None);
        for (k, cases) in built.done.into_iter().enumerate() {
            let qi = order[k];
            model.cases[qi] = Some(cases.map_err(|e| InumError::Plan(qi, e))?);
        }
        debug_assert_eq!(model.cases.len(), nq);
        debug_assert!(populated <= nq);
        Ok(model)
    }

    /// Re-target the model at a new compressed workload *incrementally*:
    /// templates whose canonical SQL is unchanged keep their bound query,
    /// cached cases, and memo entries (re-keyed to their new positions);
    /// new templates are bound and populated from scratch; vanished
    /// templates are evicted together with their memo entries. Weights
    /// are replaced wholesale (decay re-prices every template, but a
    /// weight is a multiplier outside the cached plans, so reweighting
    /// costs nothing).
    ///
    /// **Invariant**: the resulting model is bit-identical — same costs,
    /// same degraded set, same candidate ids — to a from-scratch
    /// [`InumModel::build_weighted_traced`] over the same workload with
    /// an unlimited budget, at any thread count. Cached cases and memo
    /// entries are pure functions of (query, catalog, params, options,
    /// candidate), so reuse can never change a value, only skip its
    /// recomputation. Queries a *budgeted* original build left degraded
    /// are populated here, so the delta never carries degradation
    /// forward.
    ///
    /// Everything is computed before anything is committed: an injected
    /// fault (`inum::delta`, `inum::bind`, `inum::plan_case`) or a bind
    /// error leaves the model exactly as it was.
    pub fn apply_delta(
        &mut self,
        workload: &[Select],
        weights: &[f64],
    ) -> Result<DeltaReport, InumError> {
        assert_eq!(weights.len(), workload.len(), "one weight per query");
        let trace = self.trace.clone();
        let _span = trace.span("inum_delta");
        if parinda_failpoint::should_fail("inum::delta") {
            return Err(InumError::Worker("failpoint inum::delta: injected error".to_string()));
        }
        // Match new templates to old positions by canonical SQL text
        // (duplicate texts pair up first-come, like a from-scratch build
        // binds them independently to identical results).
        let mut by_sql: HashMap<&str, Vec<usize>> = HashMap::new();
        for (qi, s) in self.sql.iter().enumerate().rev() {
            by_sql.entry(s.as_str()).or_default().push(qi);
        }
        let new_sql: Vec<String> = workload.iter().map(|q| q.to_string()).collect();
        let nq = workload.len();
        let mut source: Vec<Option<usize>> = Vec::with_capacity(nq);
        let mut missing: Vec<usize> = Vec::new();
        for (i, s) in new_sql.iter().enumerate() {
            let old = by_sql.get_mut(s.as_str()).and_then(Vec::pop);
            if old.is_none() {
                missing.push(i);
            }
            source.push(old);
        }
        let reused = nq - missing.len();
        let evicted = self.queries.len() - reused;
        // Bind the genuinely new templates (same sweep + failpoint as a
        // full build, so fault behavior matches).
        let bound = par_try_map_indexed_traced(
            self.par,
            missing.len(),
            &trace,
            "inum_delta/bind",
            |k| {
                if parinda_failpoint::should_fail("inum::bind") {
                    return Err("failpoint inum::bind: injected error".to_string());
                }
                bind(&workload[missing[k]], self.catalog).map_err(|e| e.to_string())
            },
        )
        .map_err(|p| InumError::Worker(p.to_string()))?;
        let mut fresh: Vec<BoundQuery> = Vec::with_capacity(missing.len());
        for (k, q) in bound.into_iter().enumerate() {
            fresh.push(q.map_err(|e| InumError::Bind(missing[k], e))?);
        }
        // Assemble the new query/case vectors (still uncommitted). One
        // fresh binding exists per missing slot by construction.
        let mut fresh = fresh.into_iter();
        let mut queries: Vec<BoundQuery> = Vec::with_capacity(nq);
        let mut cases: Vec<Option<Arc<Vec<CachedCase>>>> = Vec::with_capacity(nq);
        for &src in &source {
            match src {
                Some(old) => {
                    queries.push(self.queries[old].clone());
                    cases.push(self.cases[old].clone());
                }
                None => match fresh.next() {
                    Some(q) => {
                        queries.push(q);
                        cases.push(None);
                    }
                    None => {
                        return Err(InumError::Worker(
                            "delta bind produced fewer queries than templates".to_string(),
                        ))
                    }
                },
            }
        }
        // Populate every unpopulated cache: new templates plus any the
        // original build's budget skipped (a from-scratch unlimited
        // rebuild would populate them, and the invariant is equality
        // with exactly that).
        let targets: Vec<usize> = (0..nq).filter(|&i| cases[i].is_none()).collect();
        let built = par_try_map_indexed_traced(
            self.par,
            targets.len(),
            &trace,
            "inum_delta/populate",
            |k| {
                let qi = targets[k];
                self.build_cases_for(qi, &queries[qi])
            },
        )
        .map_err(|p| InumError::Worker(p.to_string()))?;
        let mut populated: Vec<Arc<Vec<CachedCase>>> = Vec::with_capacity(targets.len());
        for (k, r) in built.into_iter().enumerate() {
            populated.push(Arc::new(r.map_err(|e| InumError::Plan(targets[k], e))?));
        }
        for (k, cs) in populated.into_iter().enumerate() {
            cases[targets[k]] = Some(cs);
        }
        // Commit: re-key surviving memo entries old→new, drop the rest.
        let mut old_to_new: HashMap<usize, usize> = HashMap::new();
        for (i, src) in source.iter().enumerate() {
            if let Some(old) = src {
                old_to_new.insert(*old, i);
            }
        }
        {
            let mut memo =
                self.access_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let entries: Vec<_> = memo.drain().collect();
            for ((qi, rel, cand), v) in entries {
                if let Some(&ni) = old_to_new.get(&qi) {
                    memo.insert((ni, rel, cand), v);
                }
            }
        }
        {
            let mut memo =
                self.probe_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let entries: Vec<_> = memo.drain().collect();
            for ((qi, rel, cid), v) in entries {
                if let Some(&ni) = old_to_new.get(&qi) {
                    memo.insert((ni, rel, cid), v);
                }
            }
        }
        self.queries = queries;
        self.cases = cases;
        self.sql = new_sql;
        self.weights = Some(weights.to_vec());
        let rebuilt = targets.len();
        trace.count(Counter::InumDeltaReused, reused as u64);
        trace.count(Counter::InumDeltaRebuilt, rebuilt as u64);
        Ok(DeltaReport { reused, rebuilt, evicted })
    }

    /// Queries whose plan cache was skipped by a build budget; their
    /// [`cost`] is served by live optimizer calls.
    ///
    /// [`cost`]: InumModel::cost
    pub fn degraded_queries(&self) -> usize {
        self.cases.iter().filter(|c| c.is_none()).count()
    }

    /// The thread-count policy the model evaluates with.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Change the thread-count policy for subsequent evaluation sweeps.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The bound queries (for advisors that need workload structure).
    pub fn queries(&self) -> &[BoundQuery] {
        &self.queries
    }

    /// The per-query weights the model was built with, if any.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Weight of query `qi` (1.0 for an unweighted model).
    pub fn weight(&self, qi: usize) -> f64 {
        self.weights.as_ref().map_or(1.0, |w| w[qi])
    }

    /// Cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Register a candidate index; returns its id. Registering the same
    /// candidate twice returns the same id.
    pub fn register_candidate(&mut self, cand: CandidateIndex) -> CandId {
        if let Some(i) = self.candidates.iter().position(|c| *c == cand) {
            return CandId(i);
        }
        self.candidates.push(cand);
        CandId(self.candidates.len() - 1)
    }

    /// The registered candidates.
    pub fn candidates(&self) -> &[CandidateIndex] {
        &self.candidates
    }

    /// A candidate by id.
    pub fn candidate(&self, id: CandId) -> &CandidateIndex {
        &self.candidates[id.0]
    }

    /// Equation-1 size of a registered candidate in bytes.
    pub fn candidate_size(&self, id: CandId) -> u64 {
        let c = &self.candidates[id.0];
        self.catalog
            .table(c.table)
            .map(|t| c.size_bytes(t))
            .unwrap_or(0)
    }

    /// The catalog the model was built over.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The observability handle the model was built with (disabled unless
    /// [`InumModel::build_budgeted_traced`] attached one). Advisors that
    /// work off this model record their spans/counters through it.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of cached-model cost estimations served so far.
    pub fn estimations_served(&self) -> u64 {
        self.estimations.load(Ordering::Relaxed)
    }

    /// Number of full optimizer invocations performed (cache build +
    /// exact costing).
    pub fn full_optimizations(&self) -> u64 {
        self.full_optimizations.load(Ordering::Relaxed)
    }

    // ---------- cache construction ----------

    fn build_cases(&self, qi: usize) -> Result<Vec<CachedCase>, String> {
        self.build_cases_for(qi, &self.queries[qi])
    }

    /// [`build_cases`](Self::build_cases) against an explicit bound query
    /// (not yet committed to `self.queries`) — the delta path plans new
    /// templates *before* committing anything, so an injected fault
    /// leaves the model untouched.
    fn build_cases_for(&self, qi: usize, q: &BoundQuery) -> Result<Vec<CachedCase>, String> {
        let nrels = q.rels.len();

        // Interesting orders per rel: None + each join column on the rel.
        let mut orders_per_rel: Vec<Vec<Option<usize>>> = vec![vec![None]; nrels];
        for j in &q.joins {
            for slot in [j.left, j.right] {
                let v = &mut orders_per_rel[slot.rel];
                if !v.contains(&Some(slot.col)) && v.len() < 4 {
                    v.push(Some(slot.col));
                }
            }
        }

        // Cartesian product, capped.
        let mut combos: Vec<Vec<Option<usize>>> = vec![vec![]];
        for rel_orders in &orders_per_rel {
            let mut next = Vec::new();
            for c in &combos {
                for o in rel_orders {
                    let mut c2 = c.clone();
                    c2.push(*o);
                    next.push(c2);
                }
            }
            combos = next;
            if combos.len() > self.options.max_cases_per_query {
                combos.truncate(self.options.max_cases_per_query);
            }
        }

        let scenarios: &[JoinScenario] = if self.options.join_scenario_pairs {
            &JoinScenario::ALL
        } else {
            &JoinScenario::ALL[..1]
        };
        let mut cases = Vec::new();
        for combo in &combos {
            for &scenario in scenarios {
                let case = self.plan_case(qi, q, combo, scenario)?;
                if !cases.contains(&case) {
                    cases.push(case);
                }
            }
        }
        Ok(cases)
    }

    /// Plan the query with per-rel hypothetical order-providing indexes and
    /// extract the internal-plan skeleton.
    fn plan_case(
        &self,
        qi: usize,
        q: &BoundQuery,
        combo: &[Option<usize>],
        scenario: JoinScenario,
    ) -> Result<CachedCase, String> {
        if parinda_failpoint::should_fail("inum::plan_case") {
            return Err("failpoint inum::plan_case: injected error".to_string());
        }
        let mut overlay = HypotheticalCatalog::new(self.catalog);
        let mut hypo_ids: Vec<Option<IndexId>> = vec![None; combo.len()];
        for (rel, order) in combo.iter().enumerate() {
            if let Some(col) = order {
                let table = self
                    .catalog
                    .table(q.rels[rel].table)
                    .ok_or_else(|| "table vanished".to_string())?;
                let colname = table.columns[*col].name.clone();
                let idx = Index::new(
                    IndexId(0),
                    format!("inum_{qi}_{rel}_{colname}"),
                    table,
                    &[colname.as_str()],
                )
                .ok_or_else(|| "bad hypo column".to_string())?;
                hypo_ids[rel] = Some(overlay.add_hypo_index(idx));
            }
        }
        let flags = scenario.flags(PlannerFlags::default());
        let plan = plan_query(q, &overlay, &self.params, &flags).map_err(|e| e.to_string())?;
        self.full_optimizations.fetch_add(1, Ordering::Relaxed);
        self.trace.count(Counter::OptimizerInvocations, 1);

        // Extract leaf access charges.
        let mut accesses: Vec<RelAccess> = Vec::new();
        let mut charged = 0.0f64;
        extract_accesses(&plan, 1.0, &mut |leaf, multiplier| {
            let (rel, required_order, param_probe, cost) = match &leaf.kind {
                PlanKind::SeqScan { rel, .. } => (*rel, None, None, leaf.cost.total),
                PlanKind::IndexScan { rel, index, param_prefix, .. } => {
                    let probe = if param_prefix.is_empty() {
                        None
                    } else {
                        // probe column = the hypo/real index's lead key
                        overlay
                            .indexes_on(q.rels[*rel].table)
                            .into_iter()
                            .find(|i| i.id == *index)
                            .map(|i| i.key_columns[0])
                    };
                    let order = if param_prefix.is_empty() && hypo_ids[*rel] == Some(*index) {
                        combo[*rel]
                    } else {
                        None
                    };
                    (*rel, order, probe, leaf.cost.total)
                }
                // extract_accesses only visits scan leaves; anything else
                // carries no access charge.
                _ => return,
            };
            charged += cost * multiplier;
            accesses.push(RelAccess { rel, multiplier, required_order, param_probe });
        });

        let internal_cost = (plan.cost.total - charged).max(0.0);
        Ok(CachedCase { internal_cost, accesses })
    }

    // ---------- cached costing ----------

    /// INUM cost of query `qi` under `config` — the fast path. If a build
    /// budget skipped this query's plan cache, the estimate degrades to a
    /// live optimizer call: slower, still valid.
    pub fn cost(&self, qi: usize, config: &Configuration) -> f64 {
        self.estimations.fetch_add(1, Ordering::Relaxed);
        let Some(cases) = &self.cases[qi] else {
            return self.exact_cost(qi, config);
        };
        let mut best = f64::INFINITY;
        for case in cases.iter() {
            if let Some(total) = self.case_cost(qi, case, config) {
                best = best.min(total);
            }
        }
        best
    }

    /// Total workload cost under `config`, weighted by the per-query
    /// weights when the model was built with them (`cost × 1.0` otherwise,
    /// which is bit-identical to the plain sum).
    pub fn workload_cost(&self, config: &Configuration) -> f64 {
        (0..self.queries.len()).map(|qi| self.cost(qi, config) * self.weight(qi)).sum()
    }

    fn case_cost(&self, qi: usize, case: &CachedCase, config: &Configuration) -> Option<f64> {
        let mut total = case.internal_cost;
        for acc in &case.accesses {
            total += self.access_cost_under(qi, acc, config)?;
        }
        Some(total)
    }

    fn access_cost_under(
        &self,
        qi: usize,
        acc: &RelAccess,
        config: &Configuration,
    ) -> Option<f64> {
        let q = &self.queries[qi];
        let table = q.rels[acc.rel].table;

        if let Some(col) = acc.param_probe {
            // need an index whose lead column is `col`
            let mut best = f64::INFINITY;
            for &cid in config.ids() {
                let cand = &self.candidates[cid.0];
                if cand.table == table && cand.columns[0] == col {
                    if let Some(c) = self.probe_cost(qi, acc.rel, cid) {
                        best = best.min(c);
                    }
                }
            }
            // real (base-catalog) indexes can also serve the probe
            for idx in self.catalog.indexes_on(table) {
                if idx.key_columns[0] == col {
                    if let Some(c) = self.real_probe_cost(qi, acc.rel, idx) {
                        best = best.min(c);
                    }
                }
            }
            if best.is_finite() {
                return Some(best * acc.multiplier);
            }
            return None; // case incompatible with this configuration
        }

        // Plain scan: cheapest of seqscan / any configured index, honoring
        // the required order (sort added when unordered).
        let seq = self.access_cost(qi, acc.rel, None)?;
        let mut best_ordered: Option<f64> = None;
        let mut best_any = seq.cost;
        for &cid in config.ids() {
            let cand = &self.candidates[cid.0];
            if cand.table != table {
                continue;
            }
            if let Some(ac) = self.access_cost(qi, acc.rel, Some(cid.0)) {
                best_any = best_any.min(ac.cost);
                if acc.required_order.is_some() && ac.order_col == acc.required_order {
                    best_ordered =
                        Some(best_ordered.map_or(ac.cost, |b: f64| b.min(ac.cost)));
                }
            }
        }
        match acc.required_order {
            None => Some(best_any * acc.multiplier),
            Some(_) => {
                // sorted path directly, or cheapest path + explicit sort
                let rows = base_rel_rows(&self.queries[qi], acc.rel, self.catalog, &self.params)
                    .ok()?;
                let width = 16.0;
                let sorted_via_sort =
                    sort_cost(&self.params, best_any, rows, width).total;
                let best = match best_ordered {
                    Some(o) => o.min(sorted_via_sort),
                    None => sorted_via_sort,
                };
                Some(best * acc.multiplier)
            }
        }
    }

    /// Memoized single-scan access cost for (query, rel, candidate);
    /// `cand = None` = sequential scan.
    fn access_cost(&self, qi: usize, rel: usize, cand: Option<usize>) -> Option<AccessCost> {
        if let Some(v) = self.access_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&(qi, rel, cand)) {
            self.trace.count(Counter::InumCacheHits, 1);
            return *v;
        }
        // Computed outside the lock: concurrent sweeps may duplicate the
        // work, but the value is a pure function of the key, so whichever
        // insert lands last writes the same bits.
        self.trace.count(Counter::InumCacheMisses, 1);
        let computed = self.compute_access_cost(qi, rel, cand);
        self.access_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((qi, rel, cand), computed);
        computed
    }

    fn compute_access_cost(&self, qi: usize, rel: usize, cand: Option<usize>) -> Option<AccessCost> {
        if parinda_failpoint::should_fail("inum::access_cost") {
            return None; // "no such path": the case degrades to other paths
        }
        let q = &self.queries[qi];
        let flags = PlannerFlags::default();
        match cand {
            None => {
                let paths = base_scan_paths(q, rel, self.catalog, &self.params, &flags).ok()?;
                paths
                    .iter()
                    .filter(|(n, _)| matches!(n.kind, PlanKind::SeqScan { .. }))
                    .map(|(n, _)| AccessCost { cost: n.cost.total, order_col: None })
                    .min_by(|a, b| a.cost.total_cmp(&b.cost))
            }
            Some(ci) => {
                let c = &self.candidates[ci];
                if c.table != q.rels[rel].table {
                    return None;
                }
                let mut overlay = HypotheticalCatalog::new(self.catalog);
                let table = self.catalog.table(c.table)?;
                let colnames: Vec<String> =
                    c.columns.iter().map(|&i| table.columns[i].name.clone()).collect();
                let colrefs: Vec<&str> = colnames.iter().map(|s| s.as_str()).collect();
                let idx = Index::new(IndexId(0), "inum_cand", table, &colrefs)?;
                let id = overlay.add_hypo_index(idx);
                let paths = base_scan_paths(q, rel, &overlay, &self.params, &flags).ok()?;
                paths
                    .iter()
                    .filter_map(|(n, order)| match &n.kind {
                        PlanKind::IndexScan { index, .. } if *index == id => Some(AccessCost {
                            cost: n.cost.total,
                            order_col: order.first().map(|s| s.col),
                        }),
                        _ => None,
                    })
                    .min_by(|a, b| a.cost.total_cmp(&b.cost))
            }
        }
    }

    /// Parameterized probe cost of `cand` for (query, rel).
    fn probe_cost(&self, qi: usize, rel: usize, cid: CandId) -> Option<f64> {
        if let Some(v) = self.probe_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&(qi, rel, cid.0)) {
            return *v;
        }
        let cand = &self.candidates[cid.0];
        let table = self.catalog.table(cand.table)?;
        let colnames: Vec<String> =
            cand.columns.iter().map(|&i| table.columns[i].name.clone()).collect();
        let colrefs: Vec<&str> = colnames.iter().map(|s| s.as_str()).collect();
        let idx = Index::new(IndexId(0), "inum_probe", table, &colrefs)?;
        let computed = self.compute_probe_cost(qi, rel, &idx);
        self.probe_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((qi, rel, cid.0), computed);
        computed
    }

    fn real_probe_cost(&self, qi: usize, rel: usize, idx: &Index) -> Option<f64> {
        self.compute_probe_cost(qi, rel, idx)
    }

    /// Cost of one index probe with an equality on the lead column.
    fn compute_probe_cost(&self, qi: usize, rel: usize, idx: &Index) -> Option<f64> {
        use parinda_optimizer::cost::{index_scan_cost, IndexScanInputs};
        let q = &self.queries[qi];
        let table = self.catalog.table(q.rels[rel].table)?;
        let lead = idx.key_columns[0];
        let stats = self.catalog.column_stats(table.id, lead);
        let raw = table.row_count as f64;
        let nd = stats.map(|s| s.distinct_count(raw)).unwrap_or(raw * 0.1);
        let sel = (1.0 / nd.max(1.0)).min(1.0);
        let corr = stats.map(|s| s.correlation).unwrap_or(0.0);
        let nquals = q.restrictions_on(rel).len();
        let c = index_scan_cost(
            &self.params,
            IndexScanInputs {
                index_pages: idx.pages,
                index_height: idx.height,
                table_pages: table.pages,
                table_rows: raw,
                index_selectivity: sel,
                correlation: corr,
            },
            nquals,
        );
        Some(c.total)
    }

    // ---------- exact (validation) path ----------

    /// Full re-optimization under `config` (slow path, for validation and
    /// the E3 speed comparison).
    pub fn exact_cost(&self, qi: usize, config: &Configuration) -> f64 {
        let q = &self.queries[qi];
        let mut overlay = HypotheticalCatalog::new(self.catalog);
        for &cid in config.ids() {
            let cand = &self.candidates[cid.0];
            if let Some(table) = self.catalog.table(cand.table) {
                let colnames: Vec<String> =
                    cand.columns.iter().map(|&i| table.columns[i].name.clone()).collect();
                let colrefs: Vec<&str> = colnames.iter().map(|s| s.as_str()).collect();
                if let Some(idx) = Index::new(IndexId(0), "exact_cand", table, &colrefs) {
                    overlay.add_hypo_index(idx);
                }
            }
        }
        self.full_optimizations.fetch_add(1, Ordering::Relaxed);
        self.trace.count(Counter::OptimizerInvocations, 1);
        match plan_query(q, &overlay, &self.params, &PlannerFlags::default()) {
            Ok(p) => p.cost.total,
            Err(_) => f64::INFINITY,
        }
    }
}

/// Walk the plan, reporting each scan leaf with the multiplier of how many
/// times it executes (parameterized NL inners run once per outer row).
fn extract_accesses<F: FnMut(&PlanNode, f64)>(node: &PlanNode, multiplier: f64, f: &mut F) {
    match &node.kind {
        PlanKind::SeqScan { .. } | PlanKind::IndexScan { .. } => f(node, multiplier),
        PlanKind::NestLoop { outer, inner, .. } => {
            extract_accesses(outer, multiplier, f);
            let inner_mult = if matches!(
                &inner.kind,
                PlanKind::IndexScan { param_prefix, .. } if !param_prefix.is_empty()
            ) {
                multiplier * outer.rows.max(1.0)
            } else {
                multiplier
            };
            extract_accesses(inner, inner_mult, f);
        }
        PlanKind::HashJoin { outer, inner, .. } | PlanKind::MergeJoin { outer, inner, .. } => {
            extract_accesses(outer, multiplier, f);
            extract_accesses(inner, multiplier, f);
        }
        PlanKind::Materialize { input }
        | PlanKind::Sort { input, .. }
        | PlanKind::Aggregate { input, .. }
        | PlanKind::Project { input, .. }
        | PlanKind::Unique { input }
        | PlanKind::Limit { input, .. } => extract_accesses(input, multiplier, f),
    }
}
