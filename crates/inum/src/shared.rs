//! Engine-wide shared INUM plan cache.
//!
//! The expensive step of building an [`InumModel`] is populating each
//! query's internal-plan case list — dozens of full optimizer calls per
//! query. Those case lists are **pure functions of (catalog, query SQL,
//! cache-richness options)**: nothing about the session (designs, budgets,
//! thread policy, traces) feeds into them. A `SharedPlanCache` therefore
//! lives on the shared engine core and lets every session — and every
//! repeat advisor run within one session — reuse case lists that any
//! session already built.
//!
//! ## Soundness
//!
//! A cache is only ever attached to one immutable engine core. Whenever a
//! session mutates its catalog, statistics, or cost parameters, the core
//! is copy-on-written (`Arc::make_mut`) *and handed a fresh, empty cache*,
//! so stale case lists can never be served across a metadata change. The
//! `generation` recorded next to the cache exists for observability
//! (`server stats`), not correctness.
//!
//! ## Determinism
//!
//! Entries are `Arc<Vec<CachedCase>>` built by [`InumModel::build_cases`],
//! which is deterministic; racing builders of the same key insert equal
//! values, so whichever insert lands last leaves the same bits. Hit/miss
//! totals are exact relaxed atomics.
//!
//! [`InumModel`]: crate::InumModel
//! [`InumModel::build_cases`]: crate::InumModel

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::model::CachedCase;

/// Everything a cached case list is a function of, besides the catalog
/// (which is pinned by the cache's attachment to one immutable core):
/// the query's SQL text plus the two cache-richness knobs.
pub(crate) type PlanKey = (String, usize, bool);

/// Upper bound on cached case lists; inserts beyond it are dropped (the
/// builder keeps its locally built list, so correctness is unaffected —
/// only reuse stops growing). Bounds memory for adversarial workloads
/// that stream unbounded distinct SQL through one engine.
const MAX_ENTRIES: usize = 65_536;

/// A concurrent, read-mostly map from query SQL (plus cache-richness
/// options) to that query's INUM internal-plan case list.
///
/// See the module docs for the sharing/invalidations contract.
#[derive(Debug, Default)]
pub struct SharedPlanCache {
    entries: Mutex<HashMap<PlanKey, Arc<Vec<CachedCase>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedPlanCache {
    /// A fresh, empty cache.
    pub fn new() -> SharedPlanCache {
        SharedPlanCache::default()
    }

    /// Case lists served from the cache so far (whole-query populations
    /// skipped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Case lists built fresh (and published) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct case lists currently cached.
    pub fn entries(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Arc<Vec<CachedCase>>>> {
        // Poison recovery: the map is only ever extended with values that
        // are pure functions of their key, so a panicking inserter cannot
        // leave a half-truth behind.
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up a case list; counts a hit or a miss.
    pub(crate) fn lookup(&self, key: &PlanKey) -> Option<Arc<Vec<CachedCase>>> {
        let found = self.lock().get(key).cloned();
        match found {
            Some(cases) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cases)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a freshly built case list (no-op at the entry cap).
    pub(crate) fn insert(&self, key: PlanKey, cases: Arc<Vec<CachedCase>>) {
        let mut map = self.lock();
        if map.len() < MAX_ENTRIES || map.contains_key(&key) {
            map.insert(key, cases);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sql: &str) -> PlanKey {
        (sql.to_string(), 24, true)
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = SharedPlanCache::new();
        assert!(cache.lookup(&key("SELECT 1")).is_none());
        cache.insert(key("SELECT 1"), Arc::new(Vec::new()));
        assert!(cache.lookup(&key("SELECT 1")).is_some());
        assert!(cache.lookup(&key("SELECT 2")).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = SharedPlanCache::new();
        cache.insert(("q".into(), 24, true), Arc::new(Vec::new()));
        assert!(cache.lookup(&("q".into(), 1, true)).is_none());
        assert!(cache.lookup(&("q".into(), 24, false)).is_none());
        assert!(cache.lookup(&("q".into(), 24, true)).is_some());
    }
}
