//! Candidate indexes and configurations — the vocabulary INUM and the
//! index advisor share.

use parinda_catalog::{layout, Column, Table, TableId};

/// Identifier of a registered candidate index within an [`crate::InumModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandId(pub usize);

/// A candidate index the advisor may build: table + key columns, sized
/// with Equation 1 just like a what-if index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CandidateIndex {
    /// Table the index is on.
    pub table: TableId,
    /// Key column positions in table coordinates, outermost first.
    pub columns: Vec<usize>,
}

impl CandidateIndex {
    /// New candidate.
    pub fn new(table: TableId, columns: Vec<usize>) -> Self {
        debug_assert!(!columns.is_empty());
        CandidateIndex { table, columns }
    }

    /// Equation-1 leaf pages on `table`.
    pub fn pages(&self, table: &Table) -> u64 {
        let cols: Vec<Column> = self.columns.iter().map(|&i| table.columns[i].clone()).collect();
        layout::index_leaf_pages(table.row_count, &cols)
    }

    /// Size in bytes, as charged against the advisor's budget.
    pub fn size_bytes(&self, table: &Table) -> u64 {
        self.pages(table) * layout::PAGE_SIZE as u64
    }

    /// Estimated height of the built B-tree.
    pub fn height(&self, table: &Table) -> u32 {
        let cols: Vec<Column> = self.columns.iter().map(|&i| table.columns[i].clone()).collect();
        let entry = layout::INDEX_ROW_OVERHEAD as f64 + layout::avg_columns_size(&cols);
        let fanout = (layout::usable_page_bytes() as f64 / entry).max(2.0) as u64;
        layout::btree_height(self.pages(table), fanout)
    }

    /// Human-readable name (used when materializing the suggestion).
    pub fn display_name(&self, table: &Table) -> String {
        let cols: Vec<&str> = self
            .columns
            .iter()
            .map(|&i| table.columns[i].name.as_str())
            .collect();
        format!("idx_{}_{}", table.name, cols.join("_"))
    }
}

/// A configuration: the subset of registered candidates assumed built.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Configuration {
    /// Sorted candidate ids.
    ids: Vec<CandId>,
}

impl Configuration {
    /// Empty configuration (base design only).
    pub fn empty() -> Self {
        Configuration::default()
    }

    /// Build from ids (deduplicated, sorted).
    pub fn from_ids<I: IntoIterator<Item = CandId>>(ids: I) -> Self {
        let mut v: Vec<CandId> = ids.into_iter().collect();
        v.sort();
        v.dedup();
        Configuration { ids: v }
    }

    /// The candidate ids in the configuration.
    pub fn ids(&self) -> &[CandId] {
        &self.ids
    }

    /// Does the configuration contain `id`?
    pub fn contains(&self, id: CandId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Configuration with one more candidate.
    pub fn with(&self, id: CandId) -> Self {
        let mut v = self.ids.clone();
        v.push(id);
        Configuration::from_ids(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Catalog, MetadataProvider, SqlType};

    fn table() -> Table {
        let mut c = Catalog::new();
        let id = c.create_table(
            "t",
            vec![
                Column::new("a", SqlType::Int8).not_null(),
                Column::new("b", SqlType::Float8).not_null(),
            ],
            1_000_000,
        );
        c.table(id).unwrap().clone()
    }

    #[test]
    fn candidate_sizes_match_equation1() {
        let t = table();
        let c = CandidateIndex::new(t.id, vec![0]);
        let cols = vec![Column::new("a", SqlType::Int8).not_null()];
        assert_eq!(c.pages(&t), layout::index_leaf_pages(1_000_000, &cols));
        assert!(c.size_bytes(&t) > 0);
        assert!(c.height(&t) >= 1);
    }

    #[test]
    fn wider_candidates_are_larger() {
        let t = table();
        let narrow = CandidateIndex::new(t.id, vec![0]);
        let wide = CandidateIndex::new(t.id, vec![0, 1]);
        assert!(wide.size_bytes(&t) > narrow.size_bytes(&t));
    }

    #[test]
    fn display_name_from_columns() {
        let t = table();
        let c = CandidateIndex::new(t.id, vec![1, 0]);
        assert_eq!(c.display_name(&t), "idx_t_b_a");
    }

    #[test]
    fn configuration_set_semantics() {
        let c = Configuration::from_ids([CandId(3), CandId(1), CandId(3)]);
        assert_eq!(c.ids(), &[CandId(1), CandId(3)]);
        assert!(c.contains(CandId(1)));
        assert!(!c.contains(CandId(2)));
        let c2 = c.with(CandId(2));
        assert_eq!(c2.ids().len(), 3);
        assert!(Configuration::empty().ids().is_empty());
    }
}
