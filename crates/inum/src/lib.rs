//! # parinda-inum
//!
//! The INUM cached cost model (paper §3.4): precompute optimal internal
//! plans per interesting-order × nested-loop-flag case, then answer
//! configuration cost queries with memoized access-path arithmetic instead
//! of full re-optimization. This is what makes the ILP index advisor's
//! "millions of query cost estimations" affordable.

#![allow(missing_docs)]

pub mod config;
pub mod model;
pub mod shared;

pub use config::{CandId, CandidateIndex, Configuration};
pub use model::{DeltaReport, InumError, InumModel, InumOptions};
pub use shared::SharedPlanCache;
