//! INUM model validation: the cached estimate must track full
//! re-optimization closely, and serving estimates must not invoke the
//! optimizer.

use parinda_catalog::{analyze_column, Catalog, Column, Datum, MetadataProvider, SqlType};
use parinda_inum::{CandidateIndex, Configuration, InumModel};
use parinda_optimizer::CostParams;
use parinda_sql::{parse_select, Select};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let photo = c.create_table(
        "photoobj",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("ra", SqlType::Float8).not_null(),
            Column::new("dec", SqlType::Float8).not_null(),
            Column::new("type", SqlType::Int2).not_null(),
            Column::new("rmag", SqlType::Float8).not_null(),
        ],
        500_000,
    );
    let spec = c.create_table(
        "specobj",
        vec![
            Column::new("specobjid", SqlType::Int8).not_null(),
            Column::new("bestobjid", SqlType::Int8).not_null(),
            Column::new("z", SqlType::Float8).not_null(),
        ],
        25_000,
    );
    let n = 50_000usize;
    let ids: Vec<Datum> = (0..n as i64).map(Datum::Int).collect();
    let ra: Vec<Datum> = (0..n).map(|i| Datum::Float((i as f64 * 0.0072) % 360.0)).collect();
    let ty: Vec<Datum> = (0..n).map(|i| Datum::Int((i % 6) as i64)).collect();
    let rmag: Vec<Datum> = (0..n).map(|i| Datum::Float(14.0 + (i % 900) as f64 * 0.01)).collect();
    c.set_column_stats(photo, 0, analyze_column(SqlType::Int8, &ids));
    c.set_column_stats(photo, 1, analyze_column(SqlType::Float8, &ra));
    c.set_column_stats(photo, 2, analyze_column(SqlType::Float8, &ra));
    c.set_column_stats(photo, 3, analyze_column(SqlType::Int2, &ty));
    c.set_column_stats(photo, 4, analyze_column(SqlType::Float8, &rmag));
    let best: Vec<Datum> = (0..n as i64).map(|i| Datum::Int(i * 10)).collect();
    let z: Vec<Datum> = (0..n).map(|i| Datum::Float((i % 400) as f64 * 0.002)).collect();
    c.set_column_stats(spec, 0, analyze_column(SqlType::Int8, &ids));
    c.set_column_stats(spec, 1, analyze_column(SqlType::Int8, &best));
    c.set_column_stats(spec, 2, analyze_column(SqlType::Float8, &z));
    c
}

fn workload() -> Vec<Select> {
    [
        "SELECT objid, ra FROM photoobj WHERE ra BETWEEN 100.0 AND 101.0",
        "SELECT ra, dec FROM photoobj WHERE objid = 777",
        "SELECT type, COUNT(*) FROM photoobj WHERE rmag < 15.0 GROUP BY type",
        "SELECT p.ra, s.z FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.z > 0.7",
        "SELECT p.objid FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND p.type = 3 AND p.rmag BETWEEN 14.0 AND 14.5",
    ]
    .iter()
    .map(|s| parse_select(s).unwrap())
    .collect()
}

fn model(c: &Catalog) -> InumModel<'_> {
    InumModel::build(c, &workload(), CostParams::default()).unwrap()
}

#[test]
fn empty_config_matches_exact() {
    let c = catalog();
    let m = model(&c);
    for qi in 0..m.queries().len() {
        let inum = m.cost(qi, &Configuration::empty());
        let exact = m.exact_cost(qi, &Configuration::empty());
        let ratio = inum / exact;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "q{qi}: inum={inum:.1} exact={exact:.1}"
        );
    }
}

#[test]
fn inum_tracks_exact_across_configs() {
    let c = catalog();
    let mut m = model(&c);
    let photo = c.table_by_name("photoobj").unwrap().id;
    let spec = c.table_by_name("specobj").unwrap().id;
    let cands = vec![
        CandidateIndex::new(photo, vec![0]),     // objid
        CandidateIndex::new(photo, vec![1]),     // ra
        CandidateIndex::new(photo, vec![3, 4]),  // type, rmag
        CandidateIndex::new(photo, vec![4]),     // rmag
        CandidateIndex::new(spec, vec![1]),      // bestobjid
        CandidateIndex::new(spec, vec![2]),      // z
    ];
    let ids: Vec<_> = cands.into_iter().map(|cd| m.register_candidate(cd)).collect();

    // several configurations, incl. empty, singletons and the full set
    let mut configs = vec![Configuration::empty(), Configuration::from_ids(ids.clone())];
    for &id in &ids {
        configs.push(Configuration::from_ids([id]));
    }
    configs.push(Configuration::from_ids([ids[0], ids[4]]));

    let mut worst: f64 = 1.0;
    for cfg in &configs {
        for qi in 0..m.queries().len() {
            let inum = m.cost(qi, cfg);
            let exact = m.exact_cost(qi, cfg);
            assert!(inum.is_finite(), "q{qi} cfg={cfg:?}");
            let ratio = (inum / exact).max(exact / inum);
            worst = worst.max(ratio);
            assert!(
                ratio < 1.6,
                "q{qi} cfg={cfg:?}: inum={inum:.1} exact={exact:.1}"
            );
        }
    }
    // overall the model should be much tighter than the hard bound
    assert!(worst < 1.6, "worst ratio {worst}");
}

#[test]
fn adding_indexes_never_increases_inum_cost() {
    let c = catalog();
    let mut m = model(&c);
    let photo = c.table_by_name("photoobj").unwrap().id;
    let spec = c.table_by_name("specobj").unwrap().id;
    let a = m.register_candidate(CandidateIndex::new(photo, vec![0]));
    let b = m.register_candidate(CandidateIndex::new(photo, vec![1]));
    let d = m.register_candidate(CandidateIndex::new(spec, vec![1]));
    let empty = Configuration::empty();
    for qi in 0..m.queries().len() {
        let base = m.cost(qi, &empty);
        let one = m.cost(qi, &Configuration::from_ids([a]));
        let all = m.cost(qi, &Configuration::from_ids([a, b, d]));
        assert!(one <= base * 1.0001, "q{qi}: {one} > {base}");
        assert!(all <= one * 1.0001, "q{qi}: {all} > {one}");
    }
}

#[test]
fn estimations_do_not_invoke_optimizer() {
    let c = catalog();
    let mut m = model(&c);
    let photo = c.table_by_name("photoobj").unwrap().id;
    let a = m.register_candidate(CandidateIndex::new(photo, vec![0]));
    let b = m.register_candidate(CandidateIndex::new(photo, vec![1]));

    // warm the memos
    let cfgs = [
        Configuration::empty(),
        Configuration::from_ids([a]),
        Configuration::from_ids([b]),
        Configuration::from_ids([a, b]),
    ];
    for cfg in &cfgs {
        m.workload_cost(cfg);
    }

    let plans_before = m.full_optimizations();
    let served_before = m.estimations_served();
    // hammer the cached model
    for _ in 0..1000 {
        for cfg in &cfgs {
            m.workload_cost(cfg);
        }
    }
    assert_eq!(m.full_optimizations(), plans_before, "cache must serve alone");
    assert!(m.estimations_served() >= served_before + 4000 * 5);
}

#[test]
fn relevant_index_reduces_cost() {
    let c = catalog();
    let mut m = model(&c);
    let photo = c.table_by_name("photoobj").unwrap().id;
    let objid_idx = m.register_candidate(CandidateIndex::new(photo, vec![0]));
    // q1 = "objid = 777": the index should slash its cost
    let before = m.cost(1, &Configuration::empty());
    let after = m.cost(1, &Configuration::from_ids([objid_idx]));
    assert!(
        after < before / 10.0,
        "selective index should win big: before={before:.1} after={after:.1}"
    );
}

#[test]
fn irrelevant_index_changes_nothing() {
    let c = catalog();
    let mut m = model(&c);
    let spec = c.table_by_name("specobj").unwrap().id;
    let z_idx = m.register_candidate(CandidateIndex::new(spec, vec![2]));
    // q0 touches only photoobj
    let before = m.cost(0, &Configuration::empty());
    let after = m.cost(0, &Configuration::from_ids([z_idx]));
    assert!((before - after).abs() < 1e-9);
}

#[test]
fn ablation_single_case_cache_is_worse() {
    use parinda_inum::InumOptions;
    let c = catalog();
    let wl = workload();
    let mut full = InumModel::build_with(
        &c,
        &wl,
        CostParams::default(),
        InumOptions::default(),
    )
    .unwrap();
    let mut single = InumModel::build_with(
        &c,
        &wl,
        CostParams::default(),
        InumOptions { max_cases_per_query: 1, join_scenario_pairs: false },
    )
    .unwrap();
    let photo = c.table_by_name("photoobj").unwrap().id;
    let spec = c.table_by_name("specobj").unwrap().id;
    let f_ids = [
        full.register_candidate(CandidateIndex::new(photo, vec![0])),
        full.register_candidate(CandidateIndex::new(spec, vec![1])),
    ];
    let s_ids = [
        single.register_candidate(CandidateIndex::new(photo, vec![0])),
        single.register_candidate(CandidateIndex::new(spec, vec![1])),
    ];

    let mut worst_full = 1.0f64;
    let mut worst_single = 1.0f64;
    for mask in 0..4u32 {
        let f_cfg = Configuration::from_ids(
            f_ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &x)| x),
        );
        let s_cfg = Configuration::from_ids(
            s_ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &x)| x),
        );
        for qi in 0..wl.len() {
            let exact = full.exact_cost(qi, &f_cfg);
            let rf = (full.cost(qi, &f_cfg) / exact).max(exact / full.cost(qi, &f_cfg));
            let rs = (single.cost(qi, &s_cfg) / exact).max(exact / single.cost(qi, &s_cfg));
            worst_full = worst_full.max(rf);
            worst_single = worst_single.max(rs);
        }
    }
    assert!(worst_full < 1.6, "full cache should track exact: {worst_full}");
    // the richer cache is never less accurate (on this small fixture both
    // can be exact; experiment A1 shows the dramatic gap at SDSS scale)
    assert!(
        worst_single >= worst_full - 1e-9,
        "single-case cache cannot beat the full cache: single {worst_single} vs full {worst_full}"
    );
}

#[test]
fn options_control_cache_size() {
    use parinda_inum::InumOptions;
    let c = catalog();
    let wl = workload();
    // fewer cases -> fewer optimizer calls during the build
    let full = InumModel::build_with(&c, &wl, CostParams::default(), InumOptions::default())
        .unwrap();
    let lean = InumModel::build_with(
        &c,
        &wl,
        CostParams::default(),
        InumOptions { max_cases_per_query: 1, join_scenario_pairs: false },
    )
    .unwrap();
    assert!(lean.full_optimizations() < full.full_optimizations());
}

#[test]
fn counters_are_exact_under_parallel_builds() {
    use parinda_inum::InumOptions;
    use parinda_parallel::{par_map_indexed, Parallelism};
    let c = catalog();
    let wl = workload();
    let seq = InumModel::build_par(
        &c, &wl, CostParams::default(), InumOptions::default(), Parallelism::fixed(1),
    )
    .unwrap();
    let par = InumModel::build_par(
        &c, &wl, CostParams::default(), InumOptions::default(), Parallelism::fixed(4),
    )
    .unwrap();
    // cache population performs the same optimizer calls regardless of the
    // thread count, and no increment may be lost to a race
    assert!(seq.full_optimizations() > 0);
    assert_eq!(seq.full_optimizations(), par.full_optimizations());
    assert_eq!(par.estimations_served(), 0);

    // concurrent estimation sweeps over a shared model: exactly one
    // increment per served estimate
    let n = 1_000usize;
    let nq = par.queries().len();
    par_map_indexed(Parallelism::fixed(8), n, |i| par.cost(i % nq, &Configuration::empty()));
    assert_eq!(par.estimations_served(), n as u64);
}
