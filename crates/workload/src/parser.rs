//! Workload-file parsing: the "workload file" the PARINDA GUI takes as
//! input (paper §4) — SQL statements separated by semicolons, `--`
//! comments, and optional per-statement weights via `-- weight: N`.

use parinda_sql::{parse_script, Select, SqlError};

/// One workload entry: a statement and its weight (default 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    pub query: Select,
    pub weight: f64,
}

/// A parsed workload file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    pub entries: Vec<WorkloadEntry>,
}

impl Workload {
    /// Just the statements.
    pub fn queries(&self) -> Vec<Select> {
        self.entries.iter().map(|e| e.query.clone()).collect()
    }

    /// Per-entry weights, parallel to [`Workload::queries`].
    pub fn weights(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.weight).collect()
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the workload empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parse a workload file's contents.
///
/// Weights are attached with a comment line `-- weight: N` immediately
/// before a statement.
pub fn parse_workload(input: &str) -> Result<Workload, SqlError> {
    // First pass: find weight annotations and their statement ordinals.
    let mut weights: Vec<f64> = Vec::new();
    let mut pending: Option<f64> = None;
    let mut statement_seen_since_weight = true;
    // Tracks an open `'…'` literal across lines, so a `;` inside a string
    // (or behind a trailing `--` comment) is never counted as a statement
    // terminator — miscounting here shifts every later `-- weight:` onto
    // the wrong query.
    let mut in_string = false;
    let mut cleaned = String::with_capacity(input.len());
    for line in input.lines() {
        let trimmed = line.trim();
        if !in_string {
            if let Some(rest) = trimmed.strip_prefix("--") {
                let rest = rest.trim();
                if let Some(w) = rest.strip_prefix("weight:") {
                    if let Ok(v) = w.trim().parse::<f64>() {
                        pending = Some(v);
                        statement_seen_since_weight = false;
                    }
                }
                continue; // drop all comment lines
            }
            if trimmed.is_empty() {
                continue;
            }
        }
        cleaned.push_str(line);
        cleaned.push('\n');
        // Count `;` terminators, skipping string literals ('' escapes a
        // quote) and everything after a `--` comment marker.
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_string {
                if c == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next(); // escaped quote stays inside the literal
                    } else {
                        in_string = false;
                    }
                }
            } else {
                match c {
                    '\'' => in_string = true,
                    '-' if chars.peek() == Some(&'-') => break, // trailing comment
                    ';' => {
                        weights.push(if statement_seen_since_weight {
                            1.0
                        } else {
                            pending.take().unwrap_or(1.0)
                        });
                        statement_seen_since_weight = true;
                    }
                    _ => {}
                }
            }
        }
    }

    let selects = parse_script(&cleaned)?;
    // pad weights for a final unterminated statement
    while weights.len() < selects.len() {
        weights.push(if statement_seen_since_weight {
            1.0
        } else {
            pending.take().unwrap_or(1.0)
        });
        statement_seen_since_weight = true;
    }

    Ok(Workload {
        entries: selects
            .into_iter()
            .zip(weights)
            .map(|(query, weight)| WorkloadEntry { query, weight })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_statements() {
        let w = parse_workload("SELECT a FROM t;\nSELECT b FROM u;").unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.weights(), vec![1.0, 1.0]);
    }

    #[test]
    fn weight_comment_applies_to_next_statement() {
        let w = parse_workload(
            "-- weight: 5\nSELECT a FROM t;\nSELECT b FROM u;",
        )
        .unwrap();
        assert_eq!(w.weights(), vec![5.0, 1.0]);
    }

    #[test]
    fn comments_are_ignored() {
        let w = parse_workload(
            "-- a workload\nSELECT a FROM t; -- trailing comment\n-- mid comment\nSELECT b FROM u",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn final_statement_without_semicolon() {
        let w = parse_workload("-- weight: 3\nSELECT a FROM t").unwrap();
        assert_eq!(w.weights(), vec![3.0]);
    }

    /// Regression: `;` inside a string literal used to count as a
    /// statement terminator, shifting every later `-- weight:` onto the
    /// wrong query.
    #[test]
    fn semicolon_in_string_literal_does_not_shift_weights() {
        let w = parse_workload(
            "SELECT a FROM t WHERE name LIKE 'a;b%';\n-- weight: 7\nSELECT b FROM u;",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.weights(), vec![1.0, 7.0]);
    }

    /// Regression: `;` behind a trailing `--` comment was also counted.
    #[test]
    fn semicolon_in_trailing_comment_does_not_shift_weights() {
        let w = parse_workload(
            "SELECT a FROM t; -- note; see ticket;\n-- weight: 4\nSELECT b FROM u;",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.weights(), vec![1.0, 4.0]);
    }

    #[test]
    fn escaped_quote_stays_inside_literal() {
        let w = parse_workload(
            "-- weight: 2\nSELECT a FROM t WHERE name LIKE 'it''s; fine%';\nSELECT b FROM u;",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.weights(), vec![2.0, 1.0]);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(parse_workload("SELECT FROM WHERE").is_err());
    }

    #[test]
    fn empty_input_is_empty_workload() {
        let w = parse_workload("\n-- nothing here\n").unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn thirty_query_file_round_trips() {
        let text: String = crate::sdss::sdss_workload_sql()
            .iter()
            .map(|q| format!("{q};\n"))
            .collect();
        let w = parse_workload(&text).unwrap();
        assert_eq!(w.len(), 30);
    }
}
