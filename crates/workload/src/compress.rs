//! Workload compression: cluster equivalent statements into weighted
//! templates before any advisor runs (ROADMAP open item 1, after CoPhy's
//! workload compression and AIM's statement deduplication).
//!
//! Production workloads are overwhelmingly reweighted copies of a few
//! hundred statement *templates* — the same query shape re-issued with
//! different literals. Everything downstream of the workload (INUM memo
//! build, benefit matrix, ILP) is linear or worse in the statement
//! count, so collapsing 100k statements to O(100) templates *before*
//! INUM ever runs is the single biggest scaling lever the advisor has.
//!
//! Clustering is keyed by a normalizing [`fingerprint`]: literals
//! stripped, whitespace and case folded, `IN`-list arity erased. Each
//! cluster keeps its first-seen statement as the representative and the
//! *sum* of member weights, so a weighted advisor run over the templates
//! prices exactly the same objective as a run over the raw stream.
//!
//! Compression is sequential and first-seen ordered — bit-identical
//! output at any thread count, by construction.

use std::collections::BTreeMap;

use parinda_failpoint::should_fail;
use parinda_sql::Select;
use parinda_trace::{Counter, Trace};

use crate::parser::Workload;

/// One cluster of equivalent statements: the first-seen representative,
/// the summed weight of every member, and the normalized fingerprint
/// that keyed the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// First-seen member, used for planning/costing the whole cluster.
    pub query: Select,
    /// Sum of member weights (a raw statement weighs 1.0 by default).
    pub weight: f64,
    /// How many raw statements folded into this template.
    pub members: usize,
    /// The normalized text that keyed this cluster.
    pub fingerprint: String,
}

/// A compressed workload: templates in first-seen order plus the raw
/// totals they stand for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedWorkload {
    /// Surviving templates, in order of first appearance.
    pub templates: Vec<QueryTemplate>,
    /// Raw statement count before clustering.
    pub raw_statements: usize,
    /// Total raw weight before clustering (equals the sum of template
    /// weights — clustering only regroups, never rescales).
    pub raw_weight: f64,
}

impl CompressedWorkload {
    /// Representative statements, parallel to [`Self::weights`].
    pub fn queries(&self) -> Vec<Select> {
        self.templates.iter().map(|t| t.query.clone()).collect()
    }

    /// Per-template summed weights, parallel to [`Self::queries`].
    pub fn weights(&self) -> Vec<f64> {
        self.templates.iter().map(|t| t.weight).collect()
    }

    /// Number of surviving templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Is the compressed workload empty?
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Raw statements that folded into an already-seen template.
    pub fn merged(&self) -> usize {
        self.raw_statements - self.templates.len()
    }

    /// Raw statements per surviving template (1.0 when nothing merged).
    pub fn compression_ratio(&self) -> f64 {
        if self.templates.is_empty() {
            1.0
        } else {
            self.raw_statements as f64 / self.templates.len() as f64
        }
    }
}

/// Normalize one statement's text into its clustering key: case and
/// whitespace folded, string/numeric literals replaced by `?`, and runs
/// of `?` list elements collapsed so `IN (1, 2, 3)` and `IN (4)` key
/// identically. Digits inside identifiers (`modelmag_r`, `p1`) survive.
pub fn fingerprint(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    // was the previously emitted char part of an identifier? (guards
    // identifier-embedded digits from literal stripping)
    let mut prev_ident = false;
    while let Some(c) = chars.next() {
        if c == '\'' {
            // string literal, with '' escaping a quote
            while let Some(c2) = chars.next() {
                if c2 == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            out.push('?');
            prev_ident = false;
        } else if !prev_ident
            && (c.is_ascii_digit()
                || (c == '.' && chars.peek().map_or(false, |c2| c2.is_ascii_digit())))
        {
            // numeric literal: digit/dot run (covers `19.5` and `.5`) ...
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_digit() || c2 == '.' {
                    chars.next();
                } else {
                    break;
                }
            }
            // ... plus an optional exponent (`1e6`, `1.5e-3`, `2E+10`).
            // Two-char lookahead so a bare trailing `e` (an identifier,
            // as in `1 e`-adjacent aliases) is not swallowed.
            let mut look = chars.clone();
            if matches!(look.next(), Some('e') | Some('E')) {
                let consume_exp = match look.next() {
                    Some('+') | Some('-') => {
                        let signed = look.next().map_or(false, |d| d.is_ascii_digit());
                        if signed {
                            chars.next(); // e/E
                            chars.next(); // sign
                        }
                        signed
                    }
                    Some(d) if d.is_ascii_digit() => {
                        chars.next(); // e/E
                        true
                    }
                    _ => false,
                };
                if consume_exp {
                    while chars.peek().map_or(false, |d| d.is_ascii_digit()) {
                        chars.next();
                    }
                }
            }
            out.push('?');
            prev_ident = false;
        } else if c.is_whitespace() {
            if !out.is_empty() && !out.ends_with(' ') {
                out.push(' ');
            }
            prev_ident = false;
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            prev_ident = c.is_alphanumeric() || c == '_';
        }
    }
    let mut fp = out.trim_end().to_string();
    // erase list arity: (?, ?, ?) -> (?)
    loop {
        let collapsed = fp.replace("?, ?", "?").replace("?,?", "?");
        if collapsed == fp {
            break;
        }
        fp = collapsed;
    }
    fp
}

/// [`compress_workload_traced`] without observability.
pub fn compress_workload(workload: &Workload) -> CompressedWorkload {
    compress_workload_traced(workload, &Trace::disabled())
}

/// Cluster `workload` into weighted templates under a `cluster` span,
/// counting [`Counter::TemplatesMerged`].
///
/// The `workload::cluster` failpoint degrades clustering to the identity
/// (every statement keeps its own template) — the advisor still answers,
/// just without the speedup, which is the contract for every degraded
/// path in the pipeline.
pub fn compress_workload_traced(workload: &Workload, trace: &Trace) -> CompressedWorkload {
    let _span = trace.span("cluster");
    let degraded = should_fail("workload::cluster");
    let mut by_fp: BTreeMap<String, usize> = BTreeMap::new();
    let mut templates: Vec<QueryTemplate> = Vec::new();
    let mut raw_weight = 0.0;
    for (i, entry) in workload.entries.iter().enumerate() {
        raw_weight += entry.weight;
        let fp = if degraded {
            // unique per statement: clustering becomes the identity
            format!("degraded::{i}")
        } else {
            fingerprint(&entry.query.to_string())
        };
        match by_fp.get(&fp) {
            Some(&t) => {
                templates[t].weight += entry.weight;
                templates[t].members += 1;
            }
            None => {
                by_fp.insert(fp.clone(), templates.len());
                templates.push(QueryTemplate {
                    query: entry.query.clone(),
                    weight: entry.weight,
                    members: 1,
                    fingerprint: fp,
                });
            }
        }
    }
    let compressed = CompressedWorkload {
        templates,
        raw_statements: workload.len(),
        raw_weight,
    };
    trace.count(Counter::TemplatesMerged, compressed.merged() as u64);
    compressed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_workload;

    fn wl(text: &str) -> Workload {
        parse_workload(text).expect("test workload parses")
    }

    #[test]
    fn literals_fold_into_one_template() {
        let w = wl("SELECT ra FROM photoobj WHERE objid = 1;
                    SELECT ra FROM photoobj WHERE objid = 99999;
                    select   RA from PHOTOOBJ where objid=42;");
        let c = compress_workload(&w);
        assert_eq!(c.len(), 1);
        assert_eq!(c.templates[0].members, 3);
        assert_eq!(c.templates[0].weight, 3.0);
        assert_eq!(c.raw_statements, 3);
        assert_eq!(c.merged(), 2);
    }

    #[test]
    fn different_shapes_stay_distinct() {
        let w = wl("SELECT ra FROM photoobj WHERE objid = 1;
                    SELECT ra, dec FROM photoobj WHERE objid = 1;
                    SELECT ra FROM photoobj WHERE run = 1;");
        assert_eq!(compress_workload(&w).len(), 3);
    }

    #[test]
    fn weights_sum_per_cluster() {
        let w = wl("-- weight: 5\nSELECT a FROM t WHERE b = 1;
                    -- weight: 2.5\nSELECT a FROM t WHERE b = 7;");
        let c = compress_workload(&w);
        assert_eq!(c.len(), 1);
        assert_eq!(c.templates[0].weight, 7.5);
        assert_eq!(c.raw_weight, 7.5);
    }

    #[test]
    fn representative_is_first_seen_and_order_is_stable() {
        let w = wl("SELECT a FROM t WHERE b = 10;
                    SELECT a FROM u WHERE c = 2;
                    SELECT a FROM t WHERE b = 20;");
        let c = compress_workload(&w);
        assert_eq!(c.len(), 2);
        // first template keeps the literal from its first member
        assert!(c.templates[0].query.to_string().contains("10"));
        assert!(c.templates[1].query.to_string().contains("u"));
    }

    #[test]
    fn fingerprint_strips_literals_not_identifier_digits() {
        let fp = fingerprint("SELECT modelmag_r FROM photoobj p1 WHERE modelmag_r < 19.5");
        assert_eq!(fp, "select modelmag_r from photoobj p1 where modelmag_r < ?");
    }

    #[test]
    fn fingerprint_normalizes_leading_dot_decimals() {
        // `.5` and `0.5` are the same literal and must key identically
        let a = fingerprint("SELECT a FROM t WHERE r < .5");
        let b = fingerprint("SELECT a FROM t WHERE r < 0.5");
        assert_eq!(a, b);
        assert_eq!(a, "select a from t where r < ?");
    }

    #[test]
    fn fingerprint_normalizes_exponent_literals() {
        for lit in ["1e6", "1.5e-3", "2E+10", ".25e2", "7"] {
            let fp = fingerprint(&format!("SELECT a FROM t WHERE r < {lit}"));
            assert_eq!(fp, "select a from t where r < ?", "literal {lit}");
        }
    }

    #[test]
    fn fingerprint_leaves_non_exponent_suffixes_alone() {
        // `1e` is a number followed by an identifier, not an exponent
        let fp = fingerprint("SELECT a FROM t1e WHERE r < 1e");
        assert_eq!(fp, "select a from t1e where r < ?e");
        // `1e+` with no digits is arithmetic on an identifier, untouched
        let fp = fingerprint("SELECT a FROM t WHERE r < 1e+ x");
        assert_eq!(fp, "select a from t where r < ?e+ x");
    }

    #[test]
    fn fingerprint_keeps_qualified_column_dots() {
        // alias-qualified columns keep their dot; only literals collapse
        let fp = fingerprint("SELECT t1.ra FROM photoobj t1 WHERE t1.ra < .5");
        assert_eq!(fp, "select t1.ra from photoobj t1 where t1.ra < ?");
    }

    #[test]
    fn fingerprint_erases_in_list_arity() {
        let a = fingerprint("SELECT a FROM t WHERE b IN (1, 2, 3)");
        let b = fingerprint("SELECT a FROM t WHERE b IN (9)");
        assert_eq!(a, b);
        assert_eq!(a, "select a from t where b in (?)");
    }

    #[test]
    fn fingerprint_strips_string_literals_with_escapes() {
        let a = fingerprint("SELECT a FROM t WHERE name LIKE 'gal%'");
        let b = fingerprint("SELECT a FROM t WHERE name LIKE 'it''s; fine%'");
        assert_eq!(a, b);
    }

    #[test]
    fn total_weight_is_preserved() {
        let text: String =
            (0..40).map(|i| format!("SELECT ra FROM photoobj WHERE objid = {i};\n")).collect();
        let c = compress_workload(&wl(&text));
        assert_eq!(c.len(), 1);
        assert_eq!(c.raw_weight, 40.0);
        assert_eq!(c.weights().iter().sum::<f64>(), 40.0);
        assert_eq!(c.compression_ratio(), 40.0);
    }

    #[test]
    fn empty_workload_compresses_to_empty() {
        let c = compress_workload(&Workload::default());
        assert!(c.is_empty());
        assert_eq!(c.merged(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
    }

    #[test]
    fn merged_counter_is_recorded() {
        let t = Trace::recording();
        let w = wl("SELECT a FROM t WHERE b = 1;
                    SELECT a FROM t WHERE b = 2;
                    SELECT a FROM t WHERE b = 3;");
        let c = compress_workload_traced(&w, &t);
        assert_eq!(c.len(), 1);
        let r = t.snapshot();
        assert_eq!(r.counter(Counter::TemplatesMerged), 2);
        assert_eq!(r.spans["cluster"].count, 1);
    }
}
