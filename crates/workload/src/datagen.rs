//! Data and statistics generation for the synthetic SDSS instance.
//!
//! Two modes, matching the two scales:
//!
//! * **Statistics synthesis** (paper scale): attach realistic `pg_statistic`
//!   rows directly, so the advisors exercise the identical code paths they
//!   would over the real 150 GB sample — they only ever read statistics.
//! * **Row generation** (laptop scale): seeded, reproducible rows loaded
//!   into the storage engine so workloads can actually be executed.

use parinda_catalog::{Catalog, ColumnStats, Datum, MetadataProvider, SqlType, TableId};
use parinda_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sdss::{SdssTables, BANDS, BAND_QUANTITIES};

/// Synthesize planner statistics for every column of the SDSS catalog
/// without materializing any data.
pub fn synthesize_stats(catalog: &mut Catalog, tables: &SdssTables) {
    let specs: Vec<(TableId, u64)> = {
        let ids = [
            tables.photoobj,
            tables.specobj,
            tables.neighbors,
            tables.field,
            tables.photoz,
        ];
        ids.iter()
            .map(|&t| (t, catalog.table(t).map(|x| x.row_count).unwrap_or(0)))
            .collect()
    };
    for (tid, rows) in specs {
        let table = catalog.table(tid).expect("sdss table").clone();
        for (ci, col) in table.columns.iter().enumerate() {
            let stats = column_stats_for(&table.name, &col.name, col.ty, rows);
            catalog.set_column_stats(tid, ci, stats);
        }
    }
}

/// Plausible statistics for one SDSS column, keyed by naming conventions.
fn column_stats_for(table: &str, column: &str, ty: SqlType, rows: u64) -> ColumnStats {
    let rows_f = rows.max(1) as f64;
    // identity columns: unique, physically clustered
    if (column.ends_with("id") && !column.ends_with("fiberid")) || column == "obj" {
        let unique = column == "objid" && table != "neighbors" && table != "photoz"
            || column == "specobjid" && table == "specobj"
            || column == "fieldid" && table == "field";
        let nd = if unique { -1.0 } else { -0.5 };
        return ColumnStats {
            null_frac: 0.0,
            n_distinct: nd,
            avg_width: 8.0,
            mcv: Vec::new(),
            histogram: numeric_histogram(0.0, rows_f * 64.0, 100),
            correlation: if unique { 1.0 } else { 0.3 },
        };
    }
    match column {
        "ra" | "l" => uniform_stats(0.0, 360.0, rows_f),
        "dec" | "b" => uniform_stats(-90.0, 90.0, rows_f),
        "raerr" | "decerr" => uniform_stats(0.0, 0.5, rows_f),
        "cx" | "cy" | "cz" => uniform_stats(-1.0, 1.0, rows_f),
        "z" => uniform_stats(0.0, if table == "specobj" { 5.0 } else { 1.2 }, rows_f),
        "zerr" | "zconf" => uniform_stats(0.0, 1.0, rows_f),
        "distance" => uniform_stats(0.0, 0.0083, rows_f), // 30 arcsec in degrees
        "type" | "neighbortype" => categorical_stats(&[(3, 0.45), (6, 0.45), (0, 0.1)]),
        "specclass" => categorical_stats(&[(2, 0.7), (1, 0.15), (3, 0.1), (0, 0.05)]),
        "mode" | "neighbormode" => categorical_stats(&[(1, 0.85), (2, 0.15)]),
        "skyversion" | "rerun" => categorical_stats(&[(1, 0.6), (0, 0.4)]),
        "camcol" => categorical_stats(&[(1, 0.17), (2, 0.17), (3, 0.17), (4, 0.17), (5, 0.16), (6, 0.16)]),
        "quality" => categorical_stats(&[(3, 0.6), (1, 0.2), (5, 0.2)]),
        "zstatus" => categorical_stats(&[(4, 0.8), (3, 0.1), (0, 0.1)]),
        "zwarning" | "insidemask" => categorical_stats(&[(0, 0.9), (1, 0.1)]),
        "run" => int_range_stats(94, 8000, 600.0, rows_f),
        "field" => int_range_stats(11, 1000, 900.0, rows_f),
        "plate" => int_range_stats(266, 2000, 1700.0, rows_f),
        "mjd" => int_range_stats(51_578, 53_520, 1900.0, rows_f),
        "fiberid" => int_range_stats(1, 640, 640.0, rows_f),
        "nchild" => categorical_stats(&[(0, 0.9), (1, 0.05), (2, 0.05)]),
        "probpsf" => uniform_stats(0.0, 1.0, rows_f),
        "flags" | "status" | "primtarget" | "sectarget" | "htmid" => ColumnStats {
            null_frac: 0.0,
            n_distinct: -0.2,
            avg_width: 8.0,
            mcv: Vec::new(),
            histogram: numeric_histogram(0.0, 1.0e12, 100),
            correlation: if column == "htmid" { 0.8 } else { 0.0 },
        },
        "veldisp" => uniform_stats(50.0, 420.0, rows_f),
        "veldisperr" => uniform_stats(0.0, 60.0, rows_f),
        "eclass" => uniform_stats(-0.4, 1.0, rows_f),
        "psfwidth_r" => uniform_stats(0.8, 2.5, rows_f),
        "sky_r" => uniform_stats(19.0, 22.5, rows_f),
        "rowc" | "colc" => uniform_stats(0.0, 2048.0, rows_f),
        "rowv" | "colv" => uniform_stats(-1.0, 1.0, rows_f),
        "t" => uniform_stats(-0.5, 1.5, rows_f),
        "terr" => uniform_stats(0.0, 0.5, rows_f),
        _ => {
            // photometric quantities: magnitudes ~ [12, 26], radii [0, 30],
            // extinction [0, 1.5]
            if column.starts_with("extinction") {
                uniform_stats(0.0, 1.5, rows_f)
            } else if column.starts_with("petrorad")
                || column.starts_with("petror50")
                || column.starts_with("devrad")
                || column.starts_with("exprad")
            {
                uniform_stats(0.0, 30.0, rows_f)
            } else if column.ends_with("err") || column.starts_with("sn_") {
                uniform_stats(0.0, 2.0, rows_f)
            } else if column.starts_with("ecoeff") {
                uniform_stats(-30.0, 30.0, rows_f)
            } else {
                // magnitudes
                uniform_stats(12.0, 26.0, rows_f)
            }
        }
    }
    .with_width(ty)
}

trait WithWidth {
    fn with_width(self, ty: SqlType) -> ColumnStats;
}

impl WithWidth for ColumnStats {
    fn with_width(mut self, ty: SqlType) -> ColumnStats {
        if let Some(n) = ty.fixed_size() {
            self.avg_width = n as f64;
        }
        self
    }
}

fn numeric_histogram(lo: f64, hi: f64, buckets: usize) -> Vec<Datum> {
    (0..=buckets)
        .map(|i| Datum::Float(lo + (hi - lo) * i as f64 / buckets as f64))
        .collect()
}

fn uniform_stats(lo: f64, hi: f64, _rows: f64) -> ColumnStats {
    ColumnStats {
        null_frac: 0.0,
        n_distinct: -0.7,
        avg_width: 8.0,
        mcv: Vec::new(),
        histogram: numeric_histogram(lo, hi, 100),
        correlation: 0.05,
    }
}

fn int_range_stats(lo: i64, hi: i64, nd: f64, _rows: f64) -> ColumnStats {
    ColumnStats {
        null_frac: 0.0,
        n_distinct: nd,
        avg_width: 4.0,
        mcv: Vec::new(),
        histogram: (0..=100)
            .map(|i| Datum::Int(lo + (hi - lo) * i / 100))
            .collect(),
        correlation: 0.4,
    }
}

fn categorical_stats(entries: &[(i64, f64)]) -> ColumnStats {
    ColumnStats {
        null_frac: 0.0,
        n_distinct: entries.len() as f64,
        avg_width: 2.0,
        mcv: entries.iter().map(|&(v, f)| (Datum::Int(v), f)).collect(),
        histogram: Vec::new(),
        correlation: 0.1,
    }
}

/// Generate laptop-scale rows for every SDSS table, load them into `db`,
/// and ANALYZE. Fully deterministic for a given seed.
pub fn generate_and_load(
    catalog: &mut Catalog,
    db: &mut Database,
    tables: &SdssTables,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let photo_rows = catalog.table(tables.photoobj).unwrap().row_count;
    let spec_rows = catalog.table(tables.specobj).unwrap().row_count;
    let neigh_rows = catalog.table(tables.neighbors).unwrap().row_count;
    let field_rows = catalog.table(tables.field).unwrap().row_count;
    let photoz_rows = catalog.table(tables.photoz).unwrap().row_count;

    // field first (photoobj references fieldid)
    let field_data: Vec<Vec<Datum>> = (0..field_rows)
        .map(|i| {
            vec![
                Datum::Int(i as i64),
                Datum::Int(94 + (rng.gen::<u32>() % 7906) as i64),
                Datum::Int((rng.gen::<u32>() % 2) as i64),
                Datum::Int(1 + (rng.gen::<u32>() % 6) as i64),
                Datum::Int(11 + (rng.gen::<u32>() % 989) as i64),
                Datum::Float(rng.gen::<f64>() * 360.0),
                Datum::Float(rng.gen::<f64>() * 180.0 - 90.0),
                Datum::Float(0.8 + rng.gen::<f64>() * 1.7),
                Datum::Float(19.0 + rng.gen::<f64>() * 3.5),
                Datum::Int([3, 1, 5][(rng.gen::<u32>() % 3) as usize]),
                Datum::Int(51_578 + (rng.gen::<u32>() % 1942) as i64),
            ]
        })
        .collect();
    db.load_table(catalog, tables.field, field_data).expect("field rows load");

    // photoobj: objid ascending (clustered), ra correlated with objid to
    // give the planner a meaningful correlation signal.
    let ncols = catalog.table(tables.photoobj).unwrap().columns.len();
    let photo_data: Vec<Vec<Datum>> = (0..photo_rows)
        .map(|i| {
            let mut row = Vec::with_capacity(ncols);
            let ty = *[3i64, 6, 3, 6, 3, 6, 0].get((rng.gen::<u32>() % 7) as usize).unwrap();
            let ra = (i as f64 / photo_rows.max(1) as f64) * 360.0;
            let dec = rng.gen::<f64>() * 180.0 - 90.0;
            row.push(Datum::Int(i as i64)); // objid
            row.push(Datum::Int(1)); // skyversion
            row.push(Datum::Int(94 + (rng.gen::<u32>() % 7906) as i64)); // run
            row.push(Datum::Int(0)); // rerun
            row.push(Datum::Int(1 + (rng.gen::<u32>() % 6) as i64)); // camcol
            row.push(Datum::Int(11 + (rng.gen::<u32>() % 989) as i64)); // field
            row.push(Datum::Int((rng.gen::<u32>() % 1000) as i64)); // obj
            row.push(Datum::Int(1)); // mode
            row.push(Datum::Int(0)); // nchild
            row.push(Datum::Int(ty)); // type
            row.push(Datum::Float(if ty == 6 { 0.9 } else { 0.1 })); // probpsf
            row.push(Datum::Int(0)); // insidemask
            row.push(Datum::Int((rng.gen::<u64>() & 0xFFFF_FFFF) as i64)); // flags
            row.push(Datum::Int((rng.gen::<u32>() % 4096) as i64)); // status
            row.push(Datum::Float(ra));
            row.push(Datum::Float(dec));
            row.push(Datum::Float(rng.gen::<f64>() * 0.1)); // raerr
            row.push(Datum::Float(rng.gen::<f64>() * 0.1)); // decerr
            row.push(Datum::Float(dec * 0.9)); // b
            row.push(Datum::Float(ra * 0.99)); // l
            row.push(Datum::Float((ra.to_radians()).cos()));
            row.push(Datum::Float((ra.to_radians()).sin()));
            row.push(Datum::Float((dec.to_radians()).sin()));
            row.push(Datum::Float(rng.gen::<f64>() * 2048.0)); // rowc
            row.push(Datum::Float(rng.gen::<f64>() * 2048.0)); // colc
            row.push(Datum::Float(rng.gen::<f64>() * 2.0 - 1.0)); // rowv
            row.push(Datum::Float(rng.gen::<f64>() * 2.0 - 1.0)); // colv
            row.push(Datum::Int((i as i64) * 64)); // htmid (clustered)
            row.push(Datum::Int((rng.gen::<u64>() % field_rows.max(1)) as i64)); // fieldid
            row.push(Datum::Null); // specobjid (mostly null)
            // per-band photometry: r-band magnitude drives the others
            let base_mag = 14.0 + rng.gen::<f64>() * 10.0;
            for q in BAND_QUANTITIES {
                for (bi, _) in BANDS.iter().enumerate() {
                    let v = match q {
                        "extinction" => rng.gen::<f64>() * 1.2,
                        "petrorad" | "petror50" | "devrad" | "exprad" => {
                            rng.gen::<f64>() * 25.0
                        }
                        _ if q.ends_with("err") => rng.gen::<f64>() * 0.8,
                        _ => base_mag + (bi as f64 - 2.0) * (0.3 + rng.gen::<f64>() * 0.4),
                    };
                    row.push(Datum::Float(v));
                }
            }
            debug_assert_eq!(row.len(), ncols);
            row
        })
        .collect();
    db.load_table(catalog, tables.photoobj, photo_data).expect("photoobj rows load");

    // specobj: bestobjid points at real photo objects.
    let spec_data: Vec<Vec<Datum>> = (0..spec_rows)
        .map(|i| {
            let mut row = Vec::new();
            let z = rng.gen::<f64>() * 0.5 + (rng.gen::<u32>() % 10 == 0) as i64 as f64 * 2.0;
            row.push(Datum::Int(i as i64)); // specobjid
            row.push(Datum::Int((rng.gen::<u64>() % photo_rows.max(1)) as i64)); // bestobjid
            row.push(Datum::Int(266 + (rng.gen::<u32>() % 1734) as i64)); // plate
            row.push(Datum::Int(51_578 + (rng.gen::<u32>() % 1942) as i64)); // mjd
            row.push(Datum::Int(1 + (rng.gen::<u32>() % 640) as i64)); // fiberid
            row.push(Datum::Float(z));
            row.push(Datum::Float(rng.gen::<f64>() * 0.01)); // zerr
            row.push(Datum::Float(0.5 + rng.gen::<f64>() * 0.5)); // zconf
            row.push(Datum::Int(4)); // zstatus
            row.push(Datum::Int((rng.gen::<u32>() % 10 == 0) as i64)); // zwarning
            row.push(Datum::Int([2i64, 2, 2, 1, 3][(rng.gen::<u32>() % 5) as usize])); // specclass
            row.push(Datum::Int((rng.gen::<u64>() & 0xFFFF) as i64)); // primtarget
            row.push(Datum::Int((rng.gen::<u64>() & 0xFF) as i64)); // sectarget
            row.push(Datum::Float(rng.gen::<f64>() * 1.4 - 0.4)); // eclass
            row.push(Datum::Float(50.0 + rng.gen::<f64>() * 370.0)); // veldisp
            row.push(Datum::Float(rng.gen::<f64>() * 60.0)); // veldisperr
            for _ in 0..5 {
                row.push(Datum::Float(rng.gen::<f64>() * 60.0 - 30.0)); // ecoeff_i
            }
            for _ in 0..3 {
                row.push(Datum::Float(rng.gen::<f64>() * 30.0)); // sn_i
                row.push(Datum::Float(14.0 + rng.gen::<f64>() * 10.0)); // mag_i
            }
            row
        })
        .collect();
    db.load_table(catalog, tables.specobj, spec_data).expect("specobj rows load");

    // neighbors: pairs of nearby photo objects.
    let neigh_data: Vec<Vec<Datum>> = (0..neigh_rows)
        .map(|_| {
            let a = (rng.gen::<u64>() % photo_rows.max(1)) as i64;
            let b = (rng.gen::<u64>() % photo_rows.max(1)) as i64;
            vec![
                Datum::Int(a),
                Datum::Int(b),
                Datum::Float(rng.gen::<f64>() * 0.0083),
                Datum::Int([3i64, 6, 0][(rng.gen::<u32>() % 3) as usize]),
                Datum::Int([3i64, 6, 0][(rng.gen::<u32>() % 3) as usize]),
                Datum::Int(1),
                Datum::Int(1),
            ]
        })
        .collect();
    db.load_table(catalog, tables.neighbors, neigh_data).expect("neighbors rows load");

    // photoz: one estimate per photo object.
    let photoz_data: Vec<Vec<Datum>> = (0..photoz_rows)
        .map(|i| {
            vec![
                Datum::Int(i as i64),
                Datum::Float(rng.gen::<f64>() * 1.2),
                Datum::Float(rng.gen::<f64>() * 0.1),
                Datum::Float(rng.gen::<f64>() * 2.0 - 0.5),
                Datum::Float(rng.gen::<f64>() * 0.5),
                Datum::Int([5i64, 3, 1][(rng.gen::<u32>() % 3) as usize]),
            ]
        })
        .collect();
    db.load_table(catalog, tables.photoz, photoz_data).expect("photoz rows load");

    db.analyze(catalog);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdss::{sdss_catalog, SdssScale};

    #[test]
    fn synthesized_stats_cover_every_column() {
        let (mut c, t) = sdss_catalog(SdssScale::paper());
        synthesize_stats(&mut c, &t);
        for table in [t.photoobj, t.specobj, t.neighbors, t.field, t.photoz] {
            let tbl = c.table(table).unwrap().clone();
            for i in 0..tbl.columns.len() {
                assert!(
                    c.column_stats(table, i).is_some(),
                    "missing stats for {}.{}",
                    tbl.name,
                    tbl.columns[i].name
                );
            }
        }
    }

    #[test]
    fn objid_stats_unique_and_clustered() {
        let (mut c, t) = sdss_catalog(SdssScale::paper());
        synthesize_stats(&mut c, &t);
        let s = c.column_stats(t.photoobj, 0).unwrap();
        assert_eq!(s.n_distinct, -1.0);
        assert_eq!(s.correlation, 1.0);
    }

    #[test]
    fn type_stats_have_mcvs() {
        let (mut c, t) = sdss_catalog(SdssScale::paper());
        synthesize_stats(&mut c, &t);
        let photo = c.table(t.photoobj).unwrap();
        let ci = photo.column_index("type").unwrap();
        let s = c.column_stats(t.photoobj, ci).unwrap();
        assert!(!s.mcv.is_empty());
    }

    #[test]
    fn generate_and_load_is_deterministic() {
        let (mut c1, t1) = sdss_catalog(SdssScale::laptop(500));
        let mut db1 = Database::new();
        generate_and_load(&mut c1, &mut db1, &t1, 7);
        let (mut c2, t2) = sdss_catalog(SdssScale::laptop(500));
        let mut db2 = Database::new();
        generate_and_load(&mut c2, &mut db2, &t2, 7);
        let h1 = db1.heap(t1.photoobj).unwrap();
        let h2 = db2.heap(t2.photoobj).unwrap();
        assert_eq!(h1.row_count(), h2.row_count());
        assert_eq!(h1.row(42), h2.row(42));
    }

    #[test]
    fn loaded_counts_match_scale() {
        let (mut c, t) = sdss_catalog(SdssScale::laptop(300));
        let mut db = Database::new();
        generate_and_load(&mut c, &mut db, &t, 1);
        assert_eq!(db.heap(t.photoobj).unwrap().row_count(), 300);
        assert_eq!(db.heap(t.specobj).unwrap().row_count(), 15);
        assert_eq!(db.heap(t.neighbors).unwrap().row_count(), 600);
        // ANALYZE ran
        assert!(c.column_stats(t.photoobj, 0).is_some());
    }

    #[test]
    fn workload_plans_over_synthesized_stats() {
        let (mut c, t) = sdss_catalog(SdssScale::paper());
        synthesize_stats(&mut c, &t);
        for (i, sel) in crate::sdss::sdss_workload().iter().enumerate() {
            let (_, plan) = parinda_optimizer::optimize(sel, &c)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            assert!(plan.cost.total.is_finite() && plan.cost.total > 0.0, "query {i}");
        }
    }

    #[test]
    fn workload_executes_over_generated_data() {
        let (mut c, t) = sdss_catalog(SdssScale::laptop(400));
        let mut db = Database::new();
        generate_and_load(&mut c, &mut db, &t, 3);
        for (i, sel) in crate::sdss::sdss_workload().iter().enumerate() {
            let (_, plan) = parinda_optimizer::optimize(sel, &c)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            parinda_executor::execute(&plan, &c, &db)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
        }
    }
}
