//! A second, retail-flavoured demo instance (orders / lineitem / customer
//! / product), in the spirit of TPC-H.
//!
//! The paper demonstrates on SDSS but notes the tool "has been prototyped
//! for several different DBMSs"; this schema exists to keep the
//! reproduction honest about generality — nothing in the advisors may
//! depend on SDSS naming or shapes, and the cross-schema tests run every
//! component over this instance too.

use parinda_catalog::{Catalog, Column, MetadataProvider, SqlType, TableId};
use parinda_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tables of the retail instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetailTables {
    pub customer: TableId,
    pub product: TableId,
    pub orders: TableId,
    pub lineitem: TableId,
}

/// Build the retail catalog. `scale` = number of orders; the other tables
/// scale proportionally (4 line items per order, 1 customer per 10 orders).
pub fn retail_catalog(scale: u64) -> (Catalog, RetailTables) {
    let mut c = Catalog::new();
    let customers = (scale / 10).max(10);
    let products = (scale / 50).max(10);
    let customer = c.create_table(
        "customer",
        vec![
            Column::new("custkey", SqlType::Int8).not_null(),
            Column::new("name", SqlType::VarChar(25)).not_null().with_avg_width(18.0),
            Column::new("nation", SqlType::Int2).not_null(),
            Column::new("segment", SqlType::Int2).not_null(),
            Column::new("acctbal", SqlType::Float8).not_null(),
            Column::new("address", SqlType::VarChar(40)).with_avg_width(25.0),
            Column::new("phone", SqlType::VarChar(15)).with_avg_width(15.0),
        ],
        customers,
    );
    c.table_mut(customer).unwrap().primary_key = vec![0];

    let product = c.create_table(
        "product",
        vec![
            Column::new("prodkey", SqlType::Int8).not_null(),
            Column::new("name", SqlType::VarChar(55)).not_null().with_avg_width(30.0),
            Column::new("brand", SqlType::Int2).not_null(),
            Column::new("category", SqlType::Int2).not_null(),
            Column::new("price", SqlType::Float8).not_null(),
            Column::new("stock", SqlType::Int4).not_null(),
        ],
        products,
    );
    c.table_mut(product).unwrap().primary_key = vec![0];

    let orders = c.create_table(
        "orders",
        vec![
            Column::new("orderkey", SqlType::Int8).not_null(),
            Column::new("custkey", SqlType::Int8).not_null(),
            Column::new("status", SqlType::Int2).not_null(),
            Column::new("totalprice", SqlType::Float8).not_null(),
            Column::new("orderdate", SqlType::Date).not_null(),
            Column::new("priority", SqlType::Int2).not_null(),
            Column::new("clerk", SqlType::Int4).not_null(),
        ],
        scale,
    );
    c.table_mut(orders).unwrap().primary_key = vec![0];

    let lineitem = c.create_table(
        "lineitem",
        vec![
            Column::new("orderkey", SqlType::Int8).not_null(),
            Column::new("linenumber", SqlType::Int2).not_null(),
            Column::new("prodkey", SqlType::Int8).not_null(),
            Column::new("quantity", SqlType::Int4).not_null(),
            Column::new("extendedprice", SqlType::Float8).not_null(),
            Column::new("discount", SqlType::Float8).not_null(),
            Column::new("tax", SqlType::Float8).not_null(),
            Column::new("shipdate", SqlType::Date).not_null(),
            Column::new("receiptdate", SqlType::Date).not_null(),
        ],
        scale * 4,
    );

    (c, RetailTables { customer, product, orders, lineitem })
}

/// Deterministically generate and load rows for the retail instance, then
/// ANALYZE.
pub fn retail_load(catalog: &mut Catalog, db: &mut Database, tables: &RetailTables, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_orders = catalog.table(tables.orders).unwrap().row_count;
    let n_cust = catalog.table(tables.customer).unwrap().row_count;
    let n_prod = catalog.table(tables.product).unwrap().row_count;
    let n_items = catalog.table(tables.lineitem).unwrap().row_count;

    use parinda_catalog::Datum;
    let cust_rows: Vec<Vec<Datum>> = (0..n_cust)
        .map(|i| {
            vec![
                Datum::Int(i as i64),
                Datum::Str(format!("Customer#{i:09}")),
                Datum::Int((rng.gen::<u32>() % 25) as i64),
                Datum::Int((rng.gen::<u32>() % 5) as i64),
                Datum::Float(rng.gen::<f64>() * 10_000.0 - 1_000.0),
                Datum::Str(format!("addr {i}")),
                Datum::Str(format!("{:015}", i)),
            ]
        })
        .collect();
    db.load_table(catalog, tables.customer, cust_rows).expect("customer load");

    let prod_rows: Vec<Vec<Datum>> = (0..n_prod)
        .map(|i| {
            vec![
                Datum::Int(i as i64),
                Datum::Str(format!("Product#{i:09}")),
                Datum::Int((rng.gen::<u32>() % 25) as i64),
                Datum::Int((rng.gen::<u32>() % 50) as i64),
                Datum::Float(900.0 + rng.gen::<f64>() * 10_000.0),
                Datum::Int((rng.gen::<u32>() % 10_000) as i64),
            ]
        })
        .collect();
    db.load_table(catalog, tables.product, prod_rows).expect("product load");

    let order_rows: Vec<Vec<Datum>> = (0..n_orders)
        .map(|i| {
            vec![
                Datum::Int(i as i64),
                Datum::Int((rng.gen::<u64>() % n_cust) as i64),
                Datum::Int([0i64, 1, 2][(rng.gen::<u32>() % 3) as usize]),
                Datum::Float(1_000.0 + rng.gen::<f64>() * 400_000.0),
                Datum::Int(8_000 + (rng.gen::<u32>() % 2_500) as i64), // days
                Datum::Int((rng.gen::<u32>() % 5) as i64),
                Datum::Int((rng.gen::<u32>() % 1_000) as i64),
            ]
        })
        .collect();
    db.load_table(catalog, tables.orders, order_rows).expect("orders load");

    let item_rows: Vec<Vec<Datum>> = (0..n_items)
        .map(|i| {
            let ship = 8_000 + (rng.gen::<u32>() % 2_500) as i64;
            vec![
                Datum::Int((i / 4) as i64),
                Datum::Int((i % 4) as i64 + 1),
                Datum::Int((rng.gen::<u64>() % n_prod) as i64),
                Datum::Int(1 + (rng.gen::<u32>() % 50) as i64),
                Datum::Float(rng.gen::<f64>() * 90_000.0 + 900.0),
                Datum::Float((rng.gen::<u32>() % 11) as f64 / 100.0),
                Datum::Float((rng.gen::<u32>() % 9) as f64 / 100.0),
                Datum::Int(ship),
                Datum::Int(ship + 1 + (rng.gen::<u32>() % 30) as i64),
            ]
        })
        .collect();
    db.load_table(catalog, tables.lineitem, item_rows).expect("lineitem load");

    db.analyze(catalog);
}

/// Twelve analytical queries over the retail schema (pricing summaries,
/// shipping-priority style joins, segment aggregates).
pub fn retail_workload_sql() -> Vec<&'static str> {
    vec![
        "SELECT orderkey, totalprice FROM orders WHERE orderkey = 4242",
        "SELECT orderkey FROM orders WHERE orderdate BETWEEN 9000 AND 9030",
        "SELECT status, COUNT(*), AVG(totalprice) FROM orders GROUP BY status",
        "SELECT priority, COUNT(*) FROM orders WHERE orderdate BETWEEN 9000 AND 9090 GROUP BY priority",
        "SELECT l.orderkey, l.extendedprice FROM lineitem l WHERE l.shipdate BETWEEN 9000 AND 9010",
        "SELECT COUNT(*), SUM(extendedprice), AVG(discount) FROM lineitem \
         WHERE shipdate BETWEEN 9000 AND 9365 AND discount BETWEEN 0.02 AND 0.04",
        "SELECT o.orderkey, o.totalprice FROM orders o, customer c \
         WHERE o.custkey = c.custkey AND c.segment = 2 AND o.totalprice > 350000.0",
        "SELECT c.nation, COUNT(*) FROM orders o, customer c \
         WHERE o.custkey = c.custkey AND o.orderdate BETWEEN 9000 AND 9180 GROUP BY c.nation",
        "SELECT l.orderkey, p.name FROM lineitem l, product p \
         WHERE l.prodkey = p.prodkey AND p.category = 7 AND l.quantity > 45",
        "SELECT p.brand, COUNT(*), AVG(l.extendedprice) FROM lineitem l, product p \
         WHERE l.prodkey = p.prodkey GROUP BY p.brand",
        "SELECT o.orderkey FROM orders o, lineitem l \
         WHERE o.orderkey = l.orderkey AND o.priority = 0 AND l.shipdate > o.orderdate",
        "SELECT c.custkey, c.acctbal FROM customer c WHERE c.acctbal > 8900.0 ORDER BY c.acctbal DESC LIMIT 20",
    ]
}

/// Parse the retail workload.
pub fn retail_workload() -> Vec<parinda_sql::Select> {
    retail_workload_sql()
        .iter()
        .map(|s| parinda_sql::parse_select(s).expect("retail workload parses"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn schema_builds_and_scales() {
        let (c, t) = retail_catalog(10_000);
        assert_eq!(c.table(t.orders).unwrap().row_count, 10_000);
        assert_eq!(c.table(t.lineitem).unwrap().row_count, 40_000);
        assert_eq!(c.table(t.customer).unwrap().row_count, 1_000);
        assert_eq!(c.all_tables().len(), 4);
    }

    #[test]
    fn workload_parses_and_binds() {
        let (c, _) = retail_catalog(1_000);
        for (i, q) in retail_workload().iter().enumerate() {
            parinda_optimizer::bind(q, &c).unwrap_or_else(|e| panic!("query {i}: {e}"));
        }
    }

    #[test]
    fn load_and_execute() {
        let (mut c, t) = retail_catalog(500);
        let mut db = Database::new();
        retail_load(&mut c, &mut db, &t, 7);
        assert_eq!(db.heap(t.lineitem).unwrap().row_count(), 2_000);
        for (i, q) in retail_workload().iter().enumerate() {
            let (_, plan) = parinda_optimizer::optimize(q, &c)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            parinda_executor::execute(&plan, &c, &db)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
        }
    }
}
