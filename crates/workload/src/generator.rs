//! Seeded random query generation over the SDSS schema — used by the
//! scaling benchmarks (E4 sweeps workload size up to 120 queries) and by
//! stress tests.

use parinda_sql::{parse_select, Select};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` SDSS-flavoured queries from parameterized templates.
///
/// Templates vary their constants (and thereby their selectivities and
/// best indexes), so larger generated workloads genuinely stress index
/// interaction the way the paper's ILP-vs-greedy claim requires.
pub fn generate_queries(n: usize, seed: u64) -> Vec<Select> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| generate_one(&mut rng)).collect()
}

fn generate_one(rng: &mut StdRng) -> Select {
    let band = ["u", "g", "r", "i", "z"][rng.gen::<u32>() as usize % 5];
    let ty = [3, 6][rng.gen::<u32>() as usize % 2];
    let ra0 = rng.gen::<f64>() * 350.0;
    let ra1 = ra0 + rng.gen::<f64>() * 5.0 + 0.05;
    let mag0 = 14.0 + rng.gen::<f64>() * 10.0;
    let mag1 = mag0 + rng.gen::<f64>() * 1.5 + 0.05;
    let z0 = rng.gen::<f64>() * 0.8;
    let z1 = z0 + 0.05;
    let run = 94 + rng.gen::<u32>() % 7906;
    let objid = rng.gen::<u64>() % 9_000_000;

    let sql = match rng.gen::<u32>() % 8 {
        0 => format!(
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN {ra0:.3} AND {ra1:.3}"
        ),
        1 => format!(
            "SELECT objid, modelmag_{band} FROM photoobj \
             WHERE type = {ty} AND modelmag_{band} BETWEEN {mag0:.2} AND {mag1:.2}"
        ),
        2 => format!(
            "SELECT objid, psfmag_{band} FROM photoobj WHERE psfmag_{band} < {mag0:.2}"
        ),
        3 => format!("SELECT ra, dec FROM photoobj WHERE objid = {objid}"),
        4 => format!(
            "SELECT p.objid, s.z FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.z BETWEEN {z0:.3} AND {z1:.3}"
        ),
        5 => format!(
            "SELECT type, COUNT(*) FROM photoobj WHERE run = {run} GROUP BY type"
        ),
        6 => format!(
            "SELECT n.objid, n.distance FROM neighbors n \
             WHERE n.distance < {d:.5} AND n.type = {ty}",
            d = rng.gen::<f64>() * 0.003 + 0.0001
        ),
        _ => format!(
            "SELECT p.objid, p.petrorad_{band} FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.specclass = 2 \
             AND p.petrorad_{band} > {r:.2}",
            r = rng.gen::<f64>() * 20.0
        ),
    };
    parse_select(&sql).expect("generated SQL parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdss::{sdss_catalog, SdssScale};

    #[test]
    fn generates_requested_count() {
        assert_eq!(generate_queries(25, 1).len(), 25);
        assert!(generate_queries(0, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_queries(10, 99);
        let b = generate_queries(10, 99);
        assert_eq!(a, b);
        let c = generate_queries(10, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_queries_bind() {
        let (c, _) = sdss_catalog(SdssScale::laptop(100));
        for (i, q) in generate_queries(60, 7).iter().enumerate() {
            parinda_optimizer::bind(q, &c).unwrap_or_else(|e| panic!("query {i}: {e}"));
        }
    }
}
