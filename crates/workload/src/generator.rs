//! Seeded random query generation — used by the scaling benchmarks (E4
//! sweeps workload size up to 120 queries; E10 expands 10k/100k-statement
//! streams for the compression pipeline) and by stress tests.

use crate::parser::{Workload, WorkloadEntry};
use parinda_sql::{parse_select, Select};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` SDSS-flavoured queries from parameterized templates.
///
/// Templates vary their constants (and thereby their selectivities and
/// best indexes), so larger generated workloads genuinely stress index
/// interaction the way the paper's ILP-vs-greedy claim requires.
pub fn generate_queries(n: usize, seed: u64) -> Vec<Select> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| generate_one(&mut rng)).collect()
}

fn generate_one(rng: &mut StdRng) -> Select {
    let band = ["u", "g", "r", "i", "z"][rng.gen::<u32>() as usize % 5];
    let ty = [3, 6][rng.gen::<u32>() as usize % 2];
    let ra0 = rng.gen::<f64>() * 350.0;
    let ra1 = ra0 + rng.gen::<f64>() * 5.0 + 0.05;
    let mag0 = 14.0 + rng.gen::<f64>() * 10.0;
    let mag1 = mag0 + rng.gen::<f64>() * 1.5 + 0.05;
    let z0 = rng.gen::<f64>() * 0.8;
    let z1 = z0 + 0.05;
    let run = 94 + rng.gen::<u32>() % 7906;
    let objid = rng.gen::<u64>() % 9_000_000;

    let sql = match rng.gen::<u32>() % 8 {
        0 => format!(
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN {ra0:.3} AND {ra1:.3}"
        ),
        1 => format!(
            "SELECT objid, modelmag_{band} FROM photoobj \
             WHERE type = {ty} AND modelmag_{band} BETWEEN {mag0:.2} AND {mag1:.2}"
        ),
        2 => format!(
            "SELECT objid, psfmag_{band} FROM photoobj WHERE psfmag_{band} < {mag0:.2}"
        ),
        3 => format!("SELECT ra, dec FROM photoobj WHERE objid = {objid}"),
        4 => format!(
            "SELECT p.objid, s.z FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.z BETWEEN {z0:.3} AND {z1:.3}"
        ),
        5 => format!(
            "SELECT type, COUNT(*) FROM photoobj WHERE run = {run} GROUP BY type"
        ),
        6 => format!(
            "SELECT n.objid, n.distance FROM neighbors n \
             WHERE n.distance < {d:.5} AND n.type = {ty}",
            d = rng.gen::<f64>() * 0.003 + 0.0001
        ),
        _ => format!(
            "SELECT p.objid, p.petrorad_{band} FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.specclass = 2 \
             AND p.petrorad_{band} > {r:.2}",
            r = rng.gen::<f64>() * 20.0
        ),
    };
    parse_select(&sql).expect("generated SQL parses")
}

/// Expand the SDSS templates into a parameterized `n`-statement stream
/// (every statement weighs 1.0) — the E10 input. Statements are
/// literal-varied instances of a bounded template set, so clustering
/// collapses the stream to O(100) templates however large `n` grows.
pub fn generate_sdss_stream(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    Workload {
        entries: (0..n)
            .map(|_| WorkloadEntry { query: generate_sdss_stream_one(&mut rng), weight: 1.0 })
            .collect(),
    }
}

/// One stream statement: two thirds come from the 8 classic E4 template
/// shapes, the rest from 4 extra shapes (IN-lists of varying arity,
/// spectro cuts, field quality scans, photo-z ranges) so the surviving
/// template count exercises more than the E4 set.
fn generate_sdss_stream_one(rng: &mut StdRng) -> Select {
    if rng.gen::<u32>() % 3 < 2 {
        return generate_one(rng);
    }
    let runs: Vec<String> =
        (0..(2 + rng.gen::<u32>() % 5)).map(|_| (94 + rng.gen::<u32>() % 7906).to_string()).collect();
    let z0 = rng.gen::<f64>() * 0.8;
    let q = rng.gen::<u32>() % 3;
    let sql = match rng.gen::<u32>() % 4 {
        0 => format!("SELECT objid, field FROM photoobj WHERE run IN ({})", runs.join(", ")),
        1 => format!(
            "SELECT specobjid, zconf FROM specobj WHERE specclass = {sc} AND zconf > {zc:.3}",
            sc = rng.gen::<u32>() % 7,
            zc = 0.35 + rng.gen::<f64>() * 0.6
        ),
        2 => format!(
            "SELECT fieldid, run FROM field WHERE psfwidth_r < {w:.3} AND quality = {q}",
            w = 0.8 + rng.gen::<f64>() * 1.6
        ),
        _ => format!(
            "SELECT objid, z FROM photoz WHERE z BETWEEN {z0:.3} AND {z1:.3} AND quality = {q}",
            z1 = z0 + 0.05
        ),
    };
    parse_select(&sql).expect("generated SQL parses")
}

/// Retail counterpart of [`generate_sdss_stream`]: parameterized
/// instances of the 8 core retail shapes, for cross-schema compression
/// tests.
pub fn generate_retail_stream(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    Workload {
        entries: (0..n)
            .map(|_| WorkloadEntry { query: generate_retail_one(&mut rng), weight: 1.0 })
            .collect(),
    }
}

fn generate_retail_one(rng: &mut StdRng) -> Select {
    let d0 = 8_000 + rng.gen::<u32>() % 2_400;
    let d1 = d0 + 5 + rng.gen::<u32>() % 120;
    let sql = match rng.gen::<u32>() % 8 {
        0 => format!(
            "SELECT orderkey, totalprice FROM orders WHERE orderkey = {k}",
            k = rng.gen::<u64>() % 1_000_000
        ),
        1 => format!("SELECT orderkey FROM orders WHERE orderdate BETWEEN {d0} AND {d1}"),
        2 => format!(
            "SELECT priority, COUNT(*) FROM orders WHERE orderdate BETWEEN {d0} AND {d1} GROUP BY priority"
        ),
        3 => format!(
            "SELECT l.orderkey, l.extendedprice FROM lineitem l WHERE l.shipdate BETWEEN {d0} AND {d1}"
        ),
        4 => format!(
            "SELECT COUNT(*), SUM(extendedprice) FROM lineitem \
             WHERE shipdate BETWEEN {d0} AND {d1} AND discount BETWEEN {lo:.2} AND {hi:.2}",
            lo = (rng.gen::<u32>() % 5) as f64 / 100.0,
            hi = (5 + rng.gen::<u32>() % 6) as f64 / 100.0
        ),
        5 => format!(
            "SELECT o.orderkey, o.totalprice FROM orders o, customer c \
             WHERE o.custkey = c.custkey AND c.segment = {s} AND o.totalprice > {p:.1}",
            s = rng.gen::<u32>() % 5,
            p = 100_000.0 + rng.gen::<f64>() * 300_000.0
        ),
        6 => format!(
            "SELECT l.orderkey, p.name FROM lineitem l, product p \
             WHERE l.prodkey = p.prodkey AND p.category = {c} AND l.quantity > {q}",
            c = rng.gen::<u32>() % 50,
            q = 30 + rng.gen::<u32>() % 20
        ),
        _ => format!(
            "SELECT c.custkey, c.acctbal FROM customer c WHERE c.acctbal > {b:.1}",
            b = rng.gen::<f64>() * 9_000.0
        ),
    };
    parse_select(&sql).expect("generated SQL parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdss::{sdss_catalog, SdssScale};

    #[test]
    fn generates_requested_count() {
        assert_eq!(generate_queries(25, 1).len(), 25);
        assert!(generate_queries(0, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_queries(10, 99);
        let b = generate_queries(10, 99);
        assert_eq!(a, b);
        let c = generate_queries(10, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_queries_bind() {
        let (c, _) = sdss_catalog(SdssScale::laptop(100));
        for (i, q) in generate_queries(60, 7).iter().enumerate() {
            parinda_optimizer::bind(q, &c).unwrap_or_else(|e| panic!("query {i}: {e}"));
        }
    }

    #[test]
    fn sdss_stream_is_deterministic_and_binds() {
        let a = generate_sdss_stream(200, 42);
        assert_eq!(a.len(), 200);
        assert_eq!(a, generate_sdss_stream(200, 42));
        let (c, _) = sdss_catalog(SdssScale::laptop(100));
        for (i, q) in a.queries().iter().enumerate() {
            parinda_optimizer::bind(q, &c).unwrap_or_else(|e| panic!("stream query {i}: {e}"));
        }
    }

    #[test]
    fn retail_stream_is_deterministic_and_binds() {
        let a = generate_retail_stream(200, 42);
        assert_eq!(a.len(), 200);
        assert_eq!(a, generate_retail_stream(200, 42));
        let (c, _) = crate::retail::retail_catalog(1_000);
        for (i, q) in a.queries().iter().enumerate() {
            parinda_optimizer::bind(q, &c).unwrap_or_else(|e| panic!("stream query {i}: {e}"));
        }
    }

    /// The whole point of the stream generators: statement count grows,
    /// template count stays bounded.
    #[test]
    fn streams_collapse_to_bounded_template_sets() {
        let sdss = crate::compress::compress_workload(&generate_sdss_stream(2_000, 1));
        assert!(sdss.len() <= 128, "sdss stream has {} templates", sdss.len());
        assert!(sdss.len() >= 8, "sdss stream suspiciously uniform: {}", sdss.len());
        let retail = crate::compress::compress_workload(&generate_retail_stream(2_000, 1));
        assert!(retail.len() <= 64, "retail stream has {} templates", retail.len());
        assert!(retail.len() >= 6);
    }
}
