//! Synthetic SDSS-like schema and the 30-query prototypical workload.
//!
//! The paper demonstrates on a 5 % sample of SDSS DR4 (~150 GB) with 30
//! prototypical queries. The DR4 archive is not redistributable here, so
//! this module builds the closest synthetic equivalent: the same table
//! shapes (PhotoObj is famously wide — hundreds of columns — which is
//! exactly why vertical partitioning pays off), the same magnitude of row
//! counts at "paper scale" (statistics only), and a laptop scale for
//! actually materializing and executing data.

use parinda_catalog::{Catalog, Column, SqlType, TableId};

/// SDSS photometric bands.
pub const BANDS: [&str; 5] = ["u", "g", "r", "i", "z"];

/// Per-band photometric quantities of PhotoObj (each exists for all five
/// bands, mirroring the real schema's width).
pub const BAND_QUANTITIES: [&str; 12] = [
    "psfmag",
    "psfmagerr",
    "fibermag",
    "petromag",
    "petromagerr",
    "modelmag",
    "modelmagerr",
    "petrorad",
    "petror50",
    "extinction",
    "devrad",
    "exprad",
];

/// Row counts for the generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdssScale {
    pub photoobj_rows: u64,
    pub specobj_rows: u64,
    pub neighbors_rows: u64,
    pub field_rows: u64,
    pub photoz_rows: u64,
}

impl SdssScale {
    /// Paper scale: a 5 % DR4 sample (~150 GB of PhotoObj-dominated data).
    /// Used statistics-only — no rows are materialized at this scale.
    pub fn paper() -> Self {
        SdssScale {
            photoobj_rows: 9_000_000,
            specobj_rows: 45_000,
            neighbors_rows: 18_000_000,
            field_rows: 50_000,
            photoz_rows: 9_000_000,
        }
    }

    /// Laptop scale for materialized execution; `n` PhotoObj rows.
    pub fn laptop(n: u64) -> Self {
        SdssScale {
            photoobj_rows: n,
            specobj_rows: (n / 20).max(10),
            neighbors_rows: n * 2,
            field_rows: (n / 100).max(10),
            photoz_rows: n,
        }
    }
}

/// The five tables of the synthetic SDSS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdssTables {
    pub photoobj: TableId,
    pub specobj: TableId,
    pub neighbors: TableId,
    pub field: TableId,
    pub photoz: TableId,
}

/// Build the SDSS-like catalog at the given scale. Statistics are *not*
/// attached — use `datagen::synthesize_stats` (paper scale) or
/// `datagen::generate_and_load` + ANALYZE (laptop scale).
pub fn sdss_catalog(scale: SdssScale) -> (Catalog, SdssTables) {
    let mut c = Catalog::new();

    // PhotoObj: identity + astrometry + per-band photometry + flags.
    let mut photo_cols = vec![
        Column::new("objid", SqlType::Int8).not_null(),
        Column::new("skyversion", SqlType::Int2).not_null(),
        Column::new("run", SqlType::Int4).not_null(),
        Column::new("rerun", SqlType::Int2).not_null(),
        Column::new("camcol", SqlType::Int2).not_null(),
        Column::new("field", SqlType::Int4).not_null(),
        Column::new("obj", SqlType::Int4).not_null(),
        Column::new("mode", SqlType::Int2).not_null(),
        Column::new("nchild", SqlType::Int2).not_null(),
        Column::new("type", SqlType::Int2).not_null(),
        Column::new("probpsf", SqlType::Float4).not_null(),
        Column::new("insidemask", SqlType::Int2).not_null(),
        Column::new("flags", SqlType::Int8).not_null(),
        Column::new("status", SqlType::Int4).not_null(),
        Column::new("ra", SqlType::Float8).not_null(),
        Column::new("dec", SqlType::Float8).not_null(),
        Column::new("raerr", SqlType::Float8).not_null(),
        Column::new("decerr", SqlType::Float8).not_null(),
        Column::new("b", SqlType::Float8).not_null(),
        Column::new("l", SqlType::Float8).not_null(),
        Column::new("cx", SqlType::Float8).not_null(),
        Column::new("cy", SqlType::Float8).not_null(),
        Column::new("cz", SqlType::Float8).not_null(),
        Column::new("rowc", SqlType::Float4).not_null(),
        Column::new("colc", SqlType::Float4).not_null(),
        Column::new("rowv", SqlType::Float4).not_null(),
        Column::new("colv", SqlType::Float4).not_null(),
        Column::new("htmid", SqlType::Int8).not_null(),
        Column::new("fieldid", SqlType::Int8).not_null(),
        Column::new("specobjid", SqlType::Int8),
    ];
    for q in BAND_QUANTITIES {
        for b in BANDS {
            photo_cols.push(Column::new(format!("{q}_{b}"), SqlType::Float4).not_null());
        }
    }
    let photoobj = c.create_table("photoobj", photo_cols, scale.photoobj_rows);
    c.table_mut(photoobj).unwrap().primary_key = vec![0];

    // SpecObj.
    let mut spec_cols = vec![
        Column::new("specobjid", SqlType::Int8).not_null(),
        Column::new("bestobjid", SqlType::Int8).not_null(),
        Column::new("plate", SqlType::Int4).not_null(),
        Column::new("mjd", SqlType::Int4).not_null(),
        Column::new("fiberid", SqlType::Int4).not_null(),
        Column::new("z", SqlType::Float8).not_null(),
        Column::new("zerr", SqlType::Float8).not_null(),
        Column::new("zconf", SqlType::Float8).not_null(),
        Column::new("zstatus", SqlType::Int2).not_null(),
        Column::new("zwarning", SqlType::Int4).not_null(),
        Column::new("specclass", SqlType::Int2).not_null(),
        Column::new("primtarget", SqlType::Int8).not_null(),
        Column::new("sectarget", SqlType::Int8).not_null(),
        Column::new("eclass", SqlType::Float8).not_null(),
        Column::new("veldisp", SqlType::Float8).not_null(),
        Column::new("veldisperr", SqlType::Float8).not_null(),
    ];
    for i in 0..5 {
        spec_cols.push(Column::new(format!("ecoeff_{i}"), SqlType::Float8).not_null());
    }
    for i in 0..3 {
        spec_cols.push(Column::new(format!("sn_{i}"), SqlType::Float8).not_null());
        spec_cols.push(Column::new(format!("mag_{i}"), SqlType::Float8).not_null());
    }
    let specobj = c.create_table("specobj", spec_cols, scale.specobj_rows);
    c.table_mut(specobj).unwrap().primary_key = vec![0];

    // Neighbors (pairs of nearby objects).
    let neighbors = c.create_table(
        "neighbors",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("neighborobjid", SqlType::Int8).not_null(),
            Column::new("distance", SqlType::Float8).not_null(),
            Column::new("type", SqlType::Int2).not_null(),
            Column::new("neighbortype", SqlType::Int2).not_null(),
            Column::new("mode", SqlType::Int2).not_null(),
            Column::new("neighbormode", SqlType::Int2).not_null(),
        ],
        scale.neighbors_rows,
    );

    // Field (imaging-run metadata).
    let field = c.create_table(
        "field",
        vec![
            Column::new("fieldid", SqlType::Int8).not_null(),
            Column::new("run", SqlType::Int4).not_null(),
            Column::new("rerun", SqlType::Int2).not_null(),
            Column::new("camcol", SqlType::Int2).not_null(),
            Column::new("field", SqlType::Int4).not_null(),
            Column::new("ra", SqlType::Float8).not_null(),
            Column::new("dec", SqlType::Float8).not_null(),
            Column::new("psfwidth_r", SqlType::Float8).not_null(),
            Column::new("sky_r", SqlType::Float8).not_null(),
            Column::new("quality", SqlType::Int2).not_null(),
            Column::new("mjd", SqlType::Int4).not_null(),
        ],
        scale.field_rows,
    );
    c.table_mut(field).unwrap().primary_key = vec![0];

    // Photoz (photometric redshift estimates).
    let photoz = c.create_table(
        "photoz",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("z", SqlType::Float8).not_null(),
            Column::new("zerr", SqlType::Float8).not_null(),
            Column::new("t", SqlType::Float8).not_null(),
            Column::new("terr", SqlType::Float8).not_null(),
            Column::new("quality", SqlType::Int2).not_null(),
        ],
        scale.photoz_rows,
    );
    c.table_mut(photoz).unwrap().primary_key = vec![0];

    (c, SdssTables { photoobj, specobj, neighbors, field, photoz })
}

/// The 30 prototypical queries, modeled on published SDSS query templates:
/// cone searches, color cuts, photo–spec joins, neighbor searches,
/// field-quality scans, and aggregate summaries.
pub fn sdss_workload_sql() -> Vec<&'static str> {
    vec![
        // -- selections on PhotoObj (cone searches, cuts) --
        "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180.0 AND 181.0 AND dec BETWEEN 0.0 AND 1.0",
        "SELECT objid, modelmag_r FROM photoobj WHERE modelmag_r < 16.0",
        "SELECT objid, ra, dec, modelmag_g, modelmag_r FROM photoobj \
         WHERE type = 3 AND modelmag_r BETWEEN 17.0 AND 17.5",
        "SELECT objid FROM photoobj WHERE htmid BETWEEN 14000000000 AND 14000100000",
        "SELECT objid, psfmag_u, psfmag_g FROM photoobj WHERE psfmag_u - psfmag_g < 0.4 AND type = 6",
        "SELECT objid, petrorad_r FROM photoobj WHERE petrorad_r > 18.0 AND type = 3",
        "SELECT objid FROM photoobj WHERE run = 752 AND camcol = 3 AND field BETWEEN 100 AND 120",
        "SELECT objid, ra, dec FROM photoobj WHERE status = 12 AND mode = 1",
        "SELECT objid, extinction_r FROM photoobj WHERE extinction_r > 0.6",
        "SELECT objid, modelmag_u, modelmag_g, modelmag_r, modelmag_i, modelmag_z FROM photoobj \
         WHERE objid = 588015509806252132",
        // -- aggregates over PhotoObj --
        "SELECT type, COUNT(*) FROM photoobj GROUP BY type",
        "SELECT run, camcol, COUNT(*), AVG(psfmag_r) FROM photoobj \
         WHERE type = 6 GROUP BY run, camcol",
        "SELECT COUNT(*) FROM photoobj WHERE modelmag_r BETWEEN 20.0 AND 21.0 AND type = 3",
        "SELECT type, MIN(modelmag_r), MAX(modelmag_r) FROM photoobj GROUP BY type",
        "SELECT skyversion, mode, COUNT(*) FROM photoobj GROUP BY skyversion, mode",
        // -- photo–spec joins --
        "SELECT p.objid, s.z FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.z BETWEEN 0.08 AND 0.12",
        "SELECT p.objid, p.modelmag_r, s.z, s.zerr FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.specclass = 2 AND p.type = 3",
        "SELECT p.ra, p.dec, s.z FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.zconf > 0.95 AND s.zwarning = 0",
        "SELECT s.specclass, COUNT(*), AVG(s.z) FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND p.modelmag_r < 19.0 GROUP BY s.specclass",
        "SELECT p.objid, s.veldisp FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.veldisp > 200.0 AND p.type = 3",
        // -- spec-only --
        "SELECT specobjid, z FROM specobj WHERE specclass = 3 AND z > 2.5",
        "SELECT plate, mjd, COUNT(*) FROM specobj WHERE zwarning = 0 GROUP BY plate, mjd",
        "SELECT specobjid, z, zerr FROM specobj WHERE z BETWEEN 0.295 AND 0.305 ORDER BY z",
        // -- neighbors (proximity searches) --
        "SELECT n.objid, n.neighborobjid, n.distance FROM neighbors n \
         WHERE n.distance < 0.00139 AND n.type = 3 AND n.neighbortype = 3",
        "SELECT p.objid, n.neighborobjid FROM photoobj p, neighbors n \
         WHERE p.objid = n.objid AND p.modelmag_r < 17.0 AND n.distance < 0.0008",
        "SELECT n.type, n.neighbortype, COUNT(*) FROM neighbors n \
         WHERE n.distance < 0.002 GROUP BY n.type, n.neighbortype",
        // -- field quality --
        "SELECT fieldid, psfwidth_r FROM field WHERE quality = 1 AND psfwidth_r > 1.8",
        "SELECT f.run, COUNT(*) FROM field f, photoobj p \
         WHERE p.fieldid = f.fieldid AND f.sky_r > 21.0 GROUP BY f.run",
        // -- photoz --
        "SELECT objid, z FROM photoz WHERE z BETWEEN 0.4 AND 0.42 AND quality = 5",
        "SELECT p.objid, pz.z, s.z FROM photoobj p, photoz pz, specobj s \
         WHERE p.objid = pz.objid AND p.objid = s.bestobjid AND pz.quality = 5",
    ]
}

/// Parse the 30-query workload.
pub fn sdss_workload() -> Vec<parinda_sql::Select> {
    sdss_workload_sql()
        .iter()
        .map(|s| parinda_sql::parse_select(s).expect("workload statements parse"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::MetadataProvider;

    #[test]
    fn photoobj_is_wide() {
        let (c, t) = sdss_catalog(SdssScale::laptop(1000));
        let photo = c.table(t.photoobj).unwrap();
        assert!(photo.columns.len() >= 90, "got {}", photo.columns.len());
        assert_eq!(photo.primary_key, vec![0]);
    }

    #[test]
    fn all_tables_present() {
        let (c, _) = sdss_catalog(SdssScale::laptop(1000));
        for t in ["photoobj", "specobj", "neighbors", "field", "photoz"] {
            assert!(c.table_by_name(t).is_some(), "{t}");
        }
    }

    #[test]
    fn paper_scale_is_150_gb_ballpark() {
        let (c, _) = sdss_catalog(SdssScale::paper());
        let bytes = c.total_size_bytes();
        let gb = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        // The dominant PhotoObj rows are ~600 B wide here vs a few KB in
        // real DR4, so expect the same order of magnitude.
        assert!(gb > 5.0 && gb < 500.0, "total {gb:.1} GB");
    }

    #[test]
    fn exactly_thirty_queries() {
        assert_eq!(sdss_workload_sql().len(), 30);
    }

    #[test]
    fn workload_parses() {
        assert_eq!(sdss_workload().len(), 30);
    }

    #[test]
    fn workload_binds_against_catalog() {
        let (c, _) = sdss_catalog(SdssScale::laptop(1000));
        for (i, sel) in sdss_workload().iter().enumerate() {
            parinda_optimizer::bind(sel, &c)
                .unwrap_or_else(|e| panic!("query {i} fails to bind: {e}"));
        }
    }

    #[test]
    fn scales_are_consistent() {
        let s = SdssScale::laptop(10_000);
        assert_eq!(s.photoobj_rows, 10_000);
        assert!(s.specobj_rows > 0 && s.specobj_rows < s.photoobj_rows);
        let p = SdssScale::paper();
        assert!(p.photoobj_rows > 1_000_000);
    }
}
