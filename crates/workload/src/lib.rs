//! # parinda-workload
//!
//! The demonstration workload substrate: a synthetic SDSS DR4-like schema
//! (wide PhotoObj, SpecObj, Neighbors, Field, Photoz), the 30 prototypical
//! queries the demo uses, deterministic data/statistics generators at both
//! paper scale (statistics only) and laptop scale (materialized rows), a
//! workload-file parser with per-statement weights, a seeded random
//! query generator for scaling sweeps, and fingerprint-keyed workload
//! compression that clusters equivalent statements into weighted
//! templates.

#![allow(missing_docs)]

pub mod compress;
pub mod datagen;
pub mod generator;
pub mod parser;
pub mod retail;
pub mod sdss;

pub use compress::{
    compress_workload, compress_workload_traced, fingerprint, CompressedWorkload, QueryTemplate,
};
pub use datagen::{generate_and_load, synthesize_stats};
pub use generator::{generate_queries, generate_retail_stream, generate_sdss_stream};
pub use parser::{parse_workload, Workload, WorkloadEntry};
pub use retail::{retail_catalog, retail_load, retail_workload, retail_workload_sql, RetailTables};
pub use sdss::{sdss_catalog, sdss_workload, sdss_workload_sql, SdssScale, SdssTables};
