//! The what-if table component: vertical-partition simulation (paper §3.2).
//!
//! PostgreSQL 8.3 has no native vertical partitions, so PARINDA simulates a
//! partition as a *new table* holding the fragment's columns plus the
//! parent's primary key ("these tables contain the primary keys of the
//! original table, so that the full table can be reconstructed"). The
//! statistics of the original table are copied over, and the page count is
//! approximated with the same layout formula as Equation 1.

use parinda_catalog::{MetadataProvider, Table, TableId};

use crate::index::WhatIfError;
use crate::overlay::HypotheticalCatalog;

/// Definition of a hypothetical vertical partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WhatIfPartition {
    /// Name of the simulated partition table.
    pub name: String,
    /// The table being partitioned.
    pub table: String,
    /// Columns stored in this fragment (primary-key columns are added
    /// automatically if missing).
    pub columns: Vec<String>,
}

impl WhatIfPartition {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, table: impl Into<String>, columns: &[&str]) -> Self {
        WhatIfPartition {
            name: name.into(),
            table: table.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// Simulate a vertical partition: create the hypothetical table with the
/// fragment's columns (+ primary key), copy the parent's column statistics,
/// and size it from the layout. Returns the overlay id of the new table and
/// the mapping `fragment column index -> parent column index`.
pub fn simulate_partition(
    overlay: &mut HypotheticalCatalog<'_>,
    def: &WhatIfPartition,
) -> Result<(TableId, Vec<usize>), WhatIfError> {
    let parent = overlay
        .table_by_name(&def.table)
        .ok_or_else(|| WhatIfError::UnknownTable(def.table.clone()))?
        .clone();

    // Resolve fragment columns; start with the PK so reconstruction joins
    // stay possible, then the requested columns in order.
    let mut parent_cols: Vec<usize> = Vec::new();
    for pk in &parent.primary_key {
        if !parent_cols.contains(pk) {
            parent_cols.push(*pk);
        }
    }
    for c in &def.columns {
        let i = parent
            .column_index(c)
            .ok_or_else(|| WhatIfError::UnknownColumn {
                table: def.table.clone(),
                column: c.clone(),
            })?;
        if !parent_cols.contains(&i) {
            parent_cols.push(i);
        }
    }
    if parent_cols.is_empty() {
        return Err(WhatIfError::EmptyColumnList);
    }

    let columns = parent_cols
        .iter()
        .map(|&i| parent.columns[i].clone())
        .collect();

    let mut frag = Table::new(TableId(0), def.name.clone(), columns, parent.row_count);
    // PK positions in fragment coordinates: the PK columns were pushed
    // first, preserving order.
    frag.primary_key = (0..parent.primary_key.len()).collect();
    frag.partition_of = Some(parent.id);

    let id = overlay.add_hypo_table(frag);

    // Copy the parent's statistics for each fragment column: the optimizer
    // "computes histogram statistics about the columns from the statistics
    // of the base table".
    for (frag_idx, &parent_idx) in parent_cols.iter().enumerate() {
        if let Some(s) = overlay.base().column_stats(parent.id, parent_idx).cloned() {
            overlay.set_hypo_stats(id, frag_idx, s);
        }
    }

    Ok((id, parent_cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{analyze_column, Catalog, Column, Datum, SqlType};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        let t = c
            .create_table(
                "photoobj",
                vec![
                    Column::new("objid", SqlType::Int8).not_null(),
                    Column::new("ra", SqlType::Float8).not_null(),
                    Column::new("dec", SqlType::Float8).not_null(),
                    Column::new("rmag", SqlType::Float8).not_null(),
                    Column::new("gmag", SqlType::Float8).not_null(),
                ],
                1_000_000,
            );
        // make objid the PK
        let tbl = c.table_mut(t).unwrap();
        tbl.primary_key = vec![0];
        let vals: Vec<Datum> = (0..1000).map(Datum::Int).collect();
        c.set_column_stats(t, 1, analyze_column(SqlType::Float8, &vals));
        c
    }

    #[test]
    fn partition_includes_pk_and_columns() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let (id, mapping) =
            simulate_partition(&mut o, &WhatIfPartition::new("p_astro", "photoobj", &["ra", "dec"]))
                .unwrap();
        let frag = o.table(id).unwrap();
        assert_eq!(frag.columns.len(), 3); // objid + ra + dec
        assert_eq!(frag.columns[0].name, "objid");
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(frag.row_count, 1_000_000);
        assert_eq!(frag.partition_of, Some(c.table_by_name("photoobj").unwrap().id));
    }

    #[test]
    fn fragment_is_smaller_than_parent() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let (id, _) =
            simulate_partition(&mut o, &WhatIfPartition::new("p", "photoobj", &["ra"])).unwrap();
        let frag_pages = o.table(id).unwrap().pages;
        let parent_pages = c.table_by_name("photoobj").unwrap().pages;
        assert!(frag_pages < parent_pages, "{frag_pages} !< {parent_pages}");
    }

    #[test]
    fn stats_copied_from_parent() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let (id, _) =
            simulate_partition(&mut o, &WhatIfPartition::new("p", "photoobj", &["ra"])).unwrap();
        // fragment column 1 is ra; parent had stats for it
        assert!(o.column_stats(id, 1).is_some());
    }

    #[test]
    fn duplicate_and_pk_columns_deduplicated() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let (id, _) = simulate_partition(
            &mut o,
            &WhatIfPartition::new("p", "photoobj", &["objid", "ra", "ra"]),
        )
        .unwrap();
        assert_eq!(o.table(id).unwrap().columns.len(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        assert!(simulate_partition(&mut o, &WhatIfPartition::new("p", "photoobj", &["zz"]))
            .is_err());
    }

    #[test]
    fn queries_can_plan_against_fragment() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        simulate_partition(&mut o, &WhatIfPartition::new("photoobj_astro", "photoobj", &["ra", "dec"]))
            .unwrap();
        let sel = parinda_sql::parse_select(
            "SELECT ra, dec FROM photoobj_astro WHERE ra BETWEEN 10.0 AND 20.0",
        )
        .unwrap();
        let (_, plan) = parinda_optimizer::optimize(&sel, &o).unwrap();
        assert!(plan.cost.total > 0.0);
        // scanning the fragment costs less than scanning the parent
        let sel2 = parinda_sql::parse_select(
            "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10.0 AND 20.0",
        )
        .unwrap();
        let (_, plan2) = parinda_optimizer::optimize(&sel2, &o).unwrap();
        assert!(plan.cost.total < plan2.cost.total);
    }
}
