//! The hypothetical catalog overlay — this substrate's planner hook.
//!
//! PostgreSQL lets PARINDA replace planner hook functions so that "newly
//! inserted data regarding the what-if indexes and what-if tables" appears
//! in the list of physical design features (paper §3.1). Here the planner
//! reads metadata through [`MetadataProvider`], so the overlay simply
//! implements that trait: base catalog objects shine through, hypothetical
//! indexes/tables are added, and real indexes can be masked to simulate
//! dropping them.

use std::collections::{HashMap, HashSet};

use parinda_catalog::{
    Catalog, ColumnStats, Index, IndexId, MetadataProvider, Table, TableId,
};

/// A catalog view with simulated physical-design changes layered on top.
#[derive(Debug, Clone)]
pub struct HypotheticalCatalog<'a> {
    base: &'a Catalog,
    hypo_tables: Vec<Table>,
    hypo_indexes: Vec<Index>,
    hypo_stats: HashMap<(TableId, usize), ColumnStats>,
    masked_indexes: HashSet<IndexId>,
    by_name: HashMap<String, TableId>,
    next_table: u32,
    next_index: u32,
}

impl<'a> HypotheticalCatalog<'a> {
    /// Start an overlay over `base` with no simulated changes.
    pub fn new(base: &'a Catalog) -> Self {
        HypotheticalCatalog {
            base,
            hypo_tables: Vec::new(),
            hypo_indexes: Vec::new(),
            hypo_stats: HashMap::new(),
            masked_indexes: HashSet::new(),
            by_name: HashMap::new(),
            next_table: base.next_table_id().0,
            next_index: base.next_index_id().0,
        }
    }

    /// The base catalog under the overlay.
    pub fn base(&self) -> &Catalog {
        self.base
    }

    /// Add a hypothetical table (used for partition simulation). Returns
    /// its id in the overlay's id space.
    pub fn add_hypo_table(&mut self, mut table: Table) -> TableId {
        let id = TableId(self.next_table);
        self.next_table += 1;
        table.id = id;
        self.by_name.insert(table.name.clone(), id);
        self.hypo_tables.push(table);
        id
    }

    /// Add a hypothetical index. Returns its overlay id.
    pub fn add_hypo_index(&mut self, mut index: Index) -> IndexId {
        let id = IndexId(self.next_index);
        self.next_index += 1;
        index.id = id;
        index.hypothetical = true;
        self.hypo_indexes.push(index);
        id
    }

    /// Inject statistics for a (possibly hypothetical) table column.
    pub fn set_hypo_stats(&mut self, table: TableId, column: usize, stats: ColumnStats) {
        self.hypo_stats.insert((table, column), stats);
    }

    /// Simulate dropping a real index.
    pub fn mask_index(&mut self, id: IndexId) {
        self.masked_indexes.insert(id);
    }

    /// All hypothetical indexes added so far.
    pub fn hypo_indexes(&self) -> &[Index] {
        &self.hypo_indexes
    }

    /// All hypothetical tables added so far.
    pub fn hypo_tables(&self) -> &[Table] {
        &self.hypo_tables
    }

    /// Total extra bytes the simulated features would occupy on disk —
    /// what the advisor's space constraint is checked against.
    pub fn hypothetical_bytes(&self) -> u64 {
        let idx: u64 = self.hypo_indexes.iter().map(|i| i.size_bytes()).sum();
        let tbl: u64 = self
            .hypo_tables
            .iter()
            .map(|t| t.pages * parinda_catalog::layout::PAGE_SIZE as u64)
            .sum();
        idx + tbl
    }

    /// Look up a hypothetical index by id.
    pub fn hypo_index(&self, id: IndexId) -> Option<&Index> {
        self.hypo_indexes.iter().find(|i| i.id == id)
    }
}

impl MetadataProvider for HypotheticalCatalog<'_> {
    fn table_by_name(&self, name: &str) -> Option<&Table> {
        let lower = name.to_ascii_lowercase();
        if let Some(id) = self.by_name.get(&lower) {
            return self.hypo_tables.iter().find(|t| t.id == *id);
        }
        self.base.table_by_name(&lower)
    }

    fn table(&self, id: TableId) -> Option<&Table> {
        self.hypo_tables
            .iter()
            .find(|t| t.id == id)
            .or_else(|| self.base.table(id))
    }

    fn indexes_on(&self, table: TableId) -> Vec<&Index> {
        let mut out: Vec<&Index> = self
            .base
            .indexes_on(table)
            .into_iter()
            .filter(|i| !self.masked_indexes.contains(&i.id))
            .collect();
        out.extend(self.hypo_indexes.iter().filter(|i| i.table == table));
        out
    }

    fn column_stats(&self, table: TableId, column_idx: usize) -> Option<&ColumnStats> {
        self.hypo_stats
            .get(&(table, column_idx))
            .or_else(|| self.base.column_stats(table, column_idx))
    }

    fn all_tables(&self) -> Vec<&Table> {
        let mut out = self.base.all_tables();
        out.extend(self.hypo_tables.iter());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Column, SqlType};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
            ],
            100_000,
        );
        c.create_index("i_real", "photoobj", &["objid"]).unwrap();
        c
    }

    #[test]
    fn base_objects_visible_through_overlay() {
        let c = base();
        let o = HypotheticalCatalog::new(&c);
        assert!(o.table_by_name("photoobj").is_some());
        let t = o.table_by_name("photoobj").unwrap().id;
        assert_eq!(o.indexes_on(t).len(), 1);
    }

    #[test]
    fn hypo_index_appears_without_mutating_base() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let t = c.table_by_name("photoobj").unwrap();
        let idx = Index::new(IndexId(0), "i_hypo_ra", t, &["ra"]).unwrap();
        let id = o.add_hypo_index(idx);
        assert_eq!(o.indexes_on(t.id).len(), 2);
        assert!(o.hypo_index(id).unwrap().hypothetical);
        // base unchanged
        assert_eq!(c.indexes_on(t.id).len(), 1);
    }

    #[test]
    fn overlay_ids_do_not_collide_with_base() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let t = c.table_by_name("photoobj").unwrap();
        let idx = Index::new(IndexId(0), "h", t, &["ra"]).unwrap();
        let id = o.add_hypo_index(idx);
        assert!(c.index(id).is_none(), "hypo id must not be a real id");
    }

    #[test]
    fn mask_simulates_drop() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let t = c.table_by_name("photoobj").unwrap().id;
        let real = c.index_by_name("i_real").unwrap().id;
        o.mask_index(real);
        assert!(o.indexes_on(t).is_empty());
    }

    #[test]
    fn hypo_table_lookup_by_name() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let t = Table::new(
            TableId(0),
            "photoobj_p0",
            vec![Column::new("objid", SqlType::Int8).not_null()],
            100_000,
        );
        let id = o.add_hypo_table(t);
        assert_eq!(o.table_by_name("photoobj_p0").unwrap().id, id);
        assert!(c.table_by_name("photoobj_p0").is_none());
        assert_eq!(o.all_tables().len(), 2);
    }

    #[test]
    fn hypo_stats_shadow_base_stats() {
        let mut c = base();
        let t = c.table_by_name("photoobj").unwrap().id;
        c.set_column_stats(t, 0, ColumnStats::unknown(8.0));
        let mut o = HypotheticalCatalog::new(&c);
        let mut s = ColumnStats::unknown(8.0);
        s.null_frac = 0.5;
        o.set_hypo_stats(t, 0, s);
        assert_eq!(o.column_stats(t, 0).unwrap().null_frac, 0.5);
        assert_eq!(c.column_stats(t, 0).unwrap().null_frac, 0.0);
    }

    #[test]
    fn hypothetical_bytes_counts_features() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        assert_eq!(o.hypothetical_bytes(), 0);
        let t = c.table_by_name("photoobj").unwrap();
        let idx = Index::new(IndexId(0), "h", t, &["ra"]).unwrap();
        o.add_hypo_index(idx);
        assert!(o.hypothetical_bytes() > 0);
    }
}
