//! # parinda-whatif
//!
//! The paper's core contribution (§3.2): what-if physical design features.
//! Hypothetical indexes are sized with Equation 1, hypothetical partition
//! tables carry copied statistics, and join-method control produces the
//! flag pairs INUM caches. All of it is layered over the real catalog by
//! [`HypotheticalCatalog`], this substrate's planner hook: the optimizer
//! "cannot differentiate between the real design features and the what-if
//! ones" because it only ever sees statistics.
//!
//! # Example
//!
//! ```
//! use parinda_catalog::{Catalog, Column, SqlType};
//! use parinda_whatif::{simulate_index, HypotheticalCatalog, WhatIfIndex};
//!
//! let mut catalog = Catalog::new();
//! catalog.create_table(
//!     "obs",
//!     vec![Column::new("ra", SqlType::Float8).not_null()],
//!     1_000_000,
//! );
//!
//! let mut overlay = HypotheticalCatalog::new(&catalog);
//! let id = simulate_index(&mut overlay, &WhatIfIndex::new("w_ra", "obs", &["ra"]))?;
//! // sized with Equation 1, never built:
//! assert!(overlay.hypo_index(id).unwrap().pages > 0);
//! # Ok::<(), parinda_whatif::WhatIfError>(())
//! ```

#![allow(missing_docs)]

pub mod index;
pub mod join;
pub mod overlay;
pub mod table;

pub use index::{simulate_index, WhatIfError, WhatIfIndex};
pub use join::JoinScenario;
pub use overlay::HypotheticalCatalog;
pub use table::{simulate_partition, WhatIfPartition};

/// A full hypothetical design: the unit the interactive component
/// evaluates (paper §4, scenario 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Design {
    pub indexes: Vec<WhatIfIndex>,
    pub partitions: Vec<WhatIfPartition>,
    /// Real indexes to simulate *dropping* (by name).
    pub drop_indexes: Vec<String>,
}

impl Design {
    /// An empty design (evaluates to the original physical design).
    pub fn new() -> Self {
        Design::default()
    }

    /// Does the design change nothing (no hypothetical features, no
    /// simulated drops)?
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty() && self.partitions.is_empty() && self.drop_indexes.is_empty()
    }

    /// Builder: add a what-if index.
    pub fn with_index(mut self, idx: WhatIfIndex) -> Self {
        self.indexes.push(idx);
        self
    }

    /// Builder: add a what-if partition.
    pub fn with_partition(mut self, p: WhatIfPartition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Builder: simulate dropping an existing index.
    pub fn with_drop(mut self, index_name: impl Into<String>) -> Self {
        self.drop_indexes.push(index_name.into());
        self
    }

    /// Apply the whole design to a fresh overlay over `base`.
    pub fn apply<'a>(
        &self,
        base: &'a parinda_catalog::Catalog,
    ) -> Result<HypotheticalCatalog<'a>, WhatIfError> {
        let mut overlay = HypotheticalCatalog::new(base);
        for name in &self.drop_indexes {
            let idx = base
                .index_by_name(name)
                .ok_or_else(|| WhatIfError::UnknownIndex(name.clone()))?;
            overlay.mask_index(idx.id);
        }
        for p in &self.partitions {
            simulate_partition(&mut overlay, p)?;
        }
        for i in &self.indexes {
            simulate_index(&mut overlay, i)?;
        }
        Ok(overlay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Catalog, Column, SqlType};

    #[test]
    fn design_applies_all_features() {
        let mut c = Catalog::new();
        let t = c.create_table(
            "obj",
            vec![
                Column::new("id", SqlType::Int8).not_null(),
                Column::new("a", SqlType::Float8).not_null(),
                Column::new("b", SqlType::Float8).not_null(),
            ],
            10_000,
        );
        c.table_mut(t).unwrap().primary_key = vec![0];

        let design = Design::new()
            .with_index(WhatIfIndex::new("w_a", "obj", &["a"]))
            .with_partition(WhatIfPartition::new("obj_p1", "obj", &["b"]));
        let overlay = design.apply(&c).unwrap();
        assert_eq!(overlay.hypo_indexes().len(), 1);
        assert_eq!(overlay.hypo_tables().len(), 1);
        assert!(overlay.hypothetical_bytes() > 0);
    }

    #[test]
    fn bad_design_surfaces_error() {
        let c = Catalog::new();
        let design = Design::new().with_index(WhatIfIndex::new("w", "ghost", &["x"]));
        assert!(design.apply(&c).is_err());
    }

    #[test]
    fn index_on_whatif_partition_composes() {
        use parinda_catalog::MetadataProvider;
        // the interactive scenario lets the DBA stack features: a what-if
        // index *on* a what-if partition must work (partitions are applied
        // before indexes in Design::apply)
        let mut c = Catalog::new();
        let t = c.create_table(
            "obj",
            vec![
                Column::new("id", SqlType::Int8).not_null(),
                Column::new("a", SqlType::Float8).not_null(),
                Column::new("b", SqlType::Float8).not_null(),
            ],
            500_000,
        );
        c.table_mut(t).unwrap().primary_key = vec![0];
        let design = Design::new()
            .with_partition(WhatIfPartition::new("obj_p1", "obj", &["a"]))
            .with_index(WhatIfIndex::new("w_p1_a", "obj_p1", &["a"]));
        let overlay = design.apply(&c).unwrap();
        let frag = overlay.table_by_name("obj_p1").unwrap().id;
        assert_eq!(overlay.indexes_on(frag).len(), 1);
        let idx = &overlay.indexes_on(frag)[0];
        assert!(idx.hypothetical);
        assert_eq!(idx.pages, {
            use parinda_catalog::layout::index_leaf_pages;
            index_leaf_pages(500_000, &[Column::new("a", SqlType::Float8).not_null()])
        });
    }

    #[test]
    fn drop_design_masks_real_index() {
        use parinda_catalog::MetadataProvider;
        let mut c = Catalog::new();
        let t = c.create_table(
            "obj",
            vec![Column::new("id", SqlType::Int8).not_null()],
            1000,
        );
        c.create_index("i_id", "obj", &["id"]).unwrap();
        let overlay = Design::new().with_drop("i_id").apply(&c).unwrap();
        assert!(overlay.indexes_on(t).is_empty());
        assert_eq!(c.indexes_on(t).len(), 1, "base catalog untouched");
    }

    #[test]
    fn dropping_unknown_index_errors() {
        let c = Catalog::new();
        assert!(matches!(
            Design::new().with_drop("ghost").apply(&c),
            Err(WhatIfError::UnknownIndex(_))
        ));
    }
}
