//! The what-if join component (paper §3.2): control over the join methods
//! available to the planner.
//!
//! "INUM caches two plans for each scenario — one with nested-loop enabled
//! and one with nested-loop disabled. We enable and disable the nested-loop
//! join method using the flags offered by the optimizer."

use parinda_optimizer::PlannerFlags;

/// The two planner configurations INUM caches per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinScenario {
    /// Nested-loop joins allowed (PostgreSQL default).
    NestLoopOn,
    /// Nested-loop joins disabled.
    NestLoopOff,
}

impl JoinScenario {
    /// Both scenarios, in the order INUM enumerates them.
    pub const ALL: [JoinScenario; 2] = [JoinScenario::NestLoopOn, JoinScenario::NestLoopOff];

    /// Planner flags realizing this scenario on top of `base` flags.
    pub fn flags(self, base: PlannerFlags) -> PlannerFlags {
        PlannerFlags {
            enable_nestloop: matches!(self, JoinScenario::NestLoopOn),
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_toggle_only_nestloop() {
        let base = PlannerFlags::default();
        let on = JoinScenario::NestLoopOn.flags(base);
        let off = JoinScenario::NestLoopOff.flags(base);
        assert!(on.enable_nestloop);
        assert!(!off.enable_nestloop);
        assert_eq!(on.enable_hashjoin, off.enable_hashjoin);
        assert_eq!(on.enable_seqscan, off.enable_seqscan);
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(JoinScenario::ALL.len(), 2);
        assert_ne!(JoinScenario::ALL[0], JoinScenario::ALL[1]);
    }
}
