//! The what-if index component (paper §3.2).
//!
//! "The component expects the what-if index definitions along with the
//! query on which the indexes are used as input. Then it computes the
//! number of pages for the indexes" with Equation 1:
//!
//! ```text
//! Pages = ceil( (o + Σ_{c ∈ I} (size(c) + align(c))) · R / B )
//! ```
//!
//! with o = 24 (row overhead incl. the heap pointer), B = 8192, `size(c)`
//! the average column size from the statistics, and `align(c)` the
//! alignment padding dictated by the columns before `c`. Only leaf pages
//! are computed; "the internal pages … affect the relative page sizes only
//! on very small indexes". Histogram statistics are *not* recomputed — the
//! optimizer derives them from the base table, so the overlay simply lets
//! base-table statistics shine through.

use parinda_catalog::{Index, IndexId, MetadataProvider};

use crate::overlay::HypotheticalCatalog;

/// Definition of a hypothetical index, by names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WhatIfIndex {
    /// Index name (must not collide with a real index for clarity of
    /// EXPLAIN output; not enforced).
    pub name: String,
    /// Table the index is defined on.
    pub table: String,
    /// Key columns, outermost first.
    pub columns: Vec<String>,
}

impl WhatIfIndex {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        table: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        WhatIfIndex {
            name: name.into(),
            table: table.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// A canonical auto-generated name for advisor-produced candidates.
    pub fn canonical_name(table: &str, columns: &[String]) -> String {
        format!("whatif_{}_{}", table, columns.join("_"))
    }
}

/// Errors adding what-if features.
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIfError {
    UnknownTable(String),
    UnknownColumn { table: String, column: String },
    UnknownIndex(String),
    EmptyColumnList,
}

impl std::fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfError::UnknownTable(t) => write!(f, "what-if feature on unknown table {t}"),
            WhatIfError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            WhatIfError::UnknownIndex(i) => write!(f, "cannot drop unknown index {i}"),
            WhatIfError::EmptyColumnList => write!(f, "what-if index needs at least one column"),
        }
    }
}

impl std::error::Error for WhatIfError {}

/// Simulate `def` in the overlay: size it with Equation 1 and register it
/// so the planner sees it. Returns the hypothetical index id.
pub fn simulate_index(
    overlay: &mut HypotheticalCatalog<'_>,
    def: &WhatIfIndex,
) -> Result<IndexId, WhatIfError> {
    if def.columns.is_empty() {
        return Err(WhatIfError::EmptyColumnList);
    }
    let table = overlay
        .table_by_name(&def.table)
        .ok_or_else(|| WhatIfError::UnknownTable(def.table.clone()))?
        .clone();
    let cols: Vec<&str> = def.columns.iter().map(|s| s.as_str()).collect();
    for c in &cols {
        if table.column_index(c).is_none() {
            return Err(WhatIfError::UnknownColumn {
                table: def.table.clone(),
                column: c.to_string(),
            });
        }
    }
    // Index::new applies Equation 1 (see parinda_catalog::layout).
    let idx = Index::new(IndexId(0), def.name.clone(), &table, &cols)
        .ok_or_else(|| WhatIfError::UnknownColumn {
            table: def.table.clone(),
            column: cols.first().map(|c| c.to_string()).unwrap_or_default(),
        })?
        .hypothetical();
    Ok(overlay.add_hypo_index(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{layout, Catalog, Column, SqlType};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
                Column::new("dec", SqlType::Float8).not_null(),
                Column::new("flag", SqlType::Bool).not_null(),
            ],
            1_000_000,
        );
        c
    }

    #[test]
    fn simulated_index_gets_equation1_pages() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        let id = simulate_index(&mut o, &WhatIfIndex::new("w_ra", "photoobj", &["ra"])).unwrap();
        let idx = o.hypo_index(id).unwrap();
        let cols = vec![Column::new("ra", SqlType::Float8).not_null()];
        assert_eq!(idx.pages, layout::index_leaf_pages(1_000_000, &cols));
        assert!(idx.hypothetical);
    }

    #[test]
    fn alignment_affects_size() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        // (flag, ra): bool then float8 -> 7 bytes padding per entry
        let id1 =
            simulate_index(&mut o, &WhatIfIndex::new("w1", "photoobj", &["flag", "ra"])).unwrap();
        // (ra, flag): no padding
        let id2 =
            simulate_index(&mut o, &WhatIfIndex::new("w2", "photoobj", &["ra", "flag"])).unwrap();
        let p1 = o.hypo_index(id1).unwrap().pages;
        let p2 = o.hypo_index(id2).unwrap().pages;
        assert!(p1 > p2, "padding should cost pages: {p1} vs {p2}");
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = base();
        let mut o = HypotheticalCatalog::new(&c);
        assert!(matches!(
            simulate_index(&mut o, &WhatIfIndex::new("w", "nope", &["ra"])),
            Err(WhatIfError::UnknownTable(_))
        ));
        assert!(matches!(
            simulate_index(&mut o, &WhatIfIndex::new("w", "photoobj", &["nope"])),
            Err(WhatIfError::UnknownColumn { .. })
        ));
        assert!(matches!(
            simulate_index(&mut o, &WhatIfIndex::new("w", "photoobj", &[])),
            Err(WhatIfError::EmptyColumnList)
        ));
    }

    #[test]
    fn canonical_names_are_stable() {
        assert_eq!(
            WhatIfIndex::canonical_name("t", &["a".into(), "b".into()]),
            "whatif_t_a_b"
        );
    }
}
