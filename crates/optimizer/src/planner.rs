//! The cost-based planner: access-path generation per base relation,
//! System-R dynamic-programming join enumeration, and top-level
//! sort/aggregate/limit planning.
//!
//! The what-if layer plugs in underneath via [`MetadataProvider`]: planning
//! against a hypothetical catalog overlay yields the plan (and cost) the
//! query *would* have if the simulated features existed (paper §3.1–3.2).

use std::collections::HashMap;

use parinda_catalog::{ColumnStats, MetadataProvider, Table};
use parinda_sql::BinOp;

use crate::cost::{
    agg_cost, hashjoin_cost, index_scan_cost, materialize_cost, materialize_rescan_cost,
    mergejoin_cost, nestloop_cost, seq_scan_cost, sort_cost, IndexScanInputs,
};
use crate::params::{CostParams, PlannerFlags, DISABLE_COST};
use crate::plan::{Cost, IndexRange, JoinKey, PlanKind, PlanNode, PosKey};
use crate::query::{
    BoundOutput, BoundQuery, Restriction, RestrictionShape, Slot, SortKey,
};
use crate::selectivity::{
    eqjoin_selectivity, restriction_selectivity,
};

/// Planning errors (the bound query referenced something the catalog no
/// longer has — can only happen if the catalog changed after binding).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    MissingTable(usize),
    TooManyRels(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingTable(r) => write!(f, "rel {r} vanished from the catalog"),
            PlanError::TooManyRels(n) => {
                write!(f, "query joins {n} relations; the DP planner supports at most 16")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Plan `query` against `meta` with the given parameters and flags.
pub fn plan_query(
    query: &BoundQuery,
    meta: &dyn MetadataProvider,
    params: &CostParams,
    flags: &PlannerFlags,
) -> Result<PlanNode, PlanError> {
    Planner { query, meta, params, flags }.run()
}

/// A candidate plan with the order its output obeys.
#[derive(Debug, Clone)]
struct Path {
    node: PlanNode,
    /// Output sort order (ascending slots); empty = unordered.
    order: Vec<Slot>,
}

/// Paths for one relation set.
struct RelPaths {
    rows: f64,
    paths: Vec<Path>,
}

impl RelPaths {
    fn cheapest(&self) -> &Path {
        self.paths
            .iter()
            .min_by(|a, b| a.node.cost.total.total_cmp(&b.node.cost.total))
            .expect("every rel set has at least one path")
    }

    /// Cheapest path whose order starts with `want`.
    fn cheapest_with_order(&self, want: &[Slot]) -> Option<&Path> {
        self.paths
            .iter()
            .filter(|p| p.order.len() >= want.len() && p.order[..want.len()] == *want)
            .min_by(|a, b| a.node.cost.total.total_cmp(&b.node.cost.total))
    }

    /// Keep only the cheapest path overall plus the cheapest per distinct
    /// order prefix, bounding path explosion.
    fn prune(&mut self) {
        let mut kept: Vec<Path> = Vec::new();
        self.paths
            .sort_by(|a, b| a.node.cost.total.total_cmp(&b.node.cost.total));
        for p in self.paths.drain(..) {
            let dominated = kept
                .iter()
                .any(|k| order_covers(&k.order, &p.order) && k.node.cost.total <= p.node.cost.total);
            if !dominated {
                kept.push(p);
            }
            if kept.len() >= 6 {
                break;
            }
        }
        self.paths = kept;
    }
}

/// Does order `a` cover everything `b` promises (b is a prefix of a)?
fn order_covers(a: &[Slot], b: &[Slot]) -> bool {
    b.len() <= a.len() && a[..b.len()] == *b
}

struct Planner<'a> {
    query: &'a BoundQuery,
    meta: &'a dyn MetadataProvider,
    params: &'a CostParams,
    flags: &'a PlannerFlags,
}

impl<'a> Planner<'a> {
    fn run(self) -> Result<PlanNode, PlanError> {
        let n = self.query.rels.len();
        if n == 0 {
            return Err(PlanError::MissingTable(0));
        }
        if n > 16 {
            return Err(PlanError::TooManyRels(n));
        }

        // Level 1: base relations.
        let mut rel_paths: HashMap<u64, RelPaths> = HashMap::new();
        for rel in 0..n {
            let paths = self.base_rel_paths(rel)?;
            rel_paths.insert(1 << rel, paths);
        }

        // Levels 2..n: DP over subsets ordered by popcount.
        let full: u64 = (1 << n) - 1;
        let mut masks: Vec<u64> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
        masks.sort_by_key(|m| m.count_ones());
        for mask in masks {
            if mask.count_ones() as usize > n {
                continue;
            }
            let mut out: Option<RelPaths> = None;
            // enumerate proper submask splits
            let mut sub = (mask - 1) & mask;
            let mut any_connected = false;
            while sub > 0 {
                let other = mask ^ sub;
                if rel_paths.contains_key(&sub) && rel_paths.contains_key(&other) {
                    let connected = self.connecting_joins(sub, other);
                    if !connected.is_empty() {
                        any_connected = true;
                        self.add_join_paths(&mut out, &rel_paths, sub, other, mask);
                    }
                }
                sub = (sub - 1) & mask;
            }
            if !any_connected {
                // cartesian fallback: split off the lowest rel
                let low = 1u64 << mask.trailing_zeros();
                let rest = mask ^ low;
                if rel_paths.contains_key(&low) && rel_paths.contains_key(&rest) {
                    self.add_join_paths(&mut out, &rel_paths, rest, low, mask);
                }
            }
            if let Some(mut rp) = out {
                rp.prune();
                rel_paths.insert(mask, rp);
            }
        }

        let top = rel_paths
            .remove(&full)
            .ok_or(PlanError::MissingTable(0))?;
        Ok(self.finalize(top))
    }

    // ---------- base relations ----------

    fn table_of(&self, rel: usize) -> Result<&Table, PlanError> {
        self.meta
            .table(self.query.rels[rel].table)
            .ok_or(PlanError::MissingTable(rel))
    }

    fn stats(&self, slot: Slot) -> Option<&ColumnStats> {
        self.meta
            .column_stats(self.query.rels[slot.rel].table, slot.col)
    }

    /// Estimated output rows of a base rel after its restrictions.
    fn base_rows(&self, rel: usize) -> Result<f64, PlanError> {
        let table = self.table_of(rel)?;
        let raw = table.row_count as f64;
        let mut sel = 1.0;
        for r in self.query.restrictions_on(rel) {
            let col_stats = r.shape.column().and_then(|c| self.stats(Slot { rel, col: c }));
            sel *= restriction_selectivity(&r.shape, col_stats, raw);
        }
        Ok((raw * sel).max(1.0).min(raw.max(1.0)))
    }

    /// Output width: sum of the needed columns' stored sizes.
    fn rel_width(&self, rel: usize) -> Result<f64, PlanError> {
        let table = self.table_of(rel)?;
        Ok(self.query.rels[rel]
            .needed_columns
            .iter()
            .map(|&c| table.columns[c].avg_stored_size())
            .sum::<f64>()
            .max(8.0))
    }

    fn output_slots(&self, rel: usize) -> Vec<Slot> {
        self.query.rels[rel]
            .needed_columns
            .iter()
            .map(|&col| Slot { rel, col })
            .collect()
    }

    fn base_rel_paths(&self, rel: usize) -> Result<RelPaths, PlanError> {
        let table = self.table_of(rel)?;
        let rows = self.base_rows(rel)?;
        let width = self.rel_width(rel)?;
        let restrictions = self.query.restrictions_on(rel);
        let filter: Vec<_> = restrictions.iter().map(|r| r.expr.clone()).collect();

        let mut paths = Vec::new();

        // Sequential scan.
        let mut seq = seq_scan_cost(self.params, table.pages, table.row_count as f64, filter.len());
        if !self.flags.enable_seqscan {
            seq.total += DISABLE_COST;
            seq.startup += DISABLE_COST;
        }
        paths.push(Path {
            node: PlanNode {
                kind: PlanKind::SeqScan { rel, table: table.id, filter: filter.clone() },
                cost: seq,
                rows,
                width,
                output: self.output_slots(rel),
            },
            order: vec![],
        });

        // Index scans.
        for idx in self.meta.indexes_on(table.id) {
            if let Some(path) = self.index_path(rel, table, idx, &restrictions, rows, width) {
                paths.push(path);
            }
        }

        Ok(RelPaths { rows, paths })
    }

    /// Build an index-scan path if the index matches restrictions or offers
    /// a useful sort order.
    fn index_path(
        &self,
        rel: usize,
        table: &Table,
        idx: &parinda_catalog::Index,
        restrictions: &[&Restriction],
        rel_rows: f64,
        width: f64,
    ) -> Option<Path> {
        let raw_rows = table.row_count as f64;
        let mut eq_prefix = Vec::new();
        let mut range: Option<IndexRange> = None;
        let mut index_sel = 1.0;
        let mut matched: Vec<usize> = Vec::new(); // positions into `restrictions`

        'keys: for &key_col in &idx.key_columns {
            // equality first
            for (i, r) in restrictions.iter().enumerate() {
                if matched.contains(&i) {
                    continue;
                }
                if let RestrictionShape::Eq { col, value } = &r.shape {
                    if *col == key_col {
                        let st = self.stats(Slot { rel, col: key_col });
                        index_sel *=
                            restriction_selectivity(&r.shape, st, raw_rows);
                        eq_prefix.push(value.clone());
                        matched.push(i);
                        continue 'keys;
                    }
                }
            }
            // otherwise try range on this column, then stop
            let mut low: Option<(parinda_catalog::Datum, bool)> = None;
            let mut high: Option<(parinda_catalog::Datum, bool)> = None;
            for (i, r) in restrictions.iter().enumerate() {
                if matched.contains(&i) {
                    continue;
                }
                match &r.shape {
                    RestrictionShape::Range { col, op, value } if *col == key_col => {
                        let st = self.stats(Slot { rel, col: key_col });
                        index_sel *= restriction_selectivity(&r.shape, st, raw_rows);
                        match op {
                            BinOp::Lt => high = Some((value.clone(), false)),
                            BinOp::LtEq => high = Some((value.clone(), true)),
                            BinOp::Gt => low = Some((value.clone(), false)),
                            BinOp::GtEq => low = Some((value.clone(), true)),
                            _ => {}
                        }
                        matched.push(i);
                    }
                    RestrictionShape::Between { col, low: l, high: h, negated: false }
                        if *col == key_col =>
                    {
                        let st = self.stats(Slot { rel, col: key_col });
                        index_sel *= restriction_selectivity(&r.shape, st, raw_rows);
                        low = Some((l.clone(), true));
                        high = Some((h.clone(), true));
                        matched.push(i);
                    }
                    _ => {}
                }
            }
            if low.is_some() || high.is_some() {
                range = Some(IndexRange { low, high });
            }
            break;
        }

        let order: Vec<Slot> = idx
            .key_columns
            .iter()
            .map(|&col| Slot { rel, col })
            .collect();
        let order_useful = self.order_is_useful(&order);

        if matched.is_empty() && !order_useful {
            return None; // the index can't help this query
        }

        // Residual filter: every restriction not consumed by the index.
        let filter: Vec<_> = restrictions
            .iter()
            .enumerate()
            .filter(|(i, _)| !matched.contains(i))
            .map(|(_, r)| r.expr.clone())
            .collect();

        let corr = self
            .stats(Slot { rel, col: idx.key_columns[0] })
            .map(|s| s.correlation)
            .unwrap_or(0.0);
        let mut cost = index_scan_cost(
            self.params,
            IndexScanInputs {
                index_pages: idx.pages,
                index_height: idx.height,
                table_pages: table.pages,
                table_rows: raw_rows,
                index_selectivity: index_sel,
                correlation: corr,
            },
            filter.len(),
        );
        if !self.flags.enable_indexscan {
            cost.total += DISABLE_COST;
            cost.startup += DISABLE_COST;
        }

        Some(Path {
            node: PlanNode {
                kind: PlanKind::IndexScan {
                    rel,
                    table: table.id,
                    index: idx.id,
                    eq_prefix,
                    param_prefix: vec![],
                    range,
                    filter,
                },
                cost,
                rows: rel_rows,
                width,
                output: self.output_slots(rel),
            },
            order,
        })
    }

    /// Is an ascending order on these slots useful (ORDER BY, GROUP BY, or
    /// a merge-joinable column)?
    fn order_is_useful(&self, order: &[Slot]) -> bool {
        if order.is_empty() {
            return false;
        }
        let first = order[0];
        let order_by_match = self
            .query
            .order_by
            .first()
            .is_some_and(|k| !k.desc && k.slot == first);
        let group_match = self.query.group_by.first() == Some(&first);
        let join_match = self
            .query
            .joins
            .iter()
            .any(|j| j.left == first || j.right == first);
        order_by_match || group_match || join_match
    }

    // ---------- joins ----------

    /// Equijoin preds connecting two disjoint rel sets.
    fn connecting_joins(&self, a: u64, b: u64) -> Vec<&crate::query::JoinPred> {
        self.query
            .joins
            .iter()
            .filter(|j| {
                let lm = 1u64 << j.left.rel;
                let rm = 1u64 << j.right.rel;
                (lm & a != 0 && rm & b != 0) || (lm & b != 0 && rm & a != 0)
            })
            .collect()
    }

    /// Join-filter exprs that become checkable exactly at `mask` (their rel
    /// set is covered by mask but by neither input alone).
    fn filters_for(&self, left: u64, right: u64) -> Vec<crate::query::BoundExpr> {
        let mask = left | right;
        self.query
            .join_filters
            .iter()
            .filter(|f| {
                let fm = f.rel_mask();
                fm & !mask == 0 && fm & left != 0 && fm & right != 0
            })
            .cloned()
            .collect()
    }

    /// Estimated rows of the join of two rel sets.
    fn join_rows(&self, left_mask: u64, left_rows: f64, right_mask: u64, right_rows: f64) -> f64 {
        let mut sel = 1.0;
        for j in self.connecting_joins(left_mask, right_mask) {
            let ls = self.stats(j.left);
            let rs = self.stats(j.right);
            let lr = self.rel_raw_rows(j.left.rel);
            let rr = self.rel_raw_rows(j.right.rel);
            sel *= eqjoin_selectivity(ls, lr, rs, rr);
        }
        // join filters: default selectivity each
        let nfilters = self.filters_for(left_mask, right_mask).len();
        sel *= 0.333f64.powi(nfilters as i32);
        (left_rows * right_rows * sel).max(1.0)
    }

    fn rel_raw_rows(&self, rel: usize) -> f64 {
        self.meta
            .table(self.query.rels[rel].table)
            .map(|t| t.row_count as f64)
            .unwrap_or(1.0)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_join_paths(
        &self,
        out: &mut Option<RelPaths>,
        rel_paths: &HashMap<u64, RelPaths>,
        left: u64,
        right: u64,
        _mask: u64,
    ) {
        let lp = &rel_paths[&left];
        let rp = &rel_paths[&right];
        let rows = self.join_rows(left, lp.rows, right, rp.rows);

        fn ensure(o: &mut Option<RelPaths>, rows: f64) -> &mut RelPaths {
            o.get_or_insert_with(|| RelPaths { rows, paths: Vec::new() })
        }

        // consider both orientations
        for (outer_mask, inner_mask) in [(left, right), (right, left)] {
            let op = &rel_paths[&outer_mask];
            let ip = &rel_paths[&inner_mask];
            let joins = self.connecting_joins(outer_mask, inner_mask);
            let keys: Vec<JoinKey> = joins
                .iter()
                .map(|j| {
                    if (1u64 << j.left.rel) & outer_mask != 0 {
                        JoinKey { outer: j.left, inner: j.right }
                    } else {
                        JoinKey { outer: j.right, inner: j.left }
                    }
                })
                .collect();
            let filter = self.filters_for(outer_mask, inner_mask);

            // Hash join.
            if !keys.is_empty() {
                let o = op.cheapest();
                let i = ip.cheapest();
                let mut cost = hashjoin_cost(
                    self.params,
                    o.node.cost,
                    o.node.rows,
                    i.node.cost,
                    i.node.rows,
                    i.node.width,
                    rows,
                );
                if !self.flags.enable_hashjoin {
                    cost.total += DISABLE_COST;
                    cost.startup += DISABLE_COST;
                }
                let node = self.make_join(
                    PlanKind::HashJoin {
                        outer: Box::new(o.node.clone()),
                        inner: Box::new(i.node.clone()),
                        keys: keys.clone(),
                        filter: filter.clone(),
                    },
                    cost,
                    rows,
                    o,
                    i,
                );
                ensure(out, rows).paths.push(Path { node, order: vec![] });
            }

            // Merge join on the first key.
            if let Some(k0) = keys.first() {
                let want_o = [k0.outer];
                let want_i = [k0.inner];
                let (o_path, o_cost, o_order) = self.sorted_input(op, &want_o);
                let (i_path, i_cost, _) = self.sorted_input(ip, &want_i);
                let mut cost = mergejoin_cost(
                    self.params,
                    o_cost,
                    o_path.rows,
                    i_cost,
                    i_path.rows,
                    rows,
                );
                if !self.flags.enable_mergejoin {
                    cost.total += DISABLE_COST;
                    cost.startup += DISABLE_COST;
                }
                let node = PlanNode {
                    output: join_output(&o_path, &i_path),
                    width: o_path.width + i_path.width,
                    kind: PlanKind::MergeJoin {
                        outer: Box::new(o_path),
                        inner: Box::new(i_path),
                        keys: keys.clone(),
                        filter: filter.clone(),
                    },
                    cost,
                    rows,
                };
                ensure(out, rows).paths.push(Path { node, order: o_order });
            }

            // Nested loop (plain, with materialized inner).
            {
                let o = op.cheapest();
                let i = ip.cheapest();
                let mat_cost = materialize_cost(self.params, i.node.cost.total, i.node.rows);
                let rescan = materialize_rescan_cost(self.params, i.node.rows);
                let mut cost = nestloop_cost(
                    self.params,
                    o.node.cost,
                    o.node.rows,
                    mat_cost,
                    rescan,
                    rows,
                );
                // per-pair qual evaluation
                cost.total +=
                    o.node.rows * i.node.rows * self.params.cpu_operator_cost
                        * (keys.len().max(1)) as f64;
                if !self.flags.enable_nestloop {
                    cost.total += DISABLE_COST;
                    cost.startup += DISABLE_COST;
                }
                let mat = PlanNode {
                    output: i.node.output.clone(),
                    rows: i.node.rows,
                    width: i.node.width,
                    cost: mat_cost,
                    kind: PlanKind::Materialize { input: Box::new(i.node.clone()) },
                };
                let node = self.make_join(
                    PlanKind::NestLoop {
                        outer: Box::new(o.node.clone()),
                        inner: Box::new(mat),
                        keys: keys.clone(),
                        filter: filter.clone(),
                    },
                    cost,
                    rows,
                    o,
                    &Path { node: PlanNode {
                        kind: PlanKind::Materialize {
                            input: Box::new(ip.cheapest().node.clone()),
                        },
                        cost: mat_cost,
                        rows: i.node.rows,
                        width: i.node.width,
                        output: i.node.output.clone(),
                    }, order: vec![] },
                );
                ensure(out, rows).paths.push(Path { node, order: o.order.clone() });
            }

            // Parameterized index nested loop: inner is a single base rel
            // with an index whose leading column is an inner join key.
            if inner_mask.count_ones() == 1 && !keys.is_empty() {
                let inner_rel = inner_mask.trailing_zeros() as usize;
                if let Some(pp) = self.param_index_paths(inner_rel, &keys) {
                    for (probe, per_probe_rows) in pp {
                        let o = op.cheapest();
                        let mut cost = nestloop_cost(
                            self.params,
                            o.node.cost,
                            o.node.rows,
                            Cost::ZERO,
                            probe.cost.total,
                            rows,
                        );
                        // first probe also costs probe.total
                        cost.total += probe.cost.total;
                        let _ = per_probe_rows;
                        if !self.flags.enable_nestloop {
                            cost.total += DISABLE_COST;
                            cost.startup += DISABLE_COST;
                        }
                        let node = self.make_join(
                            PlanKind::NestLoop {
                                outer: Box::new(o.node.clone()),
                                inner: Box::new(probe.clone()),
                                keys: keys.clone(),
                                filter: filter.clone(),
                            },
                            cost,
                            rows,
                            o,
                            &Path { node: probe, order: vec![] },
                        );
                        ensure(out, rows).paths.push(Path { node, order: o.order.clone() });
                    }
                }
            }
        }

        // make sure rows estimate is consistent
        if let Some(rp2) = out.as_mut() {
            rp2.rows = rows;
            for p in &mut rp2.paths {
                p.node.rows = rows;
            }
        }
    }

    fn make_join(
        &self,
        kind: PlanKind,
        cost: Cost,
        rows: f64,
        outer: &Path,
        inner: &Path,
    ) -> PlanNode {
        PlanNode {
            output: outer
                .node
                .output
                .iter()
                .chain(&inner.node.output)
                .copied()
                .collect(),
            width: outer.node.width + inner.node.width,
            kind,
            cost,
            rows,
        }
    }

    /// Get (plan, cost, order) for `rp` sorted on `want` — either an
    /// existing ordered path or the cheapest path plus an explicit Sort.
    fn sorted_input(&self, rp: &RelPaths, want: &[Slot]) -> (PlanNode, Cost, Vec<Slot>) {
        if let Some(p) = rp.cheapest_with_order(want) {
            return (p.node.clone(), p.node.cost, p.order.clone());
        }
        let base = rp.cheapest();
        let mut cost = sort_cost(self.params, base.node.cost.total, base.node.rows, base.node.width);
        if !self.flags.enable_sort {
            cost.total += DISABLE_COST;
            cost.startup += DISABLE_COST;
        }
        let keys: Vec<PosKey> = want
            .iter()
            .filter_map(|s| {
                base.node.output.iter().position(|o| o == s).map(|pos| PosKey { pos, desc: false })
            })
            .collect();
        let node = PlanNode {
            output: base.node.output.clone(),
            rows: base.node.rows,
            width: base.node.width,
            cost,
            kind: PlanKind::Sort { input: Box::new(base.node.clone()), keys },
        };
        (node, cost, want.to_vec())
    }

    /// Parameterized index probes for `rel` driven by join keys.
    /// Returns (probe plan, rows per probe).
    fn param_index_paths(&self, rel: usize, keys: &[JoinKey]) -> Option<Vec<(PlanNode, f64)>> {
        let table = self.table_of(rel).ok()?;
        let raw_rows = table.row_count as f64;
        let restrictions = self.query.restrictions_on(rel);
        let width = self.rel_width(rel).ok()?;
        let mut out = Vec::new();
        for idx in self.meta.indexes_on(table.id) {
            let lead = idx.key_columns[0];
            let Some(k) = keys.iter().find(|k| k.inner.col == lead && k.inner.rel == rel) else {
                continue;
            };
            // per-probe selectivity: one value of the lead column
            let st = self.stats(Slot { rel, col: lead });
            let nd = st.map(|s| s.distinct_count(raw_rows)).unwrap_or(raw_rows * 0.1);
            let probe_sel = (1.0 / nd.max(1.0)).min(1.0);
            // residual restrictions applied after fetch
            let mut rest_sel = 1.0;
            let filter: Vec<_> = restrictions
                .iter()
                .map(|r| {
                    let cs = r.shape.column().and_then(|c| self.stats(Slot { rel, col: c }));
                    rest_sel *= restriction_selectivity(&r.shape, cs, raw_rows);
                    r.expr.clone()
                })
                .collect();
            let corr = st.map(|s| s.correlation).unwrap_or(0.0);
            let cost = index_scan_cost(
                self.params,
                IndexScanInputs {
                    index_pages: idx.pages,
                    index_height: idx.height,
                    table_pages: table.pages,
                    table_rows: raw_rows,
                    index_selectivity: probe_sel,
                    correlation: corr,
                },
                filter.len(),
            );
            let rows = (raw_rows * probe_sel * rest_sel).max(1.0);
            out.push((
                PlanNode {
                    kind: PlanKind::IndexScan {
                        rel,
                        table: table.id,
                        index: idx.id,
                        eq_prefix: vec![],
                        param_prefix: vec![k.outer],
                        range: None,
                        filter,
                    },
                    cost,
                    rows,
                    width,
                    output: self.output_slots(rel),
                },
                rows,
            ));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    // ---------- top level ----------

    fn finalize(&self, top: RelPaths) -> PlanNode {
        // Prefer a pre-ordered path when it satisfies ORDER BY.
        let want: Vec<Slot> = self
            .query
            .order_by
            .iter()
            .take_while(|k| !k.desc)
            .map(|k| k.slot)
            .collect();
        let has_agg = self.query.has_aggregation();

        let mut node = if !has_agg && !want.is_empty() && want.len() == self.query.order_by.len() {
            match top.cheapest_with_order(&want) {
                Some(p) => p.node.clone(),
                None => top.cheapest().node.clone(),
            }
        } else {
            top.cheapest().node.clone()
        };
        // Recover the order of the chosen node.
        let node_order: Vec<Slot> = top
            .paths
            .iter()
            .find(|p| p.node == node)
            .map(|p| p.order.clone())
            .unwrap_or_default();

        if has_agg {
            node = self.add_aggregate(node);
            node = self.maybe_sort_output(node, OutputSpace::Aggregate);
        } else {
            // ORDER BY in slot space, before projection.
            if !self.order_satisfied(&node_order) {
                node = self.slot_sort(node);
            }
            node = self.add_project(node);
        }

        if self.query.distinct {
            let rows = node.rows * 0.9; // mild dedup estimate
            let cost = Cost {
                startup: node.cost.total,
                total: node.cost.total + node.rows * self.params.cpu_operator_cost,
            };
            node = PlanNode {
                output: node.output.clone(),
                rows,
                width: node.width,
                cost,
                kind: PlanKind::Unique { input: Box::new(node) },
            };
        }

        if let Some(n) = self.query.limit {
            let frac = (n as f64 / node.rows.max(1.0)).min(1.0);
            let cost = Cost {
                startup: node.cost.startup,
                total: node.cost.startup + (node.cost.total - node.cost.startup) * frac,
            };
            node = PlanNode {
                output: node.output.clone(),
                rows: node.rows.min(n as f64),
                width: node.width,
                cost,
                kind: PlanKind::Limit { input: Box::new(node), n },
            };
        }

        node
    }

    fn order_satisfied(&self, order: &[Slot]) -> bool {
        if self.query.order_by.is_empty() {
            return true;
        }
        if self.query.order_by.iter().any(|k| k.desc) {
            return false;
        }
        let want: Vec<Slot> = self.query.order_by.iter().map(|k| k.slot).collect();
        order_covers(order, &want)
    }

    /// Sort in slot space (before projection).
    fn slot_sort(&self, input: PlanNode) -> PlanNode {
        let keys: Vec<PosKey> = self
            .query
            .order_by
            .iter()
            .filter_map(|k| {
                input
                    .output
                    .iter()
                    .position(|s| *s == k.slot)
                    .map(|pos| PosKey { pos, desc: k.desc })
            })
            .collect();
        let mut cost = sort_cost(self.params, input.cost.total, input.rows, input.width);
        if !self.flags.enable_sort {
            cost.total += DISABLE_COST;
        }
        PlanNode {
            output: input.output.clone(),
            rows: input.rows,
            width: input.width,
            cost,
            kind: PlanKind::Sort { input: Box::new(input), keys },
        }
    }

    fn add_aggregate(&self, input: PlanNode) -> PlanNode {
        let groups = self.estimate_groups(input.rows);
        let naggs = self
            .query
            .output
            .iter()
            .filter(|o| o.expr.is_agg())
            .count();
        let cost = agg_cost(self.params, input.cost, input.rows, groups, naggs);
        let width = 8.0 * self.query.output.len() as f64;
        PlanNode {
            output: vec![],
            rows: groups,
            width,
            cost,
            kind: PlanKind::Aggregate {
                input: Box::new(input),
                group_by: self.query.group_by.clone(),
                items: self.query.output.clone(),
            },
        }
    }

    fn estimate_groups(&self, input_rows: f64) -> f64 {
        if self.query.group_by.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0;
        for slot in &self.query.group_by {
            let nd = self
                .stats(*slot)
                .map(|s| s.distinct_count(self.rel_raw_rows(slot.rel)))
                .unwrap_or(input_rows * 0.1);
            groups *= nd.max(1.0);
        }
        groups.min(input_rows.max(1.0))
    }

    fn add_project(&self, input: PlanNode) -> PlanNode {
        let cost = Cost {
            startup: input.cost.startup,
            total: input.cost.total
                + input.rows * self.params.cpu_operator_cost * self.query.output.len() as f64,
        };
        PlanNode {
            output: vec![],
            rows: input.rows,
            width: 8.0 * self.query.output.len() as f64,
            cost,
            kind: PlanKind::Project {
                input: Box::new(input),
                items: self.query.output.clone(),
            },
        }
    }

    /// ORDER BY above an aggregate: sort by output position.
    fn maybe_sort_output(&self, input: PlanNode, _space: OutputSpace) -> PlanNode {
        if self.query.order_by.is_empty() {
            return input;
        }
        let keys: Vec<PosKey> = self
            .query
            .order_by
            .iter()
            .filter_map(|k| {
                self.query.output.iter().position(|o| match &o.expr {
                    BoundOutput::Scalar(crate::query::BoundExpr::Column(s)) => *s == k.slot,
                    _ => false,
                })
                .map(|pos| PosKey { pos, desc: k.desc })
            })
            .collect();
        if keys.is_empty() {
            return input;
        }
        let cost = sort_cost(self.params, input.cost.total, input.rows, input.width);
        PlanNode {
            output: input.output.clone(),
            rows: input.rows,
            width: input.width,
            cost,
            kind: PlanKind::Sort { input: Box::new(input), keys },
        }
    }
}

enum OutputSpace {
    Aggregate,
}

/// Output slots of a join of two plans.
fn join_output(outer: &PlanNode, inner: &PlanNode) -> Vec<Slot> {
    outer.output.iter().chain(&inner.output).copied().collect()
}

/// Convert ORDER BY sort keys into the planner's slot-order form (ascending
/// prefix only).
pub fn ascending_prefix(keys: &[SortKey]) -> Vec<Slot> {
    keys.iter().take_while(|k| !k.desc).map(|k| k.slot).collect()
}

/// Public helper for INUM and the advisors: generate all scan paths for a
/// single base relation of `query` under the given metadata, returning
/// `(plan, output order)` pairs. This is exactly what the DP planner uses
/// at level 1, so costs agree with full planning.
pub fn base_scan_paths(
    query: &BoundQuery,
    rel: usize,
    meta: &dyn MetadataProvider,
    params: &CostParams,
    flags: &PlannerFlags,
) -> Result<Vec<(PlanNode, Vec<Slot>)>, PlanError> {
    let planner = Planner { query, meta, params, flags };
    let rp = planner.base_rel_paths(rel)?;
    Ok(rp.paths.into_iter().map(|p| (p.node, p.order)).collect())
}

/// Estimated rows a base rel produces after its restrictions (INUM needs
/// this to scale parameterized-probe access costs).
pub fn base_rel_rows(
    query: &BoundQuery,
    rel: usize,
    meta: &dyn MetadataProvider,
    params: &CostParams,
) -> Result<f64, PlanError> {
    let flags = PlannerFlags::default();
    let planner = Planner { query, meta, params, flags: &flags };
    planner.base_rows(rel)
}
