//! EXPLAIN-style plan rendering, in the familiar PostgreSQL shape:
//!
//! ```text
//! Hash Join  (cost=120.31..540.22 rows=1024 width=16)
//!   -> Seq Scan on photoobj  (cost=0.00..420.00 rows=10000 width=8)
//!   -> Index Scan using i_spec_z on specobj  (cost=0.29..100.10 rows=50 width=8)
//! ```

use std::fmt::Write as _;

use parinda_catalog::MetadataProvider;

use crate::plan::{PlanKind, PlanNode};
use crate::query::BoundQuery;

/// Render a plan tree as text.
pub fn explain(plan: &PlanNode, query: &BoundQuery, meta: &dyn MetadataProvider) -> String {
    let mut out = String::new();
    render(plan, query, meta, 0, &mut out);
    out
}

fn render(
    node: &PlanNode,
    query: &BoundQuery,
    meta: &dyn MetadataProvider,
    depth: usize,
    out: &mut String,
) {
    if depth > 0 {
        for _ in 0..depth - 1 {
            out.push_str("  ");
        }
        out.push_str("  -> ");
    }
    let label = node_label(node, query, meta);
    let _ = writeln!(
        out,
        "{label}  (cost={:.2}..{:.2} rows={} width={})",
        node.cost.startup,
        node.cost.total,
        node.rows.round() as u64,
        node.width.round() as u64
    );
    for c in node.children() {
        render(c, query, meta, depth + 1, out);
    }
}

fn node_label(node: &PlanNode, query: &BoundQuery, meta: &dyn MetadataProvider) -> String {
    match &node.kind {
        PlanKind::SeqScan { rel, table, .. } => {
            let tname = meta
                .table(*table)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| "?".into());
            let binding = &query.rels[*rel].binding;
            if binding == &tname {
                format!("Seq Scan on {tname}")
            } else {
                format!("Seq Scan on {tname} {binding}")
            }
        }
        PlanKind::IndexScan { rel, table, index, param_prefix, .. } => {
            let tname = meta
                .table(*table)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| "?".into());
            let iname = index_name(meta, *table, *index);
            let binding = &query.rels[*rel].binding;
            let param = if param_prefix.is_empty() { "" } else { " (parameterized)" };
            if binding == &tname {
                format!("Index Scan using {iname} on {tname}{param}")
            } else {
                format!("Index Scan using {iname} on {tname} {binding}{param}")
            }
        }
        PlanKind::NestLoop { .. } => "Nested Loop".into(),
        PlanKind::HashJoin { .. } => "Hash Join".into(),
        PlanKind::MergeJoin { .. } => "Merge Join".into(),
        PlanKind::Materialize { .. } => "Materialize".into(),
        PlanKind::Sort { keys, .. } => {
            let desc: Vec<String> = keys
                .iter()
                .map(|k| format!("${}{}", k.pos, if k.desc { " DESC" } else { "" }))
                .collect();
            format!("Sort  [{}]", desc.join(", "))
        }
        PlanKind::Aggregate { group_by, .. } => {
            if group_by.is_empty() {
                "Aggregate".into()
            } else {
                "HashAggregate".into()
            }
        }
        PlanKind::Project { .. } => "Project".into(),
        PlanKind::Unique { .. } => "Unique".into(),
        PlanKind::Limit { n, .. } => format!("Limit  {n}"),
    }
}

fn index_name(
    meta: &dyn MetadataProvider,
    table: parinda_catalog::TableId,
    index: parinda_catalog::IndexId,
) -> String {
    meta.indexes_on(table)
        .into_iter()
        .find(|i| i.id == index)
        .map(|i| i.name.clone())
        .unwrap_or_else(|| format!("index#{}", index.0))
}
