//! EXPLAIN-style plan rendering, in the familiar PostgreSQL shape:
//!
//! ```text
//! Hash Join  (cost=120.31..540.22 rows=1024 width=16)
//!   -> Seq Scan on photoobj  (cost=0.00..420.00 rows=10000 width=8)
//!   -> Index Scan using i_spec_z on specobj  (cost=0.29..100.10 rows=50 width=8)
//! ```

use std::fmt::Write as _;

use parinda_catalog::MetadataProvider;

use crate::plan::{PlanKind, PlanNode};
use crate::query::BoundQuery;

/// Render a plan tree as text.
pub fn explain(plan: &PlanNode, query: &BoundQuery, meta: &dyn MetadataProvider) -> String {
    let mut out = String::new();
    render(plan, query, meta, 0, &mut out);
    out
}

fn render(
    node: &PlanNode,
    query: &BoundQuery,
    meta: &dyn MetadataProvider,
    depth: usize,
    out: &mut String,
) {
    if depth > 0 {
        for _ in 0..depth - 1 {
            out.push_str("  ");
        }
        out.push_str("  -> ");
    }
    let label = node_label(node, query, meta);
    let _ = writeln!(
        out,
        "{label}  (cost={:.2}..{:.2} rows={} width={})",
        node.cost.startup,
        node.cost.total,
        node.rows.round() as u64,
        node.width.round() as u64
    );
    for c in node.children() {
        render(c, query, meta, depth + 1, out);
    }
}

/// One row of a per-node cost breakdown (pre-order plan walk).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Nesting depth in the plan tree (root = 0).
    pub depth: usize,
    /// The node's EXPLAIN label.
    pub label: String,
    /// Startup cost.
    pub startup: f64,
    /// Total cost (children included).
    pub total: f64,
    /// Cost attributable to this node alone: total minus the children's
    /// totals, clamped at zero (a parameterized nested-loop inner charges
    /// its repeats to the join, so the naive difference can go negative).
    pub self_cost: f64,
}

/// Walk the plan in pre-order and compute the per-node cost breakdown.
pub fn breakdown(plan: &PlanNode, query: &BoundQuery, meta: &dyn MetadataProvider) -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    collect_breakdown(plan, query, meta, 0, &mut rows);
    rows
}

fn collect_breakdown(
    node: &PlanNode,
    query: &BoundQuery,
    meta: &dyn MetadataProvider,
    depth: usize,
    rows: &mut Vec<BreakdownRow>,
) {
    let children_total: f64 = node.children().into_iter().map(|c| c.cost.total).sum();
    rows.push(BreakdownRow {
        depth,
        label: node_label(node, query, meta),
        startup: node.cost.startup,
        total: node.cost.total,
        self_cost: (node.cost.total - children_total).max(0.0),
    });
    for c in node.children() {
        collect_breakdown(c, query, meta, depth + 1, rows);
    }
}

/// Render a breakdown as a fixed-width table: per node, total cost, self
/// cost, and self cost as % of the plan total. When `whatif` rows from a
/// hypothetical-design plan are given and the two plans have the same
/// shape (same labels in the same order), a `what-if` column plus a `Δ`
/// column appear inline; when the shapes differ (the design changed the
/// plan), the what-if plan is appended as its own table.
pub fn render_breakdown(rows: &[BreakdownRow], whatif: Option<&[BreakdownRow]>) -> String {
    let aligned = whatif
        .filter(|w| {
            w.len() == rows.len()
                && w.iter().zip(rows).all(|(a, b)| a.label == b.label && a.depth == b.depth)
        });
    let mut out = render_breakdown_table(rows, aligned);
    if let (Some(w), None) = (whatif, aligned) {
        out.push_str("\nwhat-if plan (different shape under the hypothetical design):\n");
        out.push_str(&render_breakdown_table(w, None));
    }
    if let Some(w) = whatif {
        let base: f64 = rows.first().map(|r| r.total).unwrap_or(0.0);
        let hypo: f64 = w.first().map(|r| r.total).unwrap_or(0.0);
        let pct = if base > 0.0 { (hypo - base) * 100.0 / base } else { 0.0 };
        out.push_str(&format!("\nwhat-if total: {base:.2} -> {hypo:.2} ({pct:+.1}%)\n"));
    }
    out
}

fn render_breakdown_table(rows: &[BreakdownRow], aligned: Option<&[BreakdownRow]>) -> String {
    let plan_total = rows.first().map(|r| r.total).unwrap_or(0.0).max(f64::MIN_POSITIVE);
    let mut headers = vec!["node", "total", "self", "% of plan"];
    if aligned.is_some() {
        headers.push("what-if");
        headers.push("delta");
    }
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let mut row = vec![
            format!("{}{}", "  ".repeat(r.depth), r.label),
            format!("{:.2}", r.total),
            format!("{:.2}", r.self_cost),
            format!("{:.1}%", r.self_cost * 100.0 / plan_total),
        ];
        if let Some(w) = aligned {
            let d = w[i].total - r.total;
            row.push(format!("{:.2}", w[i].total));
            row.push(format!("{d:+.2}"));
        }
        cells.push(row);
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], out: &mut String| {
        for (i, c) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{c:<w$}", w = widths[i]);
            } else {
                let _ = write!(out, "{c:>w$}", w = widths[i]);
            }
        }
        out.push('\n');
    };
    fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(), &mut out);
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &cells {
        fmt_row(row, &mut out);
    }
    out
}

fn node_label(node: &PlanNode, query: &BoundQuery, meta: &dyn MetadataProvider) -> String {
    match &node.kind {
        PlanKind::SeqScan { rel, table, .. } => {
            let tname = meta
                .table(*table)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| "?".into());
            let binding = &query.rels[*rel].binding;
            if binding == &tname {
                format!("Seq Scan on {tname}")
            } else {
                format!("Seq Scan on {tname} {binding}")
            }
        }
        PlanKind::IndexScan { rel, table, index, param_prefix, .. } => {
            let tname = meta
                .table(*table)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| "?".into());
            let iname = index_name(meta, *table, *index);
            let binding = &query.rels[*rel].binding;
            let param = if param_prefix.is_empty() { "" } else { " (parameterized)" };
            if binding == &tname {
                format!("Index Scan using {iname} on {tname}{param}")
            } else {
                format!("Index Scan using {iname} on {tname} {binding}{param}")
            }
        }
        PlanKind::NestLoop { .. } => "Nested Loop".into(),
        PlanKind::HashJoin { .. } => "Hash Join".into(),
        PlanKind::MergeJoin { .. } => "Merge Join".into(),
        PlanKind::Materialize { .. } => "Materialize".into(),
        PlanKind::Sort { keys, .. } => {
            let desc: Vec<String> = keys
                .iter()
                .map(|k| format!("${}{}", k.pos, if k.desc { " DESC" } else { "" }))
                .collect();
            format!("Sort  [{}]", desc.join(", "))
        }
        PlanKind::Aggregate { group_by, .. } => {
            if group_by.is_empty() {
                "Aggregate".into()
            } else {
                "HashAggregate".into()
            }
        }
        PlanKind::Project { .. } => "Project".into(),
        PlanKind::Unique { .. } => "Unique".into(),
        PlanKind::Limit { n, .. } => format!("Limit  {n}"),
    }
}

fn index_name(
    meta: &dyn MetadataProvider,
    table: parinda_catalog::TableId,
    index: parinda_catalog::IndexId,
) -> String {
    meta.indexes_on(table)
        .into_iter()
        .find(|i| i.id == index)
        .map(|i| i.name.clone())
        .unwrap_or_else(|| format!("index#{}", index.0))
}
