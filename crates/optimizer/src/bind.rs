//! Name resolution and clause classification (PostgreSQL's analyzer +
//! the restriction/join split done in `deconstruct_jointree`).

use std::collections::BTreeSet;

use parinda_catalog::MetadataProvider;
use parinda_sql::ast::{ColumnRef, Expr, Select, SelectItem};
use parinda_sql::BinOp;

use crate::query::*;

/// Binding errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    DuplicateBinding(String),
    AggregateInWhere,
    Unsupported(String),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            BindError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            BindError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            BindError::DuplicateBinding(b) => write!(f, "duplicate table binding: {b}"),
            BindError::AggregateInWhere => write!(f, "aggregates are not allowed in WHERE"),
            BindError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Bind a parsed SELECT against catalog metadata.
pub fn bind(select: &Select, meta: &dyn MetadataProvider) -> Result<BoundQuery, BindError> {
    let mut binder = Binder::new(meta);
    binder.bind_select(select)
}

struct Binder<'a> {
    meta: &'a dyn MetadataProvider,
    rels: Vec<BaseRel>,
    needed: Vec<BTreeSet<usize>>,
}

impl<'a> Binder<'a> {
    fn new(meta: &'a dyn MetadataProvider) -> Self {
        Binder { meta, rels: Vec::new(), needed: Vec::new() }
    }

    fn bind_select(&mut self, select: &Select) -> Result<BoundQuery, BindError> {
        // FROM list -> range table.
        for t in &select.from {
            let table = self
                .meta
                .table_by_name(&t.name)
                .ok_or_else(|| BindError::UnknownTable(t.name.clone()))?;
            let binding = t.binding().to_ascii_lowercase();
            if self.rels.iter().any(|r| r.binding == binding) {
                return Err(BindError::DuplicateBinding(binding));
            }
            self.rels.push(BaseRel {
                binding,
                table: table.id,
                needed_columns: Vec::new(),
            });
            self.needed.push(BTreeSet::new());
        }

        // SELECT list.
        let mut output = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    for rel in 0..self.rels.len() {
                        self.expand_wildcard(rel, &mut output);
                    }
                }
                SelectItem::QualifiedWildcard(name) => {
                    let rel = self.rel_by_binding(name)?;
                    self.expand_wildcard(rel, &mut output);
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_output(expr)?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    output.push(OutputItem { expr: bound, name });
                }
            }
        }

        // WHERE -> restrictions / joins / join filters.
        let mut restrictions = Vec::new();
        let mut joins = Vec::new();
        let mut join_filters = Vec::new();
        if let Some(w) = &select.where_clause {
            if w.contains_aggregate() {
                return Err(BindError::AggregateInWhere);
            }
            for conj in w.conjuncts() {
                let bound = self.bind_expr(conj)?;
                let mask = bound.rel_mask();
                match mask.count_ones() {
                    0 | 1 => {
                        let rel = if mask == 0 { 0 } else { mask.trailing_zeros() as usize };
                        let shape = classify(&bound, rel);
                        restrictions.push(Restriction { rel, expr: bound, shape });
                    }
                    2 => match as_equijoin(&bound) {
                        Some((l, r)) => joins.push(JoinPred { left: l, right: r, expr: bound }),
                        None => join_filters.push(bound),
                    },
                    _ => join_filters.push(bound),
                }
            }
        }

        // GROUP BY: plain column slots only.
        let mut group_by = Vec::new();
        for g in &select.group_by {
            match g {
                Expr::Column(c) => group_by.push(self.resolve(c)?),
                other => {
                    return Err(BindError::Unsupported(format!(
                        "GROUP BY expression: {other}"
                    )))
                }
            }
        }

        // ORDER BY: plain column slots only (expressions unsupported).
        let mut order_by = Vec::new();
        for o in &select.order_by {
            match &o.expr {
                Expr::Column(c) => {
                    order_by.push(SortKey { slot: self.resolve(c)?, desc: o.desc })
                }
                other => {
                    return Err(BindError::Unsupported(format!(
                        "ORDER BY expression: {other}"
                    )))
                }
            }
        }

        // Freeze needed-column sets.
        for (rel, needed) in self.needed.iter().enumerate() {
            self.rels[rel].needed_columns = needed.iter().copied().collect();
        }

        Ok(BoundQuery {
            rels: std::mem::take(&mut self.rels),
            restrictions,
            joins,
            join_filters,
            output,
            group_by,
            order_by,
            limit: select.limit,
            distinct: select.distinct,
        })
    }

    fn expand_wildcard(&mut self, rel: usize, output: &mut Vec<OutputItem>) {
        let table = self.meta.table(self.rels[rel].table).expect("bound table");
        for (col, c) in table.columns.iter().enumerate() {
            self.needed[rel].insert(col);
            output.push(OutputItem {
                expr: BoundOutput::Scalar(BoundExpr::Column(Slot { rel, col })),
                name: c.name.clone(),
            });
        }
    }

    fn rel_by_binding(&self, name: &str) -> Result<usize, BindError> {
        let lower = name.to_ascii_lowercase();
        self.rels
            .iter()
            .position(|r| r.binding == lower)
            .ok_or(BindError::UnknownTable(lower))
    }

    fn resolve(&mut self, c: &ColumnRef) -> Result<Slot, BindError> {
        let slot = match &c.table {
            Some(t) => {
                let rel = self.rel_by_binding(t)?;
                let table = self.meta.table(self.rels[rel].table).expect("bound table");
                let col = table
                    .column_index(&c.column)
                    .ok_or_else(|| BindError::UnknownColumn(format!("{t}.{}", c.column)))?;
                Slot { rel, col }
            }
            None => {
                let mut found = None;
                for (rel, base) in self.rels.iter().enumerate() {
                    let table = self.meta.table(base.table).expect("bound table");
                    if let Some(col) = table.column_index(&c.column) {
                        if found.is_some() {
                            return Err(BindError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some(Slot { rel, col });
                    }
                }
                found.ok_or_else(|| BindError::UnknownColumn(c.column.clone()))?
            }
        };
        self.needed[slot.rel].insert(slot.col);
        Ok(slot)
    }

    fn bind_output(&mut self, e: &Expr) -> Result<BoundOutput, BindError> {
        match e {
            Expr::Agg { func, arg, distinct } => {
                let arg = match arg {
                    Some(a) => Some(self.bind_expr(a)?),
                    None => None,
                };
                Ok(BoundOutput::Agg { func: *func, arg, distinct: *distinct })
            }
            other => {
                if other.contains_aggregate() {
                    return Err(BindError::Unsupported(
                        "aggregates nested inside expressions".into(),
                    ));
                }
                Ok(BoundOutput::Scalar(self.bind_expr(other)?))
            }
        }
    }

    fn bind_expr(&mut self, e: &Expr) -> Result<BoundExpr, BindError> {
        Ok(match e {
            Expr::Column(c) => BoundExpr::Column(self.resolve(c)?),
            Expr::Literal(l) => BoundExpr::Literal(l.to_datum()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left)?),
                right: Box::new(self.bind_expr(right)?),
            },
            Expr::Not(inner) => BoundExpr::Not(Box::new(self.bind_expr(inner)?)),
            Expr::Between { expr, low, high, negated } => BoundExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
                negated: *negated,
            },
            Expr::InList { expr, list, negated } => BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list.iter().map(|e| self.bind_expr(e)).collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            },
            Expr::Like { expr, pattern, negated } => BoundExpr::Like {
                expr: Box::new(self.bind_expr(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Agg { .. } => {
                return Err(BindError::Unsupported("aggregate outside SELECT list".into()))
            }
        })
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.clone(),
        Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => "?column?".into(),
    }
}

/// Classify a single-rel predicate into a selectivity shape.
fn classify(e: &BoundExpr, rel: usize) -> RestrictionShape {
    debug_assert!(e.rel_mask() == 0 || e.rel_mask() == 1 << rel);
    if let Some((slot, op, d)) = e.as_column_op_literal() {
        return match op {
            BinOp::Eq => RestrictionShape::Eq { col: slot.col, value: d.clone() },
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                RestrictionShape::Range { col: slot.col, op, value: d.clone() }
            }
            _ => RestrictionShape::Opaque,
        };
    }
    match e {
        BoundExpr::Between { expr, low, high, negated } => {
            if let (BoundExpr::Column(s), BoundExpr::Literal(l), BoundExpr::Literal(h)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                return RestrictionShape::Between {
                    col: s.col,
                    low: l.clone(),
                    high: h.clone(),
                    negated: *negated,
                };
            }
            RestrictionShape::Opaque
        }
        BoundExpr::InList { expr, list, negated } => {
            if let BoundExpr::Column(s) = expr.as_ref() {
                let values: Option<Vec<_>> = list
                    .iter()
                    .map(|e| match e {
                        BoundExpr::Literal(d) => Some(d.clone()),
                        _ => None,
                    })
                    .collect();
                if let Some(values) = values {
                    return RestrictionShape::InList { col: s.col, values, negated: *negated };
                }
            }
            RestrictionShape::Opaque
        }
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Column(s) = expr.as_ref() {
                return RestrictionShape::IsNull { col: s.col, negated: *negated };
            }
            RestrictionShape::Opaque
        }
        BoundExpr::Like { expr, pattern, negated } => {
            if let BoundExpr::Column(s) = expr.as_ref() {
                let prefix = like_prefix(pattern);
                return RestrictionShape::Like { col: s.col, prefix, negated: *negated };
            }
            RestrictionShape::Opaque
        }
        _ => RestrictionShape::Opaque,
    }
}

/// Literal prefix of a LIKE pattern, if it has one (`'gal%'` → `gal`).
fn like_prefix(pattern: &str) -> Option<String> {
    let mut prefix = String::new();
    for ch in pattern.chars() {
        match ch {
            '%' | '_' => break,
            c => prefix.push(c),
        }
    }
    if prefix.is_empty() {
        None
    } else {
        Some(prefix)
    }
}

/// Recognize `colA = colB` across two different rels.
fn as_equijoin(e: &BoundExpr) -> Option<(Slot, Slot)> {
    let BoundExpr::Binary { op: BinOp::Eq, left, right } = e else { return None };
    match (left.as_ref(), right.as_ref()) {
        (BoundExpr::Column(a), BoundExpr::Column(b)) if a.rel != b.rel => Some((*a, *b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Catalog, Column, SqlType};
    use parinda_sql::parse_select;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
                Column::new("dec", SqlType::Float8).not_null(),
                Column::new("type", SqlType::Int2).not_null(),
                Column::new("name", SqlType::Text),
            ],
            100_000,
        );
        c.create_table(
            "specobj",
            vec![
                Column::new("specobjid", SqlType::Int8).not_null(),
                Column::new("bestobjid", SqlType::Int8).not_null(),
                Column::new("z", SqlType::Float8),
            ],
            10_000,
        );
        c
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery, BindError> {
        let c = catalog();
        bind(&parse_select(sql).unwrap(), &c)
    }

    #[test]
    fn binds_simple_query() {
        let q = bind_sql("SELECT ra, dec FROM photoobj WHERE type = 3").unwrap();
        assert_eq!(q.rels.len(), 1);
        assert_eq!(q.output.len(), 2);
        assert_eq!(q.restrictions.len(), 1);
        assert!(q.restrictions[0].shape.is_equality());
        // needed columns: ra, dec, type
        assert_eq!(q.rels[0].needed_columns, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(bind_sql("SELECT x FROM nope"), Err(BindError::UnknownTable(_))));
        assert!(matches!(
            bind_sql("SELECT missing FROM photoobj"),
            Err(BindError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_detected() {
        // objid exists in photoobj only; specobjid in specobj only — so use
        // a column we artificially duplicate: none. Instead check a column
        // present in both via z? z only in specobj. Add both tables refs.
        let err = bind_sql("SELECT objid FROM photoobj p1, photoobj p2");
        assert!(matches!(err, Err(BindError::AmbiguousColumn(_))));
    }

    #[test]
    fn duplicate_binding_detected() {
        assert!(matches!(
            bind_sql("SELECT 1 FROM photoobj, photoobj"),
            Err(BindError::DuplicateBinding(_))
        ));
    }

    #[test]
    fn equijoin_recognized() {
        let q = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.z > 0.1",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.restrictions.len(), 1);
        assert_eq!(q.joins[0].left, Slot { rel: 0, col: 0 });
        assert_eq!(q.joins[0].right, Slot { rel: 1, col: 1 });
    }

    #[test]
    fn non_equijoin_becomes_filter() {
        let q = bind_sql(
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.ra > s.z",
        )
        .unwrap();
        assert!(q.joins.is_empty());
        assert_eq!(q.join_filters.len(), 1);
    }

    #[test]
    fn shapes_classified() {
        let q = bind_sql(
            "SELECT ra FROM photoobj WHERE ra BETWEEN 1.0 AND 2.0 \
             AND type IN (3, 6) AND name LIKE 'gal%' AND dec IS NOT NULL AND 5 < objid",
        )
        .unwrap();
        let shapes: Vec<_> = q.restrictions.iter().map(|r| &r.shape).collect();
        assert!(matches!(shapes[0], RestrictionShape::Between { .. }));
        assert!(matches!(shapes[1], RestrictionShape::InList { .. }));
        assert!(
            matches!(shapes[2], RestrictionShape::Like { prefix: Some(p), .. } if p == "gal")
        );
        assert!(matches!(shapes[3], RestrictionShape::IsNull { negated: true, .. }));
        // commuted literal < column becomes Range(col > 5)
        assert!(
            matches!(shapes[4], RestrictionShape::Range { op: BinOp::Gt, .. })
        );
    }

    #[test]
    fn wildcard_expansion() {
        let q = bind_sql("SELECT * FROM specobj").unwrap();
        assert_eq!(q.output.len(), 3);
        assert_eq!(q.rels[0].needed_columns, vec![0, 1, 2]);
    }

    #[test]
    fn group_by_and_order_by_slots() {
        let q = bind_sql(
            "SELECT type, COUNT(*) FROM photoobj GROUP BY type ORDER BY type DESC",
        )
        .unwrap();
        assert_eq!(q.group_by, vec![Slot { rel: 0, col: 3 }]);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert!(q.has_aggregation());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(matches!(
            bind_sql("SELECT ra FROM photoobj WHERE COUNT(*) > 1"),
            Err(BindError::AggregateInWhere)
        ));
    }

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_prefix("gal%"), Some("gal".into()));
        assert_eq!(like_prefix("%gal"), None);
        assert_eq!(like_prefix("a_b"), Some("a".into()));
    }
}
