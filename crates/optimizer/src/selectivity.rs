//! Selectivity estimation from catalog statistics, following PostgreSQL's
//! `selfuncs.c`: MCV lookups, equi-depth histogram interpolation, and the
//! textbook default constants when statistics are missing.

use parinda_catalog::{ColumnStats, Datum};
use parinda_sql::BinOp;

use crate::query::RestrictionShape;

/// Default selectivity for equality without statistics (`DEFAULT_EQ_SEL`).
pub const DEFAULT_EQ_SEL: f64 = 0.005;
/// Default selectivity for inequalities (`DEFAULT_INEQ_SEL`).
pub const DEFAULT_INEQ_SEL: f64 = 1.0 / 3.0;
/// Default selectivity for range (BETWEEN-style) clauses
/// (`DEFAULT_RANGE_INEQ_SEL`).
pub const DEFAULT_RANGE_SEL: f64 = 0.005;
/// Default selectivity for LIKE with a literal prefix.
pub const DEFAULT_MATCH_SEL: f64 = 0.005;

/// Clamp a selectivity into (0, 1]. NaN (from degenerate statistics such
/// as NaN frequencies or zero row counts) maps to the lower bound rather
/// than propagating.
#[inline]
pub fn clamp(s: f64) -> f64 {
    if s.is_nan() {
        return 1.0e-10;
    }
    s.clamp(1.0e-10, 1.0)
}

/// Selectivity of one restriction shape.
pub fn restriction_selectivity(
    shape: &RestrictionShape,
    stats: Option<&ColumnStats>,
    row_count: f64,
) -> f64 {
    match shape {
        RestrictionShape::Eq { value, .. } => eq_selectivity(stats, row_count, value),
        RestrictionShape::Range { op, value, .. } => {
            ineq_selectivity(stats, *op, value)
        }
        RestrictionShape::Between { low, high, negated, .. } => {
            let s = between_selectivity(stats, low, high);
            if *negated {
                clamp(1.0 - s)
            } else {
                s
            }
        }
        RestrictionShape::InList { values, negated, .. } => {
            let s: f64 = values
                .iter()
                .map(|v| eq_selectivity(stats, row_count, v))
                .sum();
            let s = clamp(s);
            if *negated {
                clamp(1.0 - s)
            } else {
                s
            }
        }
        RestrictionShape::IsNull { negated, .. } => {
            let null_frac = stats.map(|s| s.null_frac).unwrap_or(0.0);
            if *negated {
                clamp(1.0 - null_frac)
            } else {
                clamp(null_frac.max(1.0e-10))
            }
        }
        RestrictionShape::Like { prefix, negated, .. } => {
            let s = match prefix {
                // Prefix LIKE behaves like a range over the prefix; without
                // string histogram arithmetic we use PostgreSQL's default
                // scaled by prefix length (longer prefix = more selective).
                Some(p) => (DEFAULT_MATCH_SEL / (p.len() as f64).max(1.0)).max(1.0e-6),
                None => DEFAULT_INEQ_SEL,
            };
            if *negated {
                clamp(1.0 - s)
            } else {
                clamp(s)
            }
        }
        RestrictionShape::Opaque => DEFAULT_EQ_SEL.sqrt(), // ~0.07, PG uses 0.5 for bool exprs; stay conservative
    }
}

/// `col = value` (PostgreSQL `eqsel`).
pub fn eq_selectivity(stats: Option<&ColumnStats>, row_count: f64, value: &Datum) -> f64 {
    let Some(s) = stats else { return DEFAULT_EQ_SEL };
    if value.is_null() {
        return 1.0e-10; // `= NULL` matches nothing
    }
    if let Some(f) = s.mcv_freq(value) {
        return clamp(f);
    }
    // Not an MCV: remaining frequency mass spread over remaining distincts.
    let nd = s.distinct_count(row_count);
    let mcv_mass = s.mcv_total_freq();
    let remaining_nd = (nd - s.mcv.len() as f64).max(1.0);
    clamp((1.0 - mcv_mass - s.null_frac).max(0.0) / remaining_nd)
}

/// `col < value`, `col <= value`, etc. (PostgreSQL `scalarltsel`).
pub fn ineq_selectivity(stats: Option<&ColumnStats>, op: BinOp, value: &Datum) -> f64 {
    let Some(s) = stats else { return DEFAULT_INEQ_SEL };
    let Some(v) = value.as_f64() else { return DEFAULT_INEQ_SEL };
    if !v.is_finite() {
        return DEFAULT_INEQ_SEL;
    }

    // Fraction of non-MCV, non-null rows below `v` from the histogram.
    let hist_frac = histogram_fraction_below(&s.histogram, v);

    // MCV mass strictly below `v`, and at exactly `v` — the latter belongs
    // to `<=` but not `<`, and to neither `>` side.
    let mut mcv_below = 0.0;
    let mut mcv_eq = 0.0;
    for (d, f) in &s.mcv {
        if let Some(x) = d.as_f64() {
            if x < v {
                mcv_below += f;
            } else if x == v {
                mcv_eq += f;
            }
        }
    }
    let hist_mass = (1.0 - s.null_frac - s.mcv_total_freq()).max(0.0);

    let below = match hist_frac {
        Some(h) => mcv_below + h * hist_mass,
        None => return DEFAULT_INEQ_SEL,
    };

    // `<=` vs `<`: the boundary value's own frequency. When the value is
    // an MCV we know its mass exactly; otherwise estimate the histogram
    // portion's average per-distinct mass, as `eqsel` would — uncapped,
    // so that a 3-distinct column without MCVs still gets `<=` at least
    // as large as `=` on the same value.
    let eq_sliver = || {
        if mcv_eq > 0.0 {
            return 0.0;
        }
        let nd = s.distinct_count(1_000_000.0);
        hist_mass / nd
    };
    let sel = match op {
        BinOp::Lt => below,
        BinOp::LtEq => below + mcv_eq + eq_sliver(),
        BinOp::Gt => 1.0 - s.null_frac - below - mcv_eq - eq_sliver(),
        BinOp::GtEq => 1.0 - s.null_frac - below,
        _ => return DEFAULT_INEQ_SEL,
    };
    clamp(sel)
}

/// `col BETWEEN low AND high`.
pub fn between_selectivity(stats: Option<&ColumnStats>, low: &Datum, high: &Datum) -> f64 {
    let (Some(s), Some(lo), Some(hi)) = (stats, low.as_f64(), high.as_f64()) else {
        return DEFAULT_RANGE_SEL;
    };
    if hi < lo {
        return 1.0e-10;
    }
    let below_hi = ineq_selectivity(Some(s), BinOp::LtEq, high);
    let below_lo = ineq_selectivity(Some(s), BinOp::Lt, low);
    clamp(below_hi - below_lo)
}

/// Position of `v` within the equi-depth histogram, as a fraction of the
/// histogram mass lying strictly below it. `None` when no histogram.
fn histogram_fraction_below(hist: &[Datum], v: f64) -> Option<f64> {
    if hist.len() < 2 {
        return None;
    }
    let bounds: Vec<f64> = hist.iter().filter_map(|d| d.as_f64()).collect();
    if bounds.len() != hist.len() || bounds.iter().any(|b| !b.is_finite()) {
        return None; // non-numeric (or corrupt) histogram
    }
    let buckets = (bounds.len() - 1) as f64;
    if v <= bounds[0] {
        return Some(0.0);
    }
    if v >= bounds[bounds.len() - 1] {
        return Some(1.0);
    }
    // Find the bucket containing v and interpolate linearly inside it.
    for i in 0..bounds.len() - 1 {
        let (lo, hi) = (bounds[i], bounds[i + 1]);
        if v >= lo && v < hi {
            let within = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            return Some((i as f64 + within) / buckets);
        }
    }
    Some(1.0)
}

/// Equijoin selectivity (PostgreSQL `eqjoinsel` without MCV matching):
/// `1 / max(nd_left, nd_right)`.
pub fn eqjoin_selectivity(
    left: Option<&ColumnStats>,
    left_rows: f64,
    right: Option<&ColumnStats>,
    right_rows: f64,
) -> f64 {
    let nd_l = left.map(|s| s.distinct_count(left_rows)).unwrap_or(left_rows.max(1.0) * 0.1);
    let nd_r = right
        .map(|s| s.distinct_count(right_rows))
        .unwrap_or(right_rows.max(1.0) * 0.1);
    clamp(1.0 / nd_l.max(nd_r).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{analyze_column, SqlType};

    fn uniform_stats(n: i64) -> ColumnStats {
        let v: Vec<Datum> = (0..n).map(Datum::Int).collect();
        analyze_column(SqlType::Int8, &v)
    }

    #[test]
    fn eq_without_stats_uses_default() {
        assert_eq!(eq_selectivity(None, 1000.0, &Datum::Int(5)), DEFAULT_EQ_SEL);
    }

    #[test]
    fn eq_on_unique_column() {
        let s = uniform_stats(10_000);
        let sel = eq_selectivity(Some(&s), 10_000.0, &Datum::Int(42));
        assert!((sel - 1.0 / 10_000.0).abs() < 1.0 / 10_000.0, "sel={sel}");
    }

    #[test]
    fn eq_null_matches_nothing() {
        let s = uniform_stats(100);
        assert!(eq_selectivity(Some(&s), 100.0, &Datum::Null) < 1e-9);
    }

    #[test]
    fn eq_mcv_hit_returns_frequency() {
        let mut v: Vec<Datum> = (0..9000).map(|_| Datum::Int(1)).collect();
        v.extend((0..1000).map(|i| Datum::Int(100 + i)));
        let s = analyze_column(SqlType::Int8, &v);
        let sel = eq_selectivity(Some(&s), 10_000.0, &Datum::Int(1));
        assert!((sel - 0.9).abs() < 0.01, "sel={sel}");
    }

    #[test]
    fn ineq_midpoint_is_half() {
        let s = uniform_stats(10_000);
        let sel = ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Int(5_000));
        assert!((sel - 0.5).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn ineq_extremes() {
        let s = uniform_stats(10_000);
        assert!(ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Int(-5)) < 0.01);
        assert!(ineq_selectivity(Some(&s), BinOp::Gt, &Datum::Int(20_000)) < 0.01);
        assert!(ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Int(20_000)) > 0.99);
    }

    #[test]
    fn lt_plus_gte_is_one() {
        let s = uniform_stats(10_000);
        let lt = ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Int(3_000));
        let gte = ineq_selectivity(Some(&s), BinOp::GtEq, &Datum::Int(3_000));
        assert!((lt + gte - 1.0).abs() < 0.01, "lt={lt} gte={gte}");
    }

    /// Regression: the MCV side-sum used `x < v` for every operator, so
    /// `col <= v` dropped the boundary value's own MCV mass and `col > v`
    /// kept it. With a 0.9-frequency MCV at the boundary the estimate was
    /// off by ~0.9.
    #[test]
    fn inclusive_bound_counts_boundary_mcv_mass() {
        // 9000 rows of value 1 (a 0.9-frequency MCV) + 1000 distinct tails.
        let mut v: Vec<Datum> = (0..9000).map(|_| Datum::Int(1)).collect();
        v.extend((0..1000).map(|i| Datum::Int(100 + i)));
        let s = analyze_column(SqlType::Int8, &v);
        assert!((s.mcv_freq(&Datum::Int(1)).unwrap() - 0.9).abs() < 0.01);

        let lteq = ineq_selectivity(Some(&s), BinOp::LtEq, &Datum::Int(1));
        assert!((lteq - 0.9).abs() < 0.02, "col <= 1 must include the MCV mass: {lteq}");

        let gt = ineq_selectivity(Some(&s), BinOp::Gt, &Datum::Int(1));
        assert!((gt - 0.1).abs() < 0.02, "col > 1 must exclude the MCV mass: {gt}");

        let lt = ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Int(1));
        assert!(lt < 0.02, "col < 1 matches almost nothing: {lt}");

        let gteq = ineq_selectivity(Some(&s), BinOp::GtEq, &Datum::Int(1));
        assert!(gteq > 0.98, "col >= 1 matches almost everything: {gteq}");
    }

    #[test]
    fn lteq_and_gt_partition_the_non_null_rows() {
        let mut v: Vec<Datum> = (0..9000).map(|_| Datum::Int(1)).collect();
        v.extend((0..1000).map(|i| Datum::Int(100 + i)));
        let s = analyze_column(SqlType::Int8, &v);
        for probe in [1, 0, 150, 500, 2000] {
            let lteq = ineq_selectivity(Some(&s), BinOp::LtEq, &Datum::Int(probe));
            let gt = ineq_selectivity(Some(&s), BinOp::Gt, &Datum::Int(probe));
            assert!((lteq + gt - 1.0).abs() < 0.03, "probe={probe} lteq={lteq} gt={gt}");
        }
    }

    #[test]
    fn nan_probe_and_corrupt_stats_stay_in_range() {
        let s = uniform_stats(1_000);
        let sel = ineq_selectivity(Some(&s), BinOp::Lt, &Datum::Float(f64::NAN));
        assert_eq!(sel, DEFAULT_INEQ_SEL);
        let sel = ineq_selectivity(Some(&s), BinOp::LtEq, &Datum::Float(f64::INFINITY));
        assert_eq!(sel, DEFAULT_INEQ_SEL);

        let mut corrupt = uniform_stats(1_000);
        corrupt.histogram = vec![Datum::Float(f64::NAN), Datum::Float(1.0)];
        let sel = ineq_selectivity(Some(&corrupt), BinOp::Lt, &Datum::Int(5));
        assert_eq!(sel, DEFAULT_INEQ_SEL);

        assert_eq!(clamp(f64::NAN), 1.0e-10);
        assert_eq!(clamp(f64::NEG_INFINITY), 1.0e-10);
        assert_eq!(clamp(f64::INFINITY), 1.0);
    }

    #[test]
    fn between_is_difference() {
        let s = uniform_stats(10_000);
        let sel = between_selectivity(Some(&s), &Datum::Int(2_000), &Datum::Int(4_000));
        assert!((sel - 0.2).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn empty_between_is_tiny() {
        let s = uniform_stats(100);
        assert!(between_selectivity(Some(&s), &Datum::Int(50), &Datum::Int(10)) < 1e-9);
    }

    #[test]
    fn in_list_sums() {
        let s = uniform_stats(1_000);
        let shape = RestrictionShape::InList {
            col: 0,
            values: vec![Datum::Int(1), Datum::Int(2), Datum::Int(3)],
            negated: false,
        };
        let sel = restriction_selectivity(&shape, Some(&s), 1_000.0);
        assert!((sel - 3.0 / 1_000.0).abs() < 2.0 / 1_000.0, "sel={sel}");
    }

    #[test]
    fn is_null_uses_null_frac() {
        let mut v: Vec<Datum> = (0..900).map(Datum::Int).collect();
        v.extend((0..100).map(|_| Datum::Null));
        let s = analyze_column(SqlType::Int8, &v);
        let shape = RestrictionShape::IsNull { col: 0, negated: false };
        let sel = restriction_selectivity(&shape, Some(&s), 1_000.0);
        assert!((sel - 0.1).abs() < 0.01);
        let not_null = RestrictionShape::IsNull { col: 0, negated: true };
        let sel2 = restriction_selectivity(&not_null, Some(&s), 1_000.0);
        assert!((sel2 - 0.9).abs() < 0.01);
    }

    #[test]
    fn like_prefix_more_selective_than_bare() {
        let with = RestrictionShape::Like { col: 0, prefix: Some("gal".into()), negated: false };
        let without = RestrictionShape::Like { col: 0, prefix: None, negated: false };
        assert!(
            restriction_selectivity(&with, None, 1000.0)
                < restriction_selectivity(&without, None, 1000.0)
        );
    }

    #[test]
    fn eqjoin_uses_larger_distinct() {
        let big = uniform_stats(100_000);
        let small = uniform_stats(100);
        let sel = eqjoin_selectivity(Some(&big), 100_000.0, Some(&small), 100.0);
        assert!((sel - 1.0 / 100_000.0).abs() < 1e-7, "sel={sel}");
    }

    #[test]
    fn selectivities_always_clamped() {
        for shape in [
            RestrictionShape::Eq { col: 0, value: Datum::Int(1) },
            RestrictionShape::Opaque,
            RestrictionShape::Like { col: 0, prefix: None, negated: true },
        ] {
            let s = restriction_selectivity(&shape, None, 0.0);
            assert!(s > 0.0 && s <= 1.0);
        }
    }
}
