//! Bound (analyzed) query representation: the planner's view of a SELECT
//! after names are resolved against the catalog.

use parinda_catalog::{Datum, TableId};
use parinda_sql::ast::AggFunc;

/// A column slot: (range-table position, column position in that table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    /// Index into [`BoundQuery::rels`].
    pub rel: usize,
    /// Column index within the rel's table.
    pub col: usize,
}

/// One base relation of the FROM list ("range table entry").
#[derive(Debug, Clone, PartialEq)]
pub struct BaseRel {
    /// Name the query uses for this rel (alias or table name).
    pub binding: String,
    /// Underlying catalog table.
    pub table: TableId,
    /// Columns of the table this query touches anywhere, sorted.
    pub needed_columns: Vec<usize>,
}

/// Expression with column references resolved to [`Slot`]s.
///
/// Mirrors `parinda_sql::Expr` minus the parts binding eliminates.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Column(Slot),
    Literal(Datum),
    Binary {
        op: parinda_sql::BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: String,
        negated: bool,
    },
}

impl BoundExpr {
    /// The set of rels referenced by this expression (as a bitmask).
    pub fn rel_mask(&self) -> u64 {
        let mut mask = 0u64;
        self.visit_slots(&mut |s| mask |= 1 << s.rel);
        mask
    }

    /// Visit every column slot.
    pub fn visit_slots<F: FnMut(Slot)>(&self, f: &mut F) {
        match self {
            BoundExpr::Column(s) => f(*s),
            BoundExpr::Literal(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                left.visit_slots(f);
                right.visit_slots(f);
            }
            BoundExpr::Not(e) => e.visit_slots(f),
            BoundExpr::Between { expr, low, high, .. } => {
                expr.visit_slots(f);
                low.visit_slots(f);
                high.visit_slots(f);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.visit_slots(f);
                for e in list {
                    e.visit_slots(f);
                }
            }
            BoundExpr::IsNull { expr, .. } => expr.visit_slots(f),
            BoundExpr::Like { expr, .. } => expr.visit_slots(f),
        }
    }

    /// If this is `slot op literal` (or the commuted form), normalize to
    /// (slot, op, literal). Used by restriction analysis.
    pub fn as_column_op_literal(&self) -> Option<(Slot, parinda_sql::BinOp, &Datum)> {
        let BoundExpr::Binary { op, left, right } = self else { return None };
        if !op.is_comparison() {
            return None;
        }
        match (left.as_ref(), right.as_ref()) {
            (BoundExpr::Column(s), BoundExpr::Literal(d)) => Some((*s, *op, d)),
            (BoundExpr::Literal(d), BoundExpr::Column(s)) => {
                op.commute().map(|o| (*s, o, d))
            }
            _ => None,
        }
    }
}

/// A single-relation restriction clause with its pre-analyzed shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// Rel this clause restricts.
    pub rel: usize,
    /// The full predicate, for execution and EXPLAIN.
    pub expr: BoundExpr,
    /// Shape recognized by the selectivity estimator.
    pub shape: RestrictionShape,
}

/// Recognized predicate shapes (what the selectivity module understands).
#[derive(Debug, Clone, PartialEq)]
pub enum RestrictionShape {
    /// `col = literal`
    Eq { col: usize, value: Datum },
    /// `col <,<=,>,>= literal` — op is the original comparison.
    Range { col: usize, op: parinda_sql::BinOp, value: Datum },
    /// `col BETWEEN low AND high`
    Between { col: usize, low: Datum, high: Datum, negated: bool },
    /// `col IN (v1 … vn)`
    InList { col: usize, values: Vec<Datum>, negated: bool },
    /// `col IS [NOT] NULL`
    IsNull { col: usize, negated: bool },
    /// `col LIKE pattern`
    Like { col: usize, prefix: Option<String>, negated: bool },
    /// Anything else (OR trees, expressions over several columns, …).
    Opaque,
}

impl RestrictionShape {
    /// The restricted column for index matching, when the shape names one.
    pub fn column(&self) -> Option<usize> {
        match self {
            RestrictionShape::Eq { col, .. }
            | RestrictionShape::Range { col, .. }
            | RestrictionShape::Between { col, .. }
            | RestrictionShape::InList { col, .. }
            | RestrictionShape::IsNull { col, .. }
            | RestrictionShape::Like { col, .. } => Some(*col),
            RestrictionShape::Opaque => None,
        }
    }

    /// True when the shape pins the column to a single value (usable as an
    /// index equality prefix).
    pub fn is_equality(&self) -> bool {
        matches!(self, RestrictionShape::Eq { .. })
    }

    /// True when the shape bounds the column (usable as the range tail of
    /// an index condition).
    pub fn is_range(&self) -> bool {
        matches!(
            self,
            RestrictionShape::Range { .. } | RestrictionShape::Between { negated: false, .. }
        )
    }
}

/// An equijoin edge between two rels.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPred {
    pub left: Slot,
    pub right: Slot,
    /// Original predicate (for execution / EXPLAIN).
    pub expr: BoundExpr,
}

impl JoinPred {
    /// Bitmask of the two joined rels.
    pub fn rel_mask(&self) -> u64 {
        (1 << self.left.rel) | (1 << self.right.rel)
    }
}

/// An output expression of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputItem {
    pub expr: BoundOutput,
    pub name: String,
}

/// SELECT-list expression: scalar or aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundOutput {
    Scalar(BoundExpr),
    Agg {
        func: AggFunc,
        /// `None` = `COUNT(*)`.
        arg: Option<BoundExpr>,
        distinct: bool,
    },
}

impl BoundOutput {
    /// Is this an aggregate?
    pub fn is_agg(&self) -> bool {
        matches!(self, BoundOutput::Agg { .. })
    }
}

/// ORDER BY key over a column slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub slot: Slot,
    pub desc: bool,
}

/// The planner's input: a fully-bound query.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    pub rels: Vec<BaseRel>,
    pub restrictions: Vec<Restriction>,
    pub joins: Vec<JoinPred>,
    /// Join-filter predicates that reference ≥ 2 rels but are not simple
    /// equijoins (applied at the join that first covers their rels).
    pub join_filters: Vec<BoundExpr>,
    pub output: Vec<OutputItem>,
    pub group_by: Vec<Slot>,
    pub order_by: Vec<SortKey>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

impl BoundQuery {
    /// Does the query aggregate (GROUP BY or aggregate outputs)?
    pub fn has_aggregation(&self) -> bool {
        !self.group_by.is_empty() || self.output.iter().any(|o| o.expr.is_agg())
    }

    /// All restrictions on one rel.
    pub fn restrictions_on(&self, rel: usize) -> Vec<&Restriction> {
        self.restrictions.iter().filter(|r| r.rel == rel).collect()
    }

    /// Bitmask with one bit per rel.
    pub fn all_rels_mask(&self) -> u64 {
        (1u64 << self.rels.len()) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_sql::BinOp;

    fn slot(rel: usize, col: usize) -> Slot {
        Slot { rel, col }
    }

    #[test]
    fn rel_mask_collects_all_rels() {
        let e = BoundExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(BoundExpr::Column(slot(0, 1))),
            right: Box::new(BoundExpr::Column(slot(2, 0))),
        };
        assert_eq!(e.rel_mask(), 0b101);
    }

    #[test]
    fn column_op_literal_normalizes_commuted_form() {
        let e = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Literal(Datum::Int(5))),
            right: Box::new(BoundExpr::Column(slot(0, 3))),
        };
        let (s, op, d) = e.as_column_op_literal().unwrap();
        assert_eq!(s, slot(0, 3));
        assert_eq!(op, BinOp::Gt);
        assert_eq!(d, &Datum::Int(5));
    }

    #[test]
    fn non_comparison_is_not_col_op_literal() {
        let e = BoundExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BoundExpr::Column(slot(0, 0))),
            right: Box::new(BoundExpr::Literal(Datum::Int(1))),
        };
        assert!(e.as_column_op_literal().is_none());
    }

    #[test]
    fn shape_classification_helpers() {
        let eq = RestrictionShape::Eq { col: 2, value: Datum::Int(1) };
        assert!(eq.is_equality());
        assert_eq!(eq.column(), Some(2));
        let rng = RestrictionShape::Range { col: 1, op: BinOp::Lt, value: Datum::Int(9) };
        assert!(rng.is_range());
        assert!(!rng.is_equality());
        assert_eq!(RestrictionShape::Opaque.column(), None);
    }

    #[test]
    fn join_pred_mask() {
        let jp = JoinPred {
            left: slot(0, 0),
            right: slot(3, 1),
            expr: BoundExpr::Literal(Datum::Bool(true)),
        };
        assert_eq!(jp.rel_mask(), 0b1001);
    }
}
