//! Physical plan trees: what the planner emits, EXPLAIN prints, and the
//! executor runs.

use parinda_catalog::{Datum, IndexId, TableId};

use crate::query::{BoundExpr, OutputItem, Slot};

/// Sort key by output position (used above projection/aggregation where
/// slot coordinates no longer apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosKey {
    /// Position in the input node's output row.
    pub pos: usize,
    /// Descending order?
    pub desc: bool,
}

/// Startup + total cost, in PostgreSQL cost units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Cost to produce the first tuple.
    pub startup: f64,
    /// Cost to produce all tuples.
    pub total: f64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { startup: 0.0, total: 0.0 };

    /// Add a flat amount to both components.
    pub fn plus(self, amount: f64) -> Cost {
        Cost { startup: self.startup + amount, total: self.total + amount }
    }
}

/// Bounds of the range portion of an index condition.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRange {
    /// Lower bound (value, inclusive) on the first non-equality key column.
    pub low: Option<(Datum, bool)>,
    /// Upper bound (value, inclusive).
    pub high: Option<(Datum, bool)>,
}

/// An equijoin key pair in output coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinKey {
    pub outer: Slot,
    pub inner: Slot,
}

/// A node of the physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    pub kind: PlanKind,
    pub cost: Cost,
    /// Estimated output row count.
    pub rows: f64,
    /// Estimated average output row width in bytes.
    pub width: f64,
    /// Column slots this node produces, in order.
    pub output: Vec<Slot>,
}

/// Plan operator kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Full heap scan with optional filter.
    SeqScan {
        rel: usize,
        table: TableId,
        filter: Vec<BoundExpr>,
    },
    /// B-tree index scan: equality prefix + optional range, then residual
    /// filter after the heap fetch.
    IndexScan {
        rel: usize,
        table: TableId,
        index: IndexId,
        /// Constant values pinned on the leading key columns.
        eq_prefix: Vec<Datum>,
        /// Outer-row columns supplying further key values at runtime
        /// (parameterized scan under a nested loop).
        param_prefix: Vec<Slot>,
        /// Range condition on the key column right after the prefix.
        range: Option<IndexRange>,
        filter: Vec<BoundExpr>,
    },
    /// Nested-loop join; `preds` are the equijoin conditions checked per
    /// pair, `filter` any extra join filters.
    NestLoop {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        keys: Vec<JoinKey>,
        filter: Vec<BoundExpr>,
    },
    /// Hash join on equijoin keys (inner side builds).
    HashJoin {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        keys: Vec<JoinKey>,
        filter: Vec<BoundExpr>,
    },
    /// Merge join; inputs must be sorted on the keys.
    MergeJoin {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        keys: Vec<JoinKey>,
        filter: Vec<BoundExpr>,
    },
    /// Buffer the child's output for cheap rescans (nest-loop inner).
    Materialize { input: Box<PlanNode> },
    /// Explicit sort, keyed by output positions of the input.
    Sort {
        input: Box<PlanNode>,
        keys: Vec<PosKey>,
    },
    /// Grouped or plain aggregation; produces the final SELECT list.
    Aggregate {
        input: Box<PlanNode>,
        group_by: Vec<Slot>,
        items: Vec<OutputItem>,
    },
    /// Scalar projection of the SELECT list.
    Project {
        input: Box<PlanNode>,
        items: Vec<OutputItem>,
    },
    /// Remove duplicate output rows (DISTINCT).
    Unique { input: Box<PlanNode> },
    /// Stop after `n` rows.
    Limit { input: Box<PlanNode>, n: u64 },
}

impl PlanNode {
    /// Child nodes, for tree walks.
    pub fn children(&self) -> Vec<&PlanNode> {
        match &self.kind {
            PlanKind::SeqScan { .. } | PlanKind::IndexScan { .. } => vec![],
            PlanKind::NestLoop { outer, inner, .. }
            | PlanKind::HashJoin { outer, inner, .. }
            | PlanKind::MergeJoin { outer, inner, .. } => vec![outer, inner],
            PlanKind::Materialize { input }
            | PlanKind::Sort { input, .. }
            | PlanKind::Aggregate { input, .. }
            | PlanKind::Project { input, .. }
            | PlanKind::Unique { input }
            | PlanKind::Limit { input, .. } => vec![input],
        }
    }

    /// Operator name as shown by EXPLAIN.
    pub fn node_name(&self) -> &'static str {
        match &self.kind {
            PlanKind::SeqScan { .. } => "Seq Scan",
            PlanKind::IndexScan { .. } => "Index Scan",
            PlanKind::NestLoop { .. } => "Nested Loop",
            PlanKind::HashJoin { .. } => "Hash Join",
            PlanKind::MergeJoin { .. } => "Merge Join",
            PlanKind::Materialize { .. } => "Materialize",
            PlanKind::Sort { .. } => "Sort",
            PlanKind::Aggregate { .. } => "Aggregate",
            PlanKind::Project { .. } => "Project",
            PlanKind::Unique { .. } => "Unique",
            PlanKind::Limit { .. } => "Limit",
        }
    }

    /// All index ids used anywhere in the plan (for benefit attribution:
    /// "for each query the list of used suggested indexes" — paper §4).
    pub fn indexes_used(&self) -> Vec<IndexId> {
        let mut out = Vec::new();
        self.walk(&mut |n| {
            if let PlanKind::IndexScan { index, .. } = &n.kind {
                out.push(*index);
            }
        });
        out
    }

    /// All base tables scanned anywhere in the plan.
    pub fn tables_scanned(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.walk(&mut |n| match &n.kind {
            PlanKind::SeqScan { table, .. } | PlanKind::IndexScan { table, .. } => {
                out.push(*table)
            }
            _ => {}
        });
        out
    }

    /// Pre-order walk.
    pub fn walk<'a, F: FnMut(&'a PlanNode)>(&'a self, f: &mut F) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(rel: usize) -> PlanNode {
        PlanNode {
            kind: PlanKind::SeqScan { rel, table: TableId(rel as u32), filter: vec![] },
            cost: Cost { startup: 0.0, total: 100.0 },
            rows: 10.0,
            width: 8.0,
            output: vec![Slot { rel, col: 0 }],
        }
    }

    fn join(a: PlanNode, b: PlanNode) -> PlanNode {
        PlanNode {
            output: a.output.iter().chain(&b.output).copied().collect(),
            kind: PlanKind::HashJoin {
                outer: Box::new(a),
                inner: Box::new(b),
                keys: vec![],
                filter: vec![],
            },
            cost: Cost { startup: 10.0, total: 300.0 },
            rows: 20.0,
            width: 16.0,
        }
    }

    #[test]
    fn walk_counts_nodes() {
        let p = join(leaf(0), leaf(1));
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn tables_scanned_collects_leaves() {
        let p = join(leaf(0), leaf(1));
        assert_eq!(p.tables_scanned(), vec![TableId(0), TableId(1)]);
    }

    #[test]
    fn cost_plus() {
        let c = Cost { startup: 1.0, total: 2.0 }.plus(0.5);
        assert_eq!(c.startup, 1.5);
        assert_eq!(c.total, 2.5);
    }

    #[test]
    fn output_concatenates_in_join() {
        let p = join(leaf(0), leaf(1));
        assert_eq!(p.output.len(), 2);
    }
}
