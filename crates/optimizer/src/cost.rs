//! Cost formulas, following PostgreSQL's `costsize.c` closely enough that
//! relative plan choices match (which is all PARINDA's advisors rely on).

use crate::params::CostParams;
use crate::plan::Cost;

/// Sequential scan over a heap.
pub fn seq_scan_cost(p: &CostParams, pages: u64, rows: f64, quals: usize) -> Cost {
    let io = pages as f64 * p.seq_page_cost;
    let cpu = rows * (p.cpu_tuple_cost + quals as f64 * p.cpu_operator_cost);
    Cost { startup: 0.0, total: io + cpu }
}

/// Inputs for [`index_scan_cost`].
#[derive(Debug, Clone, Copy)]
pub struct IndexScanInputs {
    /// Leaf pages of the index.
    pub index_pages: u64,
    /// Height of the tree above the leaves.
    pub index_height: u32,
    /// Heap pages of the table.
    pub table_pages: u64,
    /// Table cardinality.
    pub table_rows: f64,
    /// Fraction of index entries satisfying the index condition.
    pub index_selectivity: f64,
    /// Physical correlation of the leading key column in the heap.
    pub correlation: f64,
}

/// B-tree index scan: descent + leaf pages + heap fetches interpolated by
/// correlation (the `cost_index` min_IO/max_IO interpolation).
pub fn index_scan_cost(p: &CostParams, inp: IndexScanInputs, residual_quals: usize) -> Cost {
    let sel = inp.index_selectivity.clamp(0.0, 1.0);
    let tuples_fetched = (inp.table_rows * sel).max(1.0).min(inp.table_rows.max(1.0));

    // Descent: one random page per level plus binary-search comparisons.
    let descent = inp.index_height as f64 * p.random_page_cost
        + 50.0 * p.cpu_operator_cost * (inp.index_height as f64 + 1.0);

    // Leaf pages scanned sequentially along the leaf chain.
    let leaf_pages = (inp.index_pages as f64 * sel).ceil().max(1.0);
    let leaf_io = leaf_pages * p.seq_page_cost;

    // Heap accesses: perfectly correlated -> contiguous pages;
    // uncorrelated -> one random page per tuple, capped by Mackert-Lohman
    // style saturation at the table size scaled by cache effectiveness.
    let min_io = (inp.table_pages as f64 * sel).ceil().max(1.0) * p.seq_page_cost;
    let max_pages = mackert_lohman_pages(tuples_fetched, inp.table_pages, p.effective_cache_pages);
    let max_io = max_pages * p.random_page_cost;
    // Interpolate toward min_io as correlation^2 -> 1.
    let c2 = inp.correlation * inp.correlation;
    let heap_io = if min_io < max_io { max_io - c2 * (max_io - min_io) } else { min_io };

    let cpu = tuples_fetched
        * (p.cpu_index_tuple_cost + p.cpu_tuple_cost + residual_quals as f64 * p.cpu_operator_cost);

    Cost { startup: descent, total: descent + leaf_io + heap_io + cpu }
}

/// Mackert–Lohman page-fetch estimate: expected distinct pages touched by
/// `tuples` random probes into a table of `pages` pages.
pub fn mackert_lohman_pages(tuples: f64, pages: u64, cache_pages: u64) -> f64 {
    let t = pages.max(1) as f64;
    let n = tuples.max(0.0);
    let b = cache_pages.max(1) as f64;
    if n <= 0.0 {
        return 1.0;
    }
    // Classic approximation from the paper (and PostgreSQL's
    // index_pages_fetched): 2TN / (2T + N), saturating at T when cached.
    let fetched = (2.0 * t * n) / (2.0 * t + n);
    if t <= b {
        fetched.min(t).max(1.0)
    } else {
        // partially cached: costlier, but still bounded by N and T
        fetched.min(n).min(t).max(1.0)
    }
}

/// In-memory quicksort cost (PostgreSQL `cost_sort`, memory branch; the
/// disk branch adds IO once the data exceeds work_mem).
pub fn sort_cost(p: &CostParams, input_total: f64, rows: f64, width: f64) -> Cost {
    let rows = rows.max(2.0);
    let cmp = 2.0 * p.cpu_operator_cost;
    let log2n = rows.log2();
    let mut startup = input_total + cmp * rows * log2n;
    // External sort: charge page IO on spill.
    let bytes = rows * width.max(1.0);
    if bytes > p.work_mem_bytes as f64 {
        let pages = bytes / 8192.0;
        // two passes: write runs + read for merge (75% sequential charge)
        startup += 2.0 * pages * (p.seq_page_cost * 0.75 + p.random_page_cost * 0.25);
    }
    let run = rows * p.cpu_operator_cost;
    Cost { startup, total: startup + run }
}

/// Materialize: pay tuple copy once, rescans are cheap.
pub fn materialize_cost(p: &CostParams, input_total: f64, rows: f64) -> Cost {
    Cost { startup: 0.0, total: input_total + rows * 2.0 * p.cpu_operator_cost }
}

/// Cost of rescanning a materialized relation.
pub fn materialize_rescan_cost(p: &CostParams, rows: f64) -> f64 {
    rows * p.cpu_operator_cost
}

/// Nested loop: outer + N rescans of the inner.
pub fn nestloop_cost(
    p: &CostParams,
    outer: Cost,
    outer_rows: f64,
    inner_first: Cost,
    inner_rescan_total: f64,
    out_rows: f64,
) -> Cost {
    let rescans = (outer_rows - 1.0).max(0.0);
    let startup = outer.startup + inner_first.startup;
    let total = outer.total + inner_first.total + rescans * inner_rescan_total
        + out_rows * p.cpu_tuple_cost;
    Cost { startup, total }
}

/// Hash join: build the inner side, probe with the outer.
pub fn hashjoin_cost(
    p: &CostParams,
    outer: Cost,
    outer_rows: f64,
    inner: Cost,
    inner_rows: f64,
    inner_width: f64,
    out_rows: f64,
) -> Cost {
    let build = inner.total + inner_rows * (p.cpu_operator_cost + p.cpu_tuple_cost);
    let mut probe = outer_rows * p.cpu_operator_cost;
    // Charge batching IO when the hash table exceeds work_mem.
    let bytes = inner_rows * inner_width.max(1.0);
    if bytes > p.work_mem_bytes as f64 {
        let pages = bytes / 8192.0;
        probe += 2.0 * pages * p.seq_page_cost;
    }
    let startup = outer.startup + build;
    let total = startup + (outer.total - outer.startup) + probe + out_rows * p.cpu_tuple_cost;
    Cost { startup, total }
}

/// Merge join over pre-sorted inputs: one interleaved pass.
pub fn mergejoin_cost(
    p: &CostParams,
    outer: Cost,
    outer_rows: f64,
    inner: Cost,
    inner_rows: f64,
    out_rows: f64,
) -> Cost {
    let startup = outer.startup + inner.startup;
    let merge = (outer_rows + inner_rows) * p.cpu_operator_cost;
    let total = outer.total + inner.total + merge + out_rows * p.cpu_tuple_cost;
    Cost { startup, total }
}

/// Hash aggregation: one pass + one output tuple per group.
pub fn agg_cost(p: &CostParams, input: Cost, input_rows: f64, groups: f64, naggs: usize) -> Cost {
    let pass = input_rows * p.cpu_operator_cost * (naggs.max(1)) as f64;
    let startup = input.total + pass;
    Cost { startup, total: startup + groups.max(1.0) * p.cpu_tuple_cost }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn seq_scan_matches_textbook_formula() {
        // 100 pages, 1000 rows, 1 qual: 100 + 1000*(0.01+0.0025) = 112.5
        let c = seq_scan_cost(&p(), 100, 1000.0, 1);
        assert!((c.total - 112.5).abs() < 1e-9);
        assert_eq!(c.startup, 0.0);
    }

    #[test]
    fn selective_index_scan_beats_seqscan() {
        let seq = seq_scan_cost(&p(), 10_000, 1_000_000.0, 1);
        let idx = index_scan_cost(
            &p(),
            IndexScanInputs {
                index_pages: 3000,
                index_height: 2,
                table_pages: 10_000,
                table_rows: 1_000_000.0,
                index_selectivity: 1e-5,
                correlation: 0.0,
            },
            0,
        );
        assert!(idx.total < seq.total, "idx={} seq={}", idx.total, seq.total);
    }

    #[test]
    fn unselective_index_scan_loses_to_seqscan() {
        let seq = seq_scan_cost(&p(), 10_000, 1_000_000.0, 1);
        let idx = index_scan_cost(
            &p(),
            IndexScanInputs {
                index_pages: 3000,
                index_height: 2,
                table_pages: 10_000,
                table_rows: 1_000_000.0,
                index_selectivity: 0.5,
                correlation: 0.0,
            },
            0,
        );
        assert!(idx.total > seq.total, "idx={} seq={}", idx.total, seq.total);
    }

    #[test]
    fn correlation_reduces_index_cost() {
        let base = IndexScanInputs {
            index_pages: 3000,
            index_height: 2,
            table_pages: 10_000,
            table_rows: 1_000_000.0,
            index_selectivity: 0.01,
            correlation: 0.0,
        };
        let random = index_scan_cost(&p(), base, 0);
        let clustered = index_scan_cost(&p(), IndexScanInputs { correlation: 1.0, ..base }, 0);
        assert!(clustered.total < random.total);
    }

    #[test]
    fn mackert_lohman_saturates() {
        assert!(mackert_lohman_pages(10.0, 1000, 100_000) <= 10.0);
        let many = mackert_lohman_pages(1e9, 1000, 100_000);
        assert!(many <= 1000.0 + 1e-6);
        assert!(mackert_lohman_pages(0.0, 1000, 100) == 1.0);
    }

    #[test]
    fn sort_cost_nlogn() {
        let small = sort_cost(&p(), 0.0, 1_000.0, 8.0);
        let big = sort_cost(&p(), 0.0, 100_000.0, 8.0);
        assert!(big.total > 100.0 * small.total * 0.5);
        assert!(big.startup > 0.0);
    }

    #[test]
    fn sort_spill_costs_more() {
        let mut params = p();
        params.work_mem_bytes = 1024;
        let spill = sort_cost(&params, 0.0, 10_000.0, 100.0);
        params.work_mem_bytes = 1 << 30;
        let mem = sort_cost(&params, 0.0, 10_000.0, 100.0);
        assert!(spill.total > mem.total);
    }

    #[test]
    fn nestloop_scales_with_outer_rows() {
        let outer = Cost { startup: 0.0, total: 100.0 };
        let inner = Cost { startup: 0.0, total: 10.0 };
        let small = nestloop_cost(&p(), outer, 10.0, inner, 10.0, 100.0);
        let large = nestloop_cost(&p(), outer, 1000.0, inner, 10.0, 100.0);
        assert!(large.total > small.total);
    }

    #[test]
    fn hashjoin_build_is_startup() {
        let outer = Cost { startup: 0.0, total: 100.0 };
        let inner = Cost { startup: 0.0, total: 50.0 };
        let c = hashjoin_cost(&p(), outer, 1000.0, inner, 500.0, 16.0, 1000.0);
        assert!(c.startup >= 50.0);
        assert!(c.total > c.startup);
    }

    #[test]
    fn mergejoin_linear_in_inputs() {
        let a = Cost { startup: 0.0, total: 10.0 };
        let c1 = mergejoin_cost(&p(), a, 1000.0, a, 1000.0, 100.0);
        let c2 = mergejoin_cost(&p(), a, 10_000.0, a, 10_000.0, 100.0);
        assert!(c2.total > c1.total);
    }

    #[test]
    fn agg_cost_has_group_output() {
        let input = Cost { startup: 0.0, total: 100.0 };
        let c = agg_cost(&p(), input, 10_000.0, 10.0, 2);
        assert!(c.startup > 100.0);
        assert!(c.total > c.startup);
    }
}
