//! Planner cost parameters and feature flags.
//!
//! Values are PostgreSQL 8.3 defaults. The what-if join component (paper
//! §3.2) drives [`PlannerFlags::enable_nestloop`]; INUM caches one plan per
//! flag setting.

/// Cost-model constants (`postgresql.conf` planner GUCs).
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Cost of a sequentially-fetched page (`seq_page_cost`).
    pub seq_page_cost: f64,
    /// Cost of a randomly-fetched page (`random_page_cost`).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple (`cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (`cpu_index_tuple_cost`).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/function call (`cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// Memory available to sorts and hashes, in bytes (`work_mem`).
    pub work_mem_bytes: u64,
    /// Pages assumed cached across repeated index scans
    /// (`effective_cache_size`).
    pub effective_cache_pages: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            work_mem_bytes: 1024 * 1024, // 8.3 default: 1 MB
            effective_cache_pages: 16_384, // 128 MB / 8 KB
        }
    }
}

/// Plan-type enable flags (`enable_*` GUCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerFlags {
    pub enable_seqscan: bool,
    pub enable_indexscan: bool,
    pub enable_nestloop: bool,
    pub enable_hashjoin: bool,
    pub enable_mergejoin: bool,
    pub enable_sort: bool,
}

impl Default for PlannerFlags {
    fn default() -> Self {
        PlannerFlags {
            enable_seqscan: true,
            enable_indexscan: true,
            enable_nestloop: true,
            enable_hashjoin: true,
            enable_mergejoin: true,
            enable_sort: true,
        }
    }
}

/// Cost penalty applied to disabled plan types instead of excluding them
/// outright, exactly like PostgreSQL's `disable_cost` — a disabled method
/// can still be chosen when it is the only way to execute the query.
pub const DISABLE_COST: f64 = 1.0e10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres_83() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
        assert_eq!(p.cpu_index_tuple_cost, 0.005);
        assert_eq!(p.cpu_operator_cost, 0.0025);
    }

    #[test]
    fn all_plan_types_enabled_by_default() {
        let f = PlannerFlags::default();
        assert!(f.enable_seqscan && f.enable_indexscan && f.enable_nestloop);
        assert!(f.enable_hashjoin && f.enable_mergejoin && f.enable_sort);
    }
}
