//! # parinda-optimizer
//!
//! A from-scratch cost-based query optimizer that mirrors PostgreSQL 8.3's
//! planner closely enough for physical-design work: the same cost-model
//! constants, statistics-driven selectivity estimation, access-path
//! generation, System-R dynamic-programming join enumeration, `enable_*`
//! flags (used by the paper's what-if join component), and EXPLAIN output.
//!
//! The planner reads all physical-design metadata through
//! [`parinda_catalog::MetadataProvider`] — the substrate's version of the
//! PostgreSQL planner hooks PARINDA modifies (paper §3.1) — so the what-if
//! layer can inject hypothetical indexes and tables without this crate
//! knowing.

#![allow(missing_docs)]

pub mod bind;
pub mod cost;
pub mod explain;
pub mod params;
pub mod plan;
pub mod planner;
pub mod query;
pub mod selectivity;

pub use bind::{bind, BindError};
pub use explain::{breakdown, explain, render_breakdown, BreakdownRow};
pub use params::{CostParams, PlannerFlags, DISABLE_COST};
pub use plan::{Cost, IndexRange, JoinKey, PlanKind, PlanNode, PosKey};
pub use planner::{plan_query, PlanError};
pub use query::{BoundExpr, BoundOutput, BoundQuery, OutputItem, Slot, SortKey};

use parinda_catalog::MetadataProvider;

/// One-stop shop: bind and plan a parsed SELECT with default parameters.
pub fn optimize(
    select: &parinda_sql::Select,
    meta: &dyn MetadataProvider,
) -> Result<(BoundQuery, PlanNode), OptimizeError> {
    optimize_with(select, meta, &CostParams::default(), &PlannerFlags::default())
}

/// Bind and plan with explicit parameters and flags.
pub fn optimize_with(
    select: &parinda_sql::Select,
    meta: &dyn MetadataProvider,
    params: &CostParams,
    flags: &PlannerFlags,
) -> Result<(BoundQuery, PlanNode), OptimizeError> {
    let bound = bind(select, meta)?;
    let plan = plan_query(&bound, meta, params, flags)?;
    Ok((bound, plan))
}

/// Error from [`optimize`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// Name resolution failed.
    Bind(BindError),
    /// Planning failed.
    Plan(PlanError),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Bind(e) => write!(f, "{e}"),
            OptimizeError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<BindError> for OptimizeError {
    fn from(e: BindError) -> Self {
        OptimizeError::Bind(e)
    }
}

impl From<PlanError> for OptimizeError {
    fn from(e: PlanError) -> Self {
        OptimizeError::Plan(e)
    }
}
