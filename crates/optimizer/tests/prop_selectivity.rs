//! Property tests for selectivity estimation and cost monotonicity.

use parinda_catalog::{analyze_column, Datum, SqlType};
use parinda_optimizer::cost::{index_scan_cost, seq_scan_cost, IndexScanInputs};
use parinda_optimizer::query::RestrictionShape;
use parinda_optimizer::selectivity::{
    between_selectivity, eq_selectivity, ineq_selectivity, restriction_selectivity,
};
use parinda_optimizer::CostParams;
use parinda_sql::BinOp;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-500i64..500, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn selectivities_always_in_unit_interval(values in data_strategy(), probe in -600i64..600) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let stats = analyze_column(SqlType::Int8, &data);
        let n = values.len() as f64;
        for sel in [
            eq_selectivity(Some(&stats), n, &Datum::Int(probe)),
            ineq_selectivity(Some(&stats), BinOp::Lt, &Datum::Int(probe)),
            ineq_selectivity(Some(&stats), BinOp::GtEq, &Datum::Int(probe)),
            between_selectivity(Some(&stats), &Datum::Int(probe), &Datum::Int(probe + 50)),
        ] {
            prop_assert!(sel > 0.0 && sel <= 1.0, "sel={sel}");
        }
    }

    #[test]
    fn lt_is_monotone_in_the_bound(values in data_strategy(), a in -600i64..600, d in 0i64..200) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let stats = analyze_column(SqlType::Int8, &data);
        let s1 = ineq_selectivity(Some(&stats), BinOp::Lt, &Datum::Int(a));
        let s2 = ineq_selectivity(Some(&stats), BinOp::Lt, &Datum::Int(a + d));
        prop_assert!(s2 >= s1 - 0.02, "lt({a})={s1} > lt({})={s2}", a + d);
    }

    #[test]
    fn between_subinterval_is_smaller(
        values in data_strategy(),
        lo in -400i64..400,
        w1 in 0i64..100,
        w2 in 0i64..100,
    ) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let stats = analyze_column(SqlType::Int8, &data);
        let narrow = between_selectivity(Some(&stats), &Datum::Int(lo), &Datum::Int(lo + w1));
        let wide = between_selectivity(Some(&stats), &Datum::Int(lo), &Datum::Int(lo + w1 + w2));
        prop_assert!(wide >= narrow - 0.02, "narrow={narrow} wide={wide}");
    }

    #[test]
    fn estimated_eq_selectivity_tracks_actual_frequency(values in data_strategy(), probe in -500i64..500) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let stats = analyze_column(SqlType::Int8, &data);
        let n = values.len() as f64;
        let actual = values.iter().filter(|&&v| v == probe).count() as f64 / n;
        let est = eq_selectivity(Some(&stats), n, &Datum::Int(probe));
        // within an order of magnitude + absolute slack for tiny samples
        if actual > 0.05 {
            prop_assert!(est >= actual / 10.0, "actual={actual} est={est}");
            prop_assert!(est <= (actual * 10.0).min(1.0) + 0.1, "actual={actual} est={est}");
        }
    }

    #[test]
    fn in_list_bounded_by_component_sum(values in data_strategy(), probes in prop::collection::vec(-500i64..500, 1..6)) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let stats = analyze_column(SqlType::Int8, &data);
        let n = values.len() as f64;
        let shape = RestrictionShape::InList {
            col: 0,
            values: probes.iter().map(|&p| Datum::Int(p)).collect(),
            negated: false,
        };
        let sel = restriction_selectivity(&shape, Some(&stats), n);
        let sum: f64 = probes
            .iter()
            .map(|&p| eq_selectivity(Some(&stats), n, &Datum::Int(p)))
            .sum();
        prop_assert!(sel <= sum.min(1.0) + 1e-9);
    }

    #[test]
    fn index_cost_monotone_in_selectivity(
        sel1 in 1e-6f64..1.0,
        frac in 0.0f64..1.0,
        corr in -1.0f64..1.0,
    ) {
        let sel2 = sel1 * frac;
        let p = CostParams::default();
        let inputs = |s| IndexScanInputs {
            index_pages: 5_000,
            index_height: 2,
            table_pages: 50_000,
            table_rows: 1_000_000.0,
            index_selectivity: s,
            correlation: corr,
        };
        let c1 = index_scan_cost(&p, inputs(sel1), 0);
        let c2 = index_scan_cost(&p, inputs(sel2), 0);
        prop_assert!(c2.total <= c1.total + 1e-6, "sel {sel2} cost {} > sel {sel1} cost {}", c2.total, c1.total);
    }

    #[test]
    fn seq_scan_cost_independent_of_selectivity(pages in 1u64..100_000, rows in 1u64..10_000_000) {
        let p = CostParams::default();
        let c = seq_scan_cost(&p, pages, rows as f64, 1);
        prop_assert!(c.total > 0.0 && c.total.is_finite());
        // linear in pages
        let c2 = seq_scan_cost(&p, pages * 2, rows as f64, 1);
        prop_assert!(c2.total > c.total);
    }
}
