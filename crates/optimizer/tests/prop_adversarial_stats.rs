//! Totality of `restriction_selectivity` over ARBITRARY statistics — not
//! just `analyze_column` output (which `prop_selectivity.rs` covers):
//! NaN null fractions, empty/degenerate/corrupt histograms, out-of-range
//! MCV frequencies, zero or negative distinct counts, zero row counts.
//! The estimate must stay in (0, 1] and never panic.

use parinda_catalog::{ColumnStats, Datum};
use parinda_optimizer::query::RestrictionShape;
use parinda_optimizer::selectivity::restriction_selectivity;
use parinda_sql::BinOp;
use proptest::prelude::*;

fn probe_strategy() -> BoxedStrategy<Datum> {
    prop_oneof![
        Just(Datum::Null),
        Just(Datum::Float(f64::NAN)),
        Just(Datum::Float(f64::INFINITY)),
        Just(Datum::Float(f64::NEG_INFINITY)),
        Just(Datum::Str("garbage".into())),
        (-600i64..600).prop_map(Datum::Int),
    ]
    .boxed()
}

fn histogram(kind: u8) -> Vec<Datum> {
    match kind {
        0 => vec![],
        1 => vec![Datum::Int(7)], // single bound: degenerate
        2 => vec![Datum::Float(f64::NAN), Datum::Float(1.0), Datum::Float(f64::INFINITY)],
        3 => vec![Datum::Str("not".into()), Datum::Str("numeric".into())],
        _ => (0..20).map(Datum::Int).collect(),
    }
}

fn mcv(kind: u8) -> Vec<(Datum, f64)> {
    match kind {
        0 => vec![],
        1 => vec![(Datum::Int(3), f64::NAN)],
        2 => vec![(Datum::Int(3), 7.5), (Datum::Int(4), -0.5)], // freq out of range
        3 => vec![(Datum::Null, 0.3)],
        _ => vec![(Datum::Int(3), 0.5), (Datum::Int(9), 0.2)],
    }
}

fn shapes(probe: &Datum) -> Vec<RestrictionShape> {
    vec![
        RestrictionShape::Eq { col: 0, value: probe.clone() },
        RestrictionShape::Range { col: 0, op: BinOp::Lt, value: probe.clone() },
        RestrictionShape::Range { col: 0, op: BinOp::LtEq, value: probe.clone() },
        RestrictionShape::Range { col: 0, op: BinOp::Gt, value: probe.clone() },
        RestrictionShape::Range { col: 0, op: BinOp::GtEq, value: probe.clone() },
        RestrictionShape::Between { col: 0, low: probe.clone(), high: Datum::Int(50), negated: false },
        RestrictionShape::InList { col: 0, values: vec![probe.clone(), Datum::Int(1)], negated: true },
        RestrictionShape::IsNull { col: 0, negated: false },
        RestrictionShape::IsNull { col: 0, negated: true },
        RestrictionShape::Like { col: 0, prefix: Some("x;%".into()), negated: false },
        RestrictionShape::Opaque,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn restriction_selectivity_total_on_arbitrary_stats(
        null_frac in prop_oneof![Just(f64::NAN), Just(-1.0), Just(0.0), Just(1.0), Just(5.0), 0.0f64..1.0],
        n_distinct in prop_oneof![Just(f64::NAN), Just(0.0), Just(-0.5), Just(-3.0), 1.0f64..1000.0],
        hist_kind in 0u8..5,
        mcv_kind in 0u8..5,
        correlation in prop_oneof![Just(f64::NAN), -1.0f64..1.0],
        row_count in prop_oneof![Just(0.0), Just(f64::NAN), 1.0f64..1.0e6],
        probe in probe_strategy(),
    ) {
        let stats = ColumnStats {
            null_frac,
            n_distinct,
            avg_width: 8.0,
            mcv: mcv(mcv_kind),
            histogram: histogram(hist_kind),
            correlation,
        };
        for shape in &shapes(&probe) {
            let sel = restriction_selectivity(shape, Some(&stats), row_count);
            prop_assert!(
                sel > 0.0 && sel <= 1.0 && sel.is_finite(),
                "{shape:?} gave {sel} (null_frac={null_frac} nd={n_distinct} hist={hist_kind} mcv={mcv_kind})"
            );
        }
        // missing stats must be total too
        for shape in &shapes(&probe) {
            let sel = restriction_selectivity(shape, None, row_count);
            prop_assert!(sel > 0.0 && sel <= 1.0 && sel.is_finite(), "{shape:?} (no stats) gave {sel}");
        }
    }
}
