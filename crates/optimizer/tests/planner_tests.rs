//! Planner behaviour tests over a synthetic catalog with real statistics.

use parinda_catalog::{analyze_column, Catalog, Column, Datum, SqlType};
use parinda_optimizer::{explain, optimize, optimize_with, CostParams, PlanKind, PlannerFlags};
use parinda_sql::parse_select;

/// Catalog with two SDSS-flavoured tables and realistic statistics.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let photo = c.create_table(
        "photoobj",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("ra", SqlType::Float8).not_null(),
            Column::new("dec", SqlType::Float8).not_null(),
            Column::new("type", SqlType::Int2).not_null(),
            Column::new("rmag", SqlType::Float8).not_null(),
        ],
        1_000_000,
    );
    let spec = c.create_table(
        "specobj",
        vec![
            Column::new("specobjid", SqlType::Int8).not_null(),
            Column::new("bestobjid", SqlType::Int8).not_null(),
            Column::new("z", SqlType::Float8).not_null(),
        ],
        50_000,
    );

    // Statistics shaped like the data: objid unique & clustered; ra uniform
    // 0..360; type low cardinality; z small floats.
    let n = 100_000usize; // stats sample
    let objid: Vec<Datum> = (0..n as i64).map(Datum::Int).collect();
    let ra: Vec<Datum> = (0..n).map(|i| Datum::Float((i as f64 * 0.0036) % 360.0)).collect();
    let dec: Vec<Datum> = (0..n).map(|i| Datum::Float((i as f64 * 0.0018) % 180.0 - 90.0)).collect();
    let ty: Vec<Datum> = (0..n).map(|i| Datum::Int((i % 6) as i64)).collect();
    let rmag: Vec<Datum> = (0..n).map(|i| Datum::Float(14.0 + (i % 1000) as f64 * 0.008)).collect();
    c.set_column_stats(photo, 0, analyze_column(SqlType::Int8, &objid));
    c.set_column_stats(photo, 1, analyze_column(SqlType::Float8, &ra));
    c.set_column_stats(photo, 2, analyze_column(SqlType::Float8, &dec));
    c.set_column_stats(photo, 3, analyze_column(SqlType::Int2, &ty));
    c.set_column_stats(photo, 4, analyze_column(SqlType::Float8, &rmag));

    let specid: Vec<Datum> = (0..n as i64).map(Datum::Int).collect();
    let best: Vec<Datum> = (0..n as i64).map(|i| Datum::Int(i * 20)).collect();
    let z: Vec<Datum> = (0..n).map(|i| Datum::Float((i % 500) as f64 * 0.001)).collect();
    c.set_column_stats(spec, 0, analyze_column(SqlType::Int8, &specid));
    c.set_column_stats(spec, 1, analyze_column(SqlType::Int8, &best));
    c.set_column_stats(spec, 2, analyze_column(SqlType::Float8, &z));
    c
}

fn plan(c: &Catalog, sql: &str) -> parinda_optimizer::PlanNode {
    let (_, p) = optimize(&parse_select(sql).unwrap(), c).unwrap();
    p
}

#[test]
fn seqscan_without_indexes() {
    let c = catalog();
    let p = plan(&c, "SELECT ra FROM photoobj WHERE type = 3");
    let mut found = false;
    p.walk(&mut |n| {
        if matches!(n.kind, PlanKind::SeqScan { .. }) {
            found = true;
        }
    });
    assert!(found, "{}", explain_of(&c, "SELECT ra FROM photoobj WHERE type = 3"));
}

fn explain_of(c: &Catalog, sql: &str) -> String {
    let sel = parse_select(sql).unwrap();
    let (q, p) = optimize(&sel, c).unwrap();
    explain(&p, &q, c)
}

#[test]
fn selective_predicate_uses_index() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    let p = plan(&c, "SELECT ra FROM photoobj WHERE objid = 12345");
    assert!(
        !p.indexes_used().is_empty(),
        "expected index scan:\n{}",
        explain_of(&c, "SELECT ra FROM photoobj WHERE objid = 12345")
    );
}

#[test]
fn unselective_predicate_prefers_seqscan() {
    let mut c = catalog();
    c.create_index("i_type", "photoobj", &["type"]).unwrap();
    // type has 6 values -> sel ~1/6, index scan should lose
    let p = plan(&c, "SELECT ra FROM photoobj WHERE type = 3");
    assert!(
        p.indexes_used().is_empty(),
        "seq scan expected:\n{}",
        explain_of(&c, "SELECT ra FROM photoobj WHERE type = 3")
    );
}

#[test]
fn range_scan_uses_index_on_narrow_range() {
    let mut c = catalog();
    c.create_index("i_ra", "photoobj", &["ra"]).unwrap();
    let sql = "SELECT objid FROM photoobj WHERE ra BETWEEN 180.0 AND 180.5";
    let p = plan(&c, sql);
    assert!(!p.indexes_used().is_empty(), "{}", explain_of(&c, sql));
}

#[test]
fn multicolumn_index_matches_prefix() {
    let mut c = catalog();
    c.create_index("i_type_ra", "photoobj", &["type", "ra"]).unwrap();
    let sql = "SELECT objid FROM photoobj WHERE type = 3 AND ra BETWEEN 10.0 AND 10.2";
    let p = plan(&c, sql);
    assert!(!p.indexes_used().is_empty(), "{}", explain_of(&c, sql));
    // the index condition should consume both predicates
    let mut residual = usize::MAX;
    p.walk(&mut |n| {
        if let PlanKind::IndexScan { filter, eq_prefix, range, .. } = &n.kind {
            residual = filter.len();
            assert_eq!(eq_prefix.len(), 1);
            assert!(range.is_some());
        }
    });
    assert_eq!(residual, 0);
}

#[test]
fn join_produces_join_node() {
    let c = catalog();
    let sql = "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.bestobjid";
    let p = plan(&c, sql);
    let mut kinds = Vec::new();
    p.walk(&mut |n| kinds.push(n.node_name()));
    assert!(
        kinds.iter().any(|k| ["Hash Join", "Merge Join", "Nested Loop"].contains(k)),
        "{kinds:?}"
    );
}

#[test]
fn join_with_index_prefers_parameterized_nestloop_for_selective_outer() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    // outer: specobj filtered to ~100 rows; inner probe into 1M photoobj
    let sql = "SELECT p.ra FROM specobj s, photoobj p \
               WHERE s.z > 0.498 AND p.objid = s.bestobjid";
    let p = plan(&c, sql);
    let mut has_param_scan = false;
    p.walk(&mut |n| {
        if let PlanKind::IndexScan { param_prefix, .. } = &n.kind {
            if !param_prefix.is_empty() {
                has_param_scan = true;
            }
        }
    });
    assert!(has_param_scan, "{}", explain_of(&c, sql));
}

#[test]
fn nestloop_disabled_flag_respected() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    let sql = "SELECT p.ra FROM specobj s, photoobj p \
               WHERE s.z > 0.498 AND p.objid = s.bestobjid";
    let sel = parse_select(sql).unwrap();
    let flags = PlannerFlags { enable_nestloop: false, ..Default::default() };
    let (_, p) = optimize_with(&sel, &c, &CostParams::default(), &flags).unwrap();
    let mut has_nl = false;
    p.walk(&mut |n| {
        if matches!(n.kind, PlanKind::NestLoop { .. }) {
            has_nl = true;
        }
    });
    assert!(!has_nl, "nestloop should be avoided when disabled");
}

#[test]
fn aggregation_plans_aggregate_node() {
    let c = catalog();
    let sql = "SELECT type, COUNT(*) FROM photoobj GROUP BY type";
    let p = plan(&c, sql);
    assert!(matches!(p.kind, PlanKind::Aggregate { .. }), "{}", explain_of(&c, sql));
    // groups estimated near 6
    assert!(p.rows >= 1.0 && p.rows <= 50.0, "groups={}", p.rows);
}

#[test]
fn order_by_adds_sort_or_uses_index() {
    let c = catalog();
    let sql = "SELECT ra FROM photoobj ORDER BY ra";
    let p = plan(&c, sql);
    let mut has_sort = false;
    p.walk(&mut |n| {
        if matches!(n.kind, PlanKind::Sort { .. }) {
            has_sort = true;
        }
    });
    assert!(has_sort);

    // with an index on ra, the sort can disappear
    let mut c2 = catalog();
    c2.create_index("i_ra", "photoobj", &["ra"]).unwrap();
    let p2 = plan(&c2, sql);
    let mut has_sort2 = false;
    p2.walk(&mut |n| {
        if matches!(n.kind, PlanKind::Sort { .. }) {
            has_sort2 = true;
        }
    });
    assert!(!has_sort2, "{}", explain_of(&c2, sql));
}

#[test]
fn limit_caps_rows() {
    let c = catalog();
    let p = plan(&c, "SELECT ra FROM photoobj LIMIT 10");
    assert!(matches!(p.kind, PlanKind::Limit { n: 10, .. }));
    assert!(p.rows <= 10.0);
}

#[test]
fn distinct_adds_unique() {
    let c = catalog();
    let p = plan(&c, "SELECT DISTINCT type FROM photoobj");
    let mut has_unique = false;
    p.walk(&mut |n| {
        if matches!(n.kind, PlanKind::Unique { .. }) {
            has_unique = true;
        }
    });
    assert!(has_unique);
}

#[test]
fn three_way_join_plans() {
    let mut c = catalog();
    c.create_table(
        "neighbors",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("neighborobjid", SqlType::Int8).not_null(),
            Column::new("distance", SqlType::Float8).not_null(),
        ],
        2_000_000,
    );
    let sql = "SELECT p.ra FROM photoobj p, specobj s, neighbors n \
               WHERE p.objid = s.bestobjid AND p.objid = n.objid AND s.z > 0.4";
    let p = plan(&c, sql);
    assert_eq!(
        p.tables_scanned().len(),
        3,
        "{}",
        explain_of(&c, sql)
    );
}

#[test]
fn explain_renders_costs_and_tree() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    let text = explain_of(&c, "SELECT ra FROM photoobj WHERE objid = 5");
    assert!(text.contains("cost="), "{text}");
    assert!(text.contains("rows="), "{text}");
    assert!(text.contains("Index Scan") || text.contains("Seq Scan"), "{text}");
}

#[test]
fn costs_are_finite_and_positive() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    c.create_index("i_ra", "photoobj", &["ra"]).unwrap();
    for sql in [
        "SELECT * FROM photoobj",
        "SELECT ra FROM photoobj WHERE objid = 1 AND ra < 10.0",
        "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.bestobjid \
         AND p.type IN (3, 6) ORDER BY p.ra",
        "SELECT type, AVG(rmag) FROM photoobj GROUP BY type ORDER BY type",
    ] {
        let p = plan(&c, sql);
        assert!(p.cost.total.is_finite() && p.cost.total > 0.0, "{sql}");
        assert!(p.cost.startup >= 0.0 && p.cost.startup <= p.cost.total, "{sql}");
        assert!(p.rows >= 0.0, "{sql}");
    }
}

#[test]
fn better_design_never_increases_estimated_cost() {
    // Adding an index leaves every query's optimal cost <= before.
    let base = catalog();
    let queries = [
        "SELECT ra FROM photoobj WHERE objid = 99",
        "SELECT objid FROM photoobj WHERE ra BETWEEN 1.0 AND 1.1",
        "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid AND s.z > 0.49",
    ];
    let before: Vec<f64> = queries.iter().map(|q| plan(&base, q).cost.total).collect();
    let mut with = catalog();
    with.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    with.create_index("i_ra", "photoobj", &["ra"]).unwrap();
    let after: Vec<f64> = queries.iter().map(|q| plan(&with, q).cost.total).collect();
    for ((q, b), a) in queries.iter().zip(&before).zip(&after) {
        assert!(a <= &(b * 1.0001), "{q}: before={b} after={a}");
    }
}

#[test]
fn join_order_puts_filtered_side_outer_or_build() {
    // joining a heavily filtered spec (few rows) with photoobj (1M rows):
    // whatever join method wins, the estimated rows must reflect the filter
    let c = catalog();
    let sql = "SELECT p.ra FROM photoobj p, specobj s \
               WHERE p.objid = s.bestobjid AND s.z > 0.499";
    let p = plan(&c, sql);
    // join output must be far below the cartesian bound
    assert!(p.rows < 50_000.0, "rows={}", p.rows);
}

#[test]
fn seqscan_disabled_forces_index_when_available() {
    let mut c = catalog();
    c.create_index("i_type", "photoobj", &["type"]).unwrap();
    let sql = "SELECT ra FROM photoobj WHERE type = 3";
    let sel = parse_select(sql).unwrap();
    let flags = PlannerFlags { enable_seqscan: false, ..Default::default() };
    let (_, p) = optimize_with(&sel, &c, &CostParams::default(), &flags).unwrap();
    assert!(!p.indexes_used().is_empty(), "disabled seqscan must push to the index");
}

#[test]
fn disabled_everything_still_plans() {
    // disable_cost semantics: a fully disabled query still gets a plan
    let c = catalog();
    let sel = parse_select("SELECT ra FROM photoobj WHERE type = 3").unwrap();
    let flags = PlannerFlags {
        enable_seqscan: false,
        enable_indexscan: false,
        enable_sort: false,
        enable_nestloop: false,
        enable_hashjoin: false,
        enable_mergejoin: false,
    };
    let (_, p) = optimize_with(&sel, &c, &CostParams::default(), &flags).unwrap();
    assert!(p.cost.total.is_finite());
}

#[test]
fn limit_prefers_low_startup_paths() {
    // with an index providing the requested order, LIMIT should be cheap
    let mut c = catalog();
    c.create_index("i_ra", "photoobj", &["ra"]).unwrap();
    let with_limit = plan(&c, "SELECT ra FROM photoobj ORDER BY ra LIMIT 5");
    let without = plan(&c, "SELECT ra FROM photoobj ORDER BY ra");
    assert!(
        with_limit.cost.total < without.cost.total / 10.0,
        "limit {} vs full {}",
        with_limit.cost.total,
        without.cost.total
    );
}

#[test]
fn random_page_cost_shifts_the_crossover() {
    // cheaper random IO should make index scans win at lower selectivity
    let mut c = catalog();
    c.create_index("i_rmag", "photoobj", &["rmag"]).unwrap();
    let sql = "SELECT objid FROM photoobj WHERE rmag BETWEEN 14.0 AND 16.0";
    let sel = parse_select(sql).unwrap();
    let flags = PlannerFlags::default();
    let expensive = CostParams { random_page_cost: 20.0, ..Default::default() };
    let cheap = CostParams { random_page_cost: 1.0, ..Default::default() };
    let (_, p1) = optimize_with(&sel, &c, &expensive, &flags).unwrap();
    let (_, p2) = optimize_with(&sel, &c, &cheap, &flags).unwrap();
    let idx1 = !p1.indexes_used().is_empty();
    let idx2 = !p2.indexes_used().is_empty();
    // cheap random IO must be at least as index-friendly
    assert!(idx2 || !idx1, "expensive->index {idx1}, cheap->index {idx2}");
}

#[test]
fn plans_are_deterministic() {
    let mut c = catalog();
    c.create_index("i_objid", "photoobj", &["objid"]).unwrap();
    let sql = "SELECT p.ra, s.z FROM photoobj p, specobj s \
               WHERE p.objid = s.bestobjid AND s.z > 0.3 ORDER BY p.ra LIMIT 7";
    let a = plan(&c, sql);
    let b = plan(&c, sql);
    assert_eq!(a, b);
}
