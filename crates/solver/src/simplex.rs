//! Dense two-phase primal simplex.
//!
//! Finite upper bounds are materialized as explicit `x ≤ u` rows, which
//! keeps the tableau logic textbook-simple; the instances PARINDA produces
//! (hundreds of variables) stay comfortably small.

use crate::lp::{LinearProgram, LpOutcome, LpSolution, Sense};

const EPS: f64 = 1e-9;

/// Solve an LP with the two-phase simplex method.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    if parinda_failpoint::should_fail("solver::simplex") {
        return LpOutcome::IterationLimit;
    }
    Tableau::build(lp).solve(lp)
}

struct Tableau {
    /// Full tableau: rows = constraints, cols = structural + slack/surplus
    /// + artificial + rhs.
    a: Vec<Vec<f64>>,
    /// Basis: for each row, the column currently basic in it.
    basis: Vec<usize>,
    n_struct: usize,
    n_total: usize,
    artificial_cols: Vec<usize>,
    max_iters: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        // Collect all rows: user constraints + finite upper bounds.
        struct RowSpec {
            terms: Vec<(usize, f64)>,
            sense: Sense,
            rhs: f64,
        }
        let mut rows: Vec<RowSpec> = lp
            .constraints
            .iter()
            .map(|c| RowSpec { terms: c.terms.clone(), sense: c.sense, rhs: c.rhs })
            .collect();
        for (j, &u) in lp.upper.iter().enumerate() {
            if u.is_finite() {
                rows.push(RowSpec { terms: vec![(j, 1.0)], sense: Sense::Le, rhs: u });
            }
        }

        // Normalize to rhs >= 0.
        for r in &mut rows {
            if r.rhs < 0.0 {
                for t in &mut r.terms {
                    t.1 = -t.1;
                }
                r.rhs = -r.rhs;
                r.sense = match r.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
        }

        let m = rows.len();
        let n = lp.num_vars();

        // Column layout: [0, n) structural; then one slack/surplus per
        // inequality; then artificials; last = rhs.
        let n_slack = rows.iter().filter(|r| r.sense != Sense::Eq).count();
        let n_art = rows.iter().filter(|r| r.sense != Sense::Le).count();
        let n_total = n + n_slack + n_art;

        let mut a = vec![vec![0.0; n_total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_next = n;
        let mut art_next = n + n_slack;
        let mut artificial_cols = Vec::new();

        for (i, r) in rows.iter().enumerate() {
            for &(j, coef) in &r.terms {
                a[i][j] += coef;
            }
            a[i][n_total] = r.rhs;
            match r.sense {
                Sense::Le => {
                    a[i][slack_next] = 1.0;
                    basis[i] = slack_next;
                    slack_next += 1;
                }
                Sense::Ge => {
                    a[i][slack_next] = -1.0;
                    slack_next += 1;
                    a[i][art_next] = 1.0;
                    basis[i] = art_next;
                    artificial_cols.push(art_next);
                    art_next += 1;
                }
                Sense::Eq => {
                    a[i][art_next] = 1.0;
                    basis[i] = art_next;
                    artificial_cols.push(art_next);
                    art_next += 1;
                }
            }
        }

        let max_iters = 200 * (m + n_total + 16);
        Tableau { a, basis, n_struct: n, n_total, artificial_cols, max_iters }
    }

    fn solve(mut self, lp: &LinearProgram) -> LpOutcome {
        // Phase 1: minimize the sum of artificials (maximize the negated
        // sum) — only needed when artificials exist.
        if !self.artificial_cols.is_empty() {
            let mut obj = vec![0.0; self.n_total];
            for &c in &self.artificial_cols {
                obj[c] = -1.0;
            }
            match self.optimize(&obj) {
                Phase::Optimal(v) => {
                    if v < -1e-7 {
                        return LpOutcome::Infeasible;
                    }
                }
                Phase::Unbounded => return LpOutcome::Infeasible, // cannot happen; defensive
                Phase::IterationLimit => return LpOutcome::IterationLimit,
            }
            // Drive any artificial still basic (at zero) out of the basis.
            for i in 0..self.basis.len() {
                if self.artificial_cols.contains(&self.basis[i]) {
                    if let Some(j) = (0..self.n_struct + self.n_slack_count())
                        .find(|&j| self.a[i][j].abs() > 1e-7)
                    {
                        self.pivot(i, j);
                    }
                }
            }
        }

        // Phase 2: the real objective (artificials pinned at zero by
        // removing them from pricing).
        let mut obj = vec![0.0; self.n_total];
        obj[..self.n_struct].copy_from_slice(&lp.objective);
        let blocked: Vec<usize> = self.artificial_cols.clone();
        match self.optimize_blocked(&obj, &blocked) {
            Phase::Optimal(v) => {
                let mut x = vec![0.0; self.n_struct];
                for (i, &b) in self.basis.iter().enumerate() {
                    if b < self.n_struct {
                        x[b] = self.rhs(i);
                    }
                }
                let reduced_costs = self.structural_reduced_costs(&obj);
                LpOutcome::Optimal(LpSolution { x, objective: v, reduced_costs })
            }
            Phase::Unbounded => LpOutcome::Unbounded,
            Phase::IterationLimit => LpOutcome::IterationLimit,
        }
    }

    /// Reduced costs `r_j = c_j - c_B·a_j` of the structural columns at
    /// the current (optimal) basis; basic columns report exactly 0.0.
    /// Same pricing loop as [`Tableau::optimize_blocked`], same summation
    /// order — a pure readout that performs no pivots, so exporting it
    /// cannot perturb the solution.
    fn structural_reduced_costs(&self, obj: &[f64]) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&b| obj[b]).collect();
        (0..self.n_struct)
            .map(|j| {
                if self.basis.contains(&j) {
                    return 0.0;
                }
                let mut r = obj[j];
                for (ci, row) in cb.iter().zip(&self.a) {
                    if *ci != 0.0 {
                        r -= ci * row[j];
                    }
                }
                r
            })
            .collect()
    }

    fn n_slack_count(&self) -> usize {
        self.n_total - self.n_struct - self.artificial_cols.len()
    }

    fn rhs(&self, row: usize) -> f64 {
        self.a[row][self.n_total]
    }

    fn optimize(&mut self, obj: &[f64]) -> Phase {
        self.optimize_blocked(obj, &[])
    }

    /// Primal simplex over the current basis, maximizing `obj`, never
    /// letting `blocked` columns enter. Returns the objective value.
    fn optimize_blocked(&mut self, obj: &[f64], blocked: &[usize]) -> Phase {
        let m = self.a.len();
        // reduced costs: z_j - c_j computed from scratch each iteration on
        // the (small) dense tableau.
        for iter in 0..self.max_iters {
            // price: reduced cost r_j = c_j - Σ_i c_B[i] * a[i][j]
            let cb: Vec<f64> = self.basis.iter().map(|&b| obj[b]).collect();
            let mut entering: Option<usize> = None;
            let mut best = EPS;
            let bland = iter > self.max_iters / 2;
            for j in 0..self.n_total {
                if blocked.contains(&j) || self.basis.contains(&j) {
                    continue;
                }
                let mut r = obj[j];
                for (ci, row) in cb.iter().zip(&self.a) {
                    if *ci != 0.0 {
                        r -= ci * row[j];
                    }
                }
                if r > best {
                    entering = Some(j);
                    if bland {
                        break; // Bland's rule: first improving column
                    }
                    best = r;
                }
            }
            let Some(j) = entering else {
                // optimal: compute objective value
                let v: f64 = self
                    .basis
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| obj[b] * self.rhs(i))
                    .sum();
                return Phase::Optimal(v);
            };

            // ratio test
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let aij = self.a[i][j];
                if aij > EPS {
                    let ratio = self.rhs(i) / aij;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Phase::Unbounded;
            };
            self.pivot(i, j);
        }
        Phase::IterationLimit
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.a.len();
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        for i in 0..m {
            if i != row {
                let factor = self.a[i][col];
                if factor.abs() > EPS {
                    for j in 0..=self.n_total {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

enum Phase {
    Optimal(f64),
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{LinearProgram, Sense};

    fn optimal(lp: &LinearProgram) -> LpSolution {
        match solve(lp) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], Sense::Le, 6.0);
        let s = optimal(&lp);
        assert!((s.objective - 12.0).abs() < 1e-6, "{s:?}");
        assert!((s.x[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn interior_optimum() {
        // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj=8/3
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 2.0), (1, 1.0)], Sense::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Sense::Le, 4.0);
        let s = optimal(&lp);
        assert!((s.objective - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.set_upper(0, 1.0);
        lp.set_upper(1, 0.5);
        let s = optimal(&lp);
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        assert_eq!(solve(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, obj=5
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 3.0);
        lp.set_upper(1, 2.0);
        let s = optimal(&lp);
        assert!((s.objective - 5.0).abs() < 1e-6, "{s:?}");
    }

    #[test]
    fn ge_constraints_force_minimum_values() {
        // max -x (i.e. minimize x) s.t. x >= 2.5
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.5);
        let s = optimal(&lp);
        assert!((s.x[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_normalized() {
        // -x <= -2  <=>  x >= 2; maximize -x -> x = 2
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(vec![(0, -1.0)], Sense::Le, -2.0);
        let s = optimal(&lp);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // several redundant constraints through the same vertex
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        for k in 1..=5 {
            lp.add_constraint(vec![(0, k as f64), (1, k as f64)], Sense::Le, 2.0 * k as f64);
        }
        let s = optimal(&lp);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible() {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.set_objective(2, 3.0);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0)], Sense::Le, 5.0);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Sense::Le, 11.0);
        lp.add_constraint(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Sense::Le, 8.0);
        let s = optimal(&lp);
        assert!(lp.is_feasible(&s.x, 1e-6));
        assert!((s.objective - 13.0).abs() < 1e-6); // classic Chvátal example
    }
}
