//! Linear-program model: maximize `c·x` subject to sparse linear
//! constraints and variable bounds.
//!
//! The index-selection ILP (paper §3.4) is built on this model and handed
//! to the simplex + branch-and-bound solver — the substrate's stand-in for
//! the "standard off-the-shelf combinatorial optimization solver".

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One sparse constraint row.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// (variable index, coefficient) pairs; indices must be unique.
    pub terms: Vec<(usize, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// A linear program in maximization form with box-bounded variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients (maximize).
    pub objective: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Per-variable upper bound (lower bound is always 0).
    pub upper: Vec<f64>,
}

impl LinearProgram {
    /// An LP with `n` variables, zero objective, bounds `[0, +inf)`.
    pub fn new(n: usize) -> Self {
        LinearProgram {
            objective: vec![0.0; n],
            constraints: Vec::new(),
            upper: vec![f64::INFINITY; n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Set the objective coefficient of variable `j`.
    pub fn set_objective(&mut self, j: usize, c: f64) {
        self.objective[j] = c;
    }

    /// Bound variable `j` to `[0, u]`.
    pub fn set_upper(&mut self, j: usize, u: f64) {
        self.upper[j] = u;
    }

    /// Add a constraint; returns its row index.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, sense: Sense, rhs: f64) -> usize {
        debug_assert!(terms.iter().all(|&(j, _)| j < self.num_vars()));
        self.constraints.push(Constraint { terms, sense, rhs });
        self.constraints.len() - 1
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Is `x` feasible within tolerance `eps`?
    pub fn is_feasible(&self, x: &[f64], eps: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < -eps || v > self.upper[j] + eps {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + eps,
                Sense::Ge => lhs >= c.rhs - eps,
                Sense::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded above.
    Unbounded,
    /// Iteration limit hit before convergence. This is a resource
    /// *limit*, not a feasibility verdict: callers must not conflate it
    /// with [`LpOutcome::Infeasible`] (the branch-and-bound maps it to a
    /// `Limit` result and marks the search unproven).
    IterationLimit,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Variable values.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Per-structural-variable reduced costs at the optimal basis (basic
    /// variables report exactly 0.0). A large `|reduced_costs[j]|` means
    /// the objective is most sensitive to forcing `x_j` — the
    /// branch-and-bound uses this as its branching order (CoPhy's LP
    /// pricing idea in miniature).
    pub reduced_costs: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Le, 4.0);
        assert_eq!(lp.objective_value(&[1.0, 1.0]), 5.0);
        assert!(lp.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9));
    }

    #[test]
    fn bounds_checked_in_feasibility() {
        let mut lp = LinearProgram::new(1);
        lp.set_upper(0, 1.0);
        assert!(lp.is_feasible(&[1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.5], 1e-9));
        assert!(!lp.is_feasible(&[-0.5], 1e-9));
    }

    #[test]
    fn senses_checked() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        assert!(!lp.is_feasible(&[1.0], 1e-9));
        assert!(lp.is_feasible(&[2.5], 1e-9));
        lp.add_constraint(vec![(0, 1.0)], Sense::Eq, 2.5);
        assert!(lp.is_feasible(&[2.5], 1e-9));
        assert!(!lp.is_feasible(&[2.6], 1e-9));
    }
}
