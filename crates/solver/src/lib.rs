//! # parinda-solver
//!
//! Combinatorial-optimization substrate: a from-scratch dense two-phase
//! primal simplex for LP relaxations, a best-first 0/1 branch-and-bound on
//! top of it, and the greedy baseline the paper's related work uses.
//!
//! The paper solves its index-selection integer-linear program "using a
//! standard off-the-shelf combinatorial solver" (§3.4); mature ILP crates
//! are thin on the ground, so this crate *is* that solver. Instances from
//! index selection are small (hundreds of binaries), and the exact B&B
//! returns provably optimal solutions on them (property-tested against
//! brute-force enumeration).
//!
//! # Example
//!
//! ```
//! use parinda_solver::{solve_ilp, IlpOutcome, IntegerProgram, LinearProgram, Sense, SolveLimits};
//!
//! // knapsack: values (10, 6, 5), weights (4, 3, 2), capacity 5
//! let mut lp = LinearProgram::new(3);
//! for (j, v) in [10.0, 6.0, 5.0].into_iter().enumerate() {
//!     lp.set_objective(j, v);
//!     lp.set_upper(j, 1.0);
//! }
//! lp.add_constraint(vec![(0, 4.0), (1, 3.0), (2, 2.0)], Sense::Le, 5.0);
//! let ip = IntegerProgram { lp, binary: vec![0, 1, 2] };
//! let IlpOutcome::Solved(sol) = solve_ilp(&ip, SolveLimits::default()) else { panic!() };
//! assert_eq!(sol.objective, 11.0); // {6, 5} beats {10}
//! assert!(sol.proven_optimal);
//! ```

#![allow(missing_docs)]

pub mod branch;
pub mod greedy;
pub mod lp;
pub mod simplex;
pub mod sparse;

pub use branch::{solve_ilp, IlpOutcome, IlpSolution, IntegerProgram, SolveLimits};
pub use greedy::{greedy_select, greedy_select_batch, GreedyItem};
pub use lp::{Constraint, LinearProgram, LpOutcome, LpSolution, Sense};
pub use simplex::solve as solve_lp;
pub use sparse::SparseMatrix;
