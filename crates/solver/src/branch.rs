//! Best-first branch-and-bound for 0/1 integer programs over the LP
//! relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use parinda_parallel::CancelToken;
use parinda_trace::{Counter, Trace};

use crate::lp::{LinearProgram, LpOutcome, Sense};
use crate::simplex;

/// Tolerance for calling a relaxation value integral.
const INT_EPS: f64 = 1e-6;

/// A 0/1 integer program: the LP plus the set of binary variables.
#[derive(Debug, Clone)]
pub struct IntegerProgram {
    /// The relaxation (binary variables must have upper bound ≤ 1).
    pub lp: LinearProgram,
    /// Indices of variables constrained to {0, 1}.
    pub binary: Vec<usize>,
}

/// Solver limits. Besides the node cap, a solve can carry a wall-clock
/// deadline (monotonic clock) and a cooperative [`CancelToken`], both
/// checked once per branch-and-bound node; hitting any limit stops the
/// search with `proven_optimal: false` (or [`IlpOutcome::Limit`] when no
/// incumbent was found yet) — never a misreported `Infeasible`.
#[derive(Debug, Clone)]
pub struct SolveLimits {
    /// Maximum branch-and-bound nodes to expand (`None` = unlimited).
    pub max_nodes: Option<usize>,
    /// Stop expanding nodes once this instant passes.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation, polled once per node.
    pub cancel: Option<CancelToken>,
    /// Observability handle (disabled by default): the search records an
    /// `ilp_rounds/bnb` span and the `solver_nodes` /
    /// `bnb_pruned_by_incumbent` counters. Tracing never influences the
    /// search itself.
    pub trace: Trace,
    /// Warm-start point (e.g. the greedy advisor's selection): rounded on
    /// the binaries and, when feasible, installed as the initial
    /// incumbent so the very first bound check can prune. An infeasible
    /// or mis-sized seed is silently ignored — a warm start may only
    /// accelerate the search, never change its answer.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits::nodes(SolveLimits::DEFAULT_MAX_NODES)
    }
}

impl SolveLimits {
    /// The default node cap used by the advisors.
    pub const DEFAULT_MAX_NODES: usize = 50_000;

    /// The advisors' default: node cap only.
    pub fn nodes(max_nodes: usize) -> Self {
        SolveLimits {
            max_nodes: Some(max_nodes),
            deadline: None,
            cancel: None,
            trace: Trace::disabled(),
            warm_start: None,
        }
    }

    /// Has any limit (other than the node cap) tripped?
    fn interrupted(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        match self.deadline {
            // parinda-lint: allow(nondeterminism): deadline-expiry check mirrors Budget::expired — results under a deadline are explicitly marked degraded
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

/// Result of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Variable assignment (binaries are exactly 0.0 or 1.0).
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// True when the search proved optimality (no node limit hit).
    pub proven_optimal: bool,
    /// Nodes expanded.
    pub nodes: usize,
}

/// ILP outcome.
///
/// `Infeasible` is a *proof*: the search exhausted the tree without any
/// limit tripping. A solve that was stopped by a node cap, deadline, or
/// cancellation before finding an integral point reports [`Limit`]
/// instead, so a degraded run is never misreported as infeasible. A
/// limit-stopped solve that *did* find an incumbent reports
/// `Solved` with `proven_optimal: false`.
///
/// [`Limit`]: IlpOutcome::Limit
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    Solved(IlpSolution),
    Infeasible,
    Unbounded,
    /// A node/deadline/cancel limit stopped the search before any
    /// feasible integral point was found; feasibility is unknown.
    Limit,
}

struct Node {
    bound: f64,
    /// (variable, fixed value) pairs along this branch.
    fixings: Vec<(usize, u8)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap on bound: explore the most promising node first
        self.bound.total_cmp(&other.bound)
    }
}

/// Solve a 0/1 integer program by branch-and-bound (maximization).
pub fn solve_ilp(ip: &IntegerProgram, limits: SolveLimits) -> IlpOutcome {
    let _span = limits.trace.span("ilp_rounds/bnb");
    // Root relaxation.
    let root = match relax(ip, &[]) {
        RelaxResult::Solved(s) => s,
        RelaxResult::Infeasible => return IlpOutcome::Infeasible,
        RelaxResult::Unbounded => return IlpOutcome::Unbounded,
        RelaxResult::Limit => return IlpOutcome::Limit,
    };

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    // Warm start: round the seed on the binaries and install it as the
    // initial incumbent iff it is genuinely feasible. The failpoint
    // degrades to a cold start — same answer, just more nodes.
    if let Some(seed) = &limits.warm_start {
        if !parinda_failpoint::should_fail("solver::warmstart") && seed.len() == ip.lp.num_vars() {
            let mut xi = seed.clone();
            for &j in &ip.binary {
                xi[j] = xi[j].round();
            }
            if ip.lp.is_feasible(&xi, 1e-6) {
                let obj = ip.lp.objective_value(&xi);
                incumbent = Some((obj, xi));
            }
        }
    }
    let mut heap = BinaryHeap::new();
    heap.push(Node { bound: root.objective, fixings: Vec::new() });
    let mut nodes = 0usize;
    let mut pruned_by_incumbent = 0u64;
    let mut proven = true;

    while let Some(node) = heap.pop() {
        if limits.max_nodes.is_some_and(|max| nodes >= max) || limits.interrupted() {
            proven = false;
            break;
        }
        nodes += 1;

        // Bound check against the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.bound <= *best + INT_EPS {
                pruned_by_incumbent += 1;
                continue;
            }
        }

        let sol = match relax(ip, &node.fixings) {
            RelaxResult::Solved(s) => s,
            RelaxResult::Infeasible => continue,
            RelaxResult::Unbounded => return IlpOutcome::Unbounded,
            RelaxResult::Limit => {
                // The relaxation hit its simplex iteration cap: we know
                // nothing about this subtree. Pruning it would be wrong
                // ("infeasible"); keep the incumbent search honest by
                // dropping the subtree but marking the result unproven.
                proven = false;
                continue;
            }
        };
        let (bound, x) = (sol.objective, &sol.x);
        if let Some((best, _)) = &incumbent {
            if bound <= *best + INT_EPS {
                pruned_by_incumbent += 1;
                continue;
            }
        }

        // Branch on the fractional binary the LP prices highest
        // (largest |reduced cost|); ties break toward the more
        // fractional value, then the lower index — fully deterministic.
        let frac_var = ip
            .binary
            .iter()
            .copied()
            .map(|j| (j, (x[j] - x[j].round()).abs()))
            .filter(|&(_, f)| f > INT_EPS)
            .max_by(|&(ja, fa), &(jb, fb)| {
                sol.reduced_costs[ja]
                    .abs()
                    .total_cmp(&sol.reduced_costs[jb].abs())
                    .then(fa.total_cmp(&fb))
                    .then(jb.cmp(&ja))
            });

        match frac_var {
            None => {
                // Integral: candidate incumbent (round away dust).
                let mut xi = x.clone();
                for &j in &ip.binary {
                    xi[j] = xi[j].round();
                }
                let obj = ip.lp.objective_value(&xi);
                if ip.lp.is_feasible(&xi, 1e-6)
                    && incumbent.as_ref().map(|(b, _)| obj > *b + INT_EPS).unwrap_or(true)
                {
                    incumbent = Some((obj, xi));
                }
            }
            Some((j, _)) => {
                for v in [1u8, 0u8] {
                    let mut fixings = node.fixings.clone();
                    fixings.push((j, v));
                    heap.push(Node { bound, fixings });
                }
            }
        }
    }

    limits.trace.count(Counter::SolverNodes, nodes as u64);
    limits.trace.count(Counter::BnbPrunedByIncumbent, pruned_by_incumbent);
    match incumbent {
        Some((objective, x)) => IlpOutcome::Solved(IlpSolution {
            x,
            objective,
            proven_optimal: proven,
            nodes,
        }),
        None => {
            if proven {
                IlpOutcome::Infeasible
            } else {
                // A limit stopped the search before any integral point
                // was found: feasibility is unknown, not disproven.
                IlpOutcome::Limit
            }
        }
    }
}

enum RelaxResult {
    /// Optimal relaxation: bound, point, and reduced costs (the
    /// branching order) travel together.
    Solved(crate::lp::LpSolution),
    Infeasible,
    Unbounded,
    /// The simplex iteration cap (or an injected fault) stopped the
    /// relaxation: the subtree's status is unknown.
    Limit,
}

/// Solve the LP relaxation with branch fixings applied as bound changes.
fn relax(ip: &IntegerProgram, fixings: &[(usize, u8)]) -> RelaxResult {
    if parinda_failpoint::should_fail("solver::relax") {
        return RelaxResult::Limit;
    }
    let mut lp = ip.lp.clone();
    for &(j, v) in fixings {
        match v {
            0 => lp.set_upper(j, 0.0),
            _ => {
                // force x_j = 1 via an equality row (lower bounds are not
                // part of the model)
                lp.add_constraint(vec![(j, 1.0)], Sense::Eq, 1.0);
            }
        }
    }
    match simplex::solve(&lp) {
        LpOutcome::Optimal(s) => RelaxResult::Solved(s),
        LpOutcome::Infeasible => RelaxResult::Infeasible,
        LpOutcome::Unbounded => RelaxResult::Unbounded,
        // The iteration cap is a *limit*, not an infeasibility proof;
        // see lp.rs. Callers must not prune this subtree as infeasible.
        LpOutcome::IterationLimit => RelaxResult::Limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LinearProgram;

    /// Binary knapsack helper.
    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> IntegerProgram {
        let n = values.len();
        let mut lp = LinearProgram::new(n);
        for (j, &v) in values.iter().enumerate() {
            lp.set_objective(j, v);
            lp.set_upper(j, 1.0);
        }
        lp.add_constraint(
            weights.iter().enumerate().map(|(j, &w)| (j, w)).collect(),
            Sense::Le,
            cap,
        );
        IntegerProgram { lp, binary: (0..n).collect() }
    }

    fn solved(ip: &IntegerProgram) -> IlpSolution {
        match solve_ilp(ip, SolveLimits::default()) {
            IlpOutcome::Solved(s) => s,
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn small_knapsack_optimal() {
        // values 10, 6, 5; weights 4, 3, 2; cap 5 -> pick {6,5} = 11
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let s = solved(&ip);
        assert!((s.objective - 11.0).abs() < 1e-6, "{s:?}");
        assert!(s.proven_optimal);
        assert_eq!(s.x[0].round() as i32, 0);
    }

    #[test]
    fn knapsack_vs_bruteforce() {
        // deterministic pseudo-random instances
        let mut seed = 42u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..20 {
            let n = 8;
            let values: Vec<f64> = (0..n).map(|_| (rand() * 20.0).round() + 1.0).collect();
            let weights: Vec<f64> = (0..n).map(|_| (rand() * 10.0).round() + 1.0).collect();
            let cap = weights.iter().sum::<f64>() * 0.4;
            let ip = knapsack(&values, &weights, cap);
            let s = solved(&ip);
            // brute force
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let w: f64 = (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| weights[j]).sum();
                if w <= cap + 1e-9 {
                    let v: f64 =
                        (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| values[j]).sum();
                    best = best.max(v);
                }
            }
            assert!(
                (s.objective - best).abs() < 1e-6,
                "ilp={} brute={best} values={values:?} weights={weights:?} cap={cap}",
                s.objective
            );
        }
    }

    #[test]
    fn binaries_are_integral() {
        let ip = knapsack(&[7.0, 7.0, 7.0], &[2.0, 2.0, 2.0], 3.0);
        let s = solved(&ip);
        for &j in &ip.binary {
            let v = s.x[j];
            assert!((v - v.round()).abs() < 1e-6, "x[{j}]={v}");
        }
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut lp = LinearProgram::new(1);
        lp.set_upper(0, 1.0);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        let ip = IntegerProgram { lp, binary: vec![0] };
        assert_eq!(solve_ilp(&ip, SolveLimits::default()), IlpOutcome::Infeasible);
    }

    #[test]
    fn consistency_constraints_respected() {
        // x <= y; maximize 5x - y with both binary -> x=y=1 gives 4
        let mut lp = LinearProgram::new(2);
        lp.set_upper(0, 1.0);
        lp.set_upper(1, 1.0);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Sense::Le, 0.0);
        let ip = IntegerProgram { lp, binary: vec![0, 1] };
        let s = solved(&ip);
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert_eq!(s.x[0].round() as i32, 1);
        assert_eq!(s.x[1].round() as i32, 1);
    }

    #[test]
    fn node_limit_reported() {
        // large enough instance that 1 node can't prove optimality
        let values: Vec<f64> = (0..12).map(|i| 10.0 + (i % 5) as f64).collect();
        let weights: Vec<f64> = (0..12).map(|i| 5.0 + (i % 3) as f64).collect();
        let ip = knapsack(&values, &weights, 30.0);
        match solve_ilp(&ip, SolveLimits::nodes(2)) {
            IlpOutcome::Solved(s) => assert!(!s.proven_optimal),
            // Found nothing integral in 2 nodes: that is a limit, not an
            // infeasibility proof.
            IlpOutcome::Limit => {}
            other => panic!("{other:?}"),
        }
    }

    /// A node-capped solve on a feasible instance must never claim
    /// `Infeasible` — it either has an unproven incumbent or reports
    /// `Limit`.
    #[test]
    fn limit_never_misreported_as_infeasible() {
        let values: Vec<f64> = (0..14).map(|i| 10.0 + (i % 7) as f64).collect();
        let weights: Vec<f64> = (0..14).map(|i| 4.0 + (i % 5) as f64).collect();
        let ip = knapsack(&values, &weights, 25.0);
        for cap in 0..8 {
            match solve_ilp(&ip, SolveLimits::nodes(cap)) {
                IlpOutcome::Solved(_) | IlpOutcome::Limit => {}
                other => panic!("max_nodes={cap}: {other:?}"),
            }
        }
    }

    /// An already-expired deadline stops the search at the first node.
    #[test]
    fn expired_deadline_stops_search() {
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let limits = SolveLimits { deadline: Some(Instant::now()), ..SolveLimits::default() };
        match solve_ilp(&ip, limits) {
            IlpOutcome::Limit => {}
            IlpOutcome::Solved(s) => assert!(!s.proven_optimal),
            other => panic!("{other:?}"),
        }
    }

    /// A feasible warm start never changes the proven optimum, only the
    /// work needed to prove it (nodes expanded), and the prune counter
    /// actually records the incumbent doing its job.
    #[test]
    fn warm_start_preserves_optimum_and_prunes() {
        let values: Vec<f64> = (0..12).map(|i| 10.0 + (i % 5) as f64).collect();
        let weights: Vec<f64> = (0..12).map(|i| 5.0 + (i % 3) as f64).collect();
        let ip = knapsack(&values, &weights, 30.0);
        let cold = solved(&ip);
        assert!(cold.proven_optimal);

        let trace = Trace::recording();
        let limits = SolveLimits {
            warm_start: Some(cold.x.clone()),
            trace: trace.clone(),
            ..SolveLimits::default()
        };
        let warm = match solve_ilp(&ip, limits) {
            IlpOutcome::Solved(s) => s,
            other => panic!("{other:?}"),
        };
        assert!(warm.proven_optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(warm.nodes <= cold.nodes, "warm {} > cold {}", warm.nodes, cold.nodes);
        let r = trace.snapshot();
        assert_eq!(r.counter(Counter::SolverNodes), warm.nodes as u64);
        assert!(r.counter(Counter::BnbPrunedByIncumbent) > 0, "incumbent never pruned");
    }

    /// An infeasible or mis-sized seed must be ignored, not trusted.
    #[test]
    fn bad_warm_starts_are_ignored() {
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let cold = solved(&ip);
        for seed in [vec![1.0, 1.0, 1.0], vec![1.0]] {
            let limits = SolveLimits { warm_start: Some(seed), ..SolveLimits::default() };
            match solve_ilp(&ip, limits) {
                IlpOutcome::Solved(s) => {
                    assert!(s.proven_optimal);
                    assert!((s.objective - cold.objective).abs() < 1e-6);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    /// The all-zero point is feasible for a knapsack, so a zero warm
    /// start yields an incumbent even under a 0-node cap: the solve
    /// reports it (unproven) instead of `Limit`.
    #[test]
    fn zero_warm_start_survives_a_zero_node_cap() {
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let limits =
            SolveLimits { warm_start: Some(vec![0.0; 3]), ..SolveLimits::nodes(0) };
        match solve_ilp(&ip, limits) {
            IlpOutcome::Solved(s) => {
                assert!(!s.proven_optimal);
                assert!(s.objective.abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A fired cancel token stops the search the same way.
    #[test]
    fn cancelled_token_stops_search() {
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let token = CancelToken::new();
        token.cancel();
        let limits = SolveLimits { cancel: Some(token), ..SolveLimits::default() };
        match solve_ilp(&ip, limits) {
            IlpOutcome::Limit => {}
            IlpOutcome::Solved(s) => assert!(!s.proven_optimal),
            other => panic!("{other:?}"),
        }
    }
}
