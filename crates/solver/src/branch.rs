//! Best-first branch-and-bound for 0/1 integer programs over the LP
//! relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::lp::{LinearProgram, LpOutcome, Sense};
use crate::simplex;

/// Tolerance for calling a relaxation value integral.
const INT_EPS: f64 = 1e-6;

/// A 0/1 integer program: the LP plus the set of binary variables.
#[derive(Debug, Clone)]
pub struct IntegerProgram {
    /// The relaxation (binary variables must have upper bound ≤ 1).
    pub lp: LinearProgram,
    /// Indices of variables constrained to {0, 1}.
    pub binary: Vec<usize>,
}

/// Solver limits.
#[derive(Debug, Clone, Copy)]
pub struct SolveLimits {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: usize,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits { max_nodes: 50_000 }
    }
}

/// Result of an ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Variable assignment (binaries are exactly 0.0 or 1.0).
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// True when the search proved optimality (no node limit hit).
    pub proven_optimal: bool,
    /// Nodes expanded.
    pub nodes: usize,
}

/// ILP outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    Solved(IlpSolution),
    Infeasible,
    Unbounded,
}

struct Node {
    bound: f64,
    /// (variable, fixed value) pairs along this branch.
    fixings: Vec<(usize, u8)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap on bound: explore the most promising node first
        self.bound.total_cmp(&other.bound)
    }
}

/// Solve a 0/1 integer program by branch-and-bound (maximization).
pub fn solve_ilp(ip: &IntegerProgram, limits: SolveLimits) -> IlpOutcome {
    // Root relaxation.
    let root = match relax(ip, &[]) {
        RelaxResult::Solved(bound, x) => (bound, x),
        RelaxResult::Infeasible => return IlpOutcome::Infeasible,
        RelaxResult::Unbounded => return IlpOutcome::Unbounded,
    };

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut heap = BinaryHeap::new();
    heap.push(Node { bound: root.0, fixings: Vec::new() });
    let mut nodes = 0usize;
    let mut proven = true;

    while let Some(node) = heap.pop() {
        if nodes >= limits.max_nodes {
            proven = false;
            break;
        }
        nodes += 1;

        // Bound check against the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.bound <= *best + INT_EPS {
                continue;
            }
        }

        let (bound, x) = match relax(ip, &node.fixings) {
            RelaxResult::Solved(b, x) => (b, x),
            RelaxResult::Infeasible => continue,
            RelaxResult::Unbounded => return IlpOutcome::Unbounded,
        };
        if let Some((best, _)) = &incumbent {
            if bound <= *best + INT_EPS {
                continue;
            }
        }

        // Find the most fractional binary variable.
        let frac_var = ip
            .binary
            .iter()
            .copied()
            .map(|j| (j, (x[j] - x[j].round()).abs()))
            .filter(|&(_, f)| f > INT_EPS)
            .max_by(|a, b| a.1.total_cmp(&b.1));

        match frac_var {
            None => {
                // Integral: candidate incumbent (round away dust).
                let mut xi = x.clone();
                for &j in &ip.binary {
                    xi[j] = xi[j].round();
                }
                let obj = ip.lp.objective_value(&xi);
                if ip.lp.is_feasible(&xi, 1e-6)
                    && incumbent.as_ref().map(|(b, _)| obj > *b + INT_EPS).unwrap_or(true)
                {
                    incumbent = Some((obj, xi));
                }
            }
            Some((j, _)) => {
                for v in [1u8, 0u8] {
                    let mut fixings = node.fixings.clone();
                    fixings.push((j, v));
                    heap.push(Node { bound, fixings });
                }
            }
        }
    }

    match incumbent {
        Some((objective, x)) => IlpOutcome::Solved(IlpSolution {
            x,
            objective,
            proven_optimal: proven,
            nodes,
        }),
        None => {
            if proven {
                IlpOutcome::Infeasible
            } else {
                // ran out of nodes without any integral point
                IlpOutcome::Infeasible
            }
        }
    }
}

enum RelaxResult {
    Solved(f64, Vec<f64>),
    Infeasible,
    Unbounded,
}

/// Solve the LP relaxation with branch fixings applied as bound changes.
fn relax(ip: &IntegerProgram, fixings: &[(usize, u8)]) -> RelaxResult {
    let mut lp = ip.lp.clone();
    for &(j, v) in fixings {
        match v {
            0 => lp.set_upper(j, 0.0),
            _ => {
                // force x_j = 1 via an equality row (lower bounds are not
                // part of the model)
                lp.add_constraint(vec![(j, 1.0)], Sense::Eq, 1.0);
            }
        }
    }
    match simplex::solve(&lp) {
        LpOutcome::Optimal(s) => RelaxResult::Solved(s.objective, s.x),
        LpOutcome::Infeasible => RelaxResult::Infeasible,
        LpOutcome::Unbounded => RelaxResult::Unbounded,
        LpOutcome::IterationLimit => RelaxResult::Infeasible, // prune defensively
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LinearProgram;

    /// Binary knapsack helper.
    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> IntegerProgram {
        let n = values.len();
        let mut lp = LinearProgram::new(n);
        for (j, &v) in values.iter().enumerate() {
            lp.set_objective(j, v);
            lp.set_upper(j, 1.0);
        }
        lp.add_constraint(
            weights.iter().enumerate().map(|(j, &w)| (j, w)).collect(),
            Sense::Le,
            cap,
        );
        IntegerProgram { lp, binary: (0..n).collect() }
    }

    fn solved(ip: &IntegerProgram) -> IlpSolution {
        match solve_ilp(ip, SolveLimits::default()) {
            IlpOutcome::Solved(s) => s,
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn small_knapsack_optimal() {
        // values 10, 6, 5; weights 4, 3, 2; cap 5 -> pick {6,5} = 11
        let ip = knapsack(&[10.0, 6.0, 5.0], &[4.0, 3.0, 2.0], 5.0);
        let s = solved(&ip);
        assert!((s.objective - 11.0).abs() < 1e-6, "{s:?}");
        assert!(s.proven_optimal);
        assert_eq!(s.x[0].round() as i32, 0);
    }

    #[test]
    fn knapsack_vs_bruteforce() {
        // deterministic pseudo-random instances
        let mut seed = 42u64;
        let mut rand = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..20 {
            let n = 8;
            let values: Vec<f64> = (0..n).map(|_| (rand() * 20.0).round() + 1.0).collect();
            let weights: Vec<f64> = (0..n).map(|_| (rand() * 10.0).round() + 1.0).collect();
            let cap = weights.iter().sum::<f64>() * 0.4;
            let ip = knapsack(&values, &weights, cap);
            let s = solved(&ip);
            // brute force
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let w: f64 = (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| weights[j]).sum();
                if w <= cap + 1e-9 {
                    let v: f64 =
                        (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| values[j]).sum();
                    best = best.max(v);
                }
            }
            assert!(
                (s.objective - best).abs() < 1e-6,
                "ilp={} brute={best} values={values:?} weights={weights:?} cap={cap}",
                s.objective
            );
        }
    }

    #[test]
    fn binaries_are_integral() {
        let ip = knapsack(&[7.0, 7.0, 7.0], &[2.0, 2.0, 2.0], 3.0);
        let s = solved(&ip);
        for &j in &ip.binary {
            let v = s.x[j];
            assert!((v - v.round()).abs() < 1e-6, "x[{j}]={v}");
        }
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut lp = LinearProgram::new(1);
        lp.set_upper(0, 1.0);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        let ip = IntegerProgram { lp, binary: vec![0] };
        assert_eq!(solve_ilp(&ip, SolveLimits::default()), IlpOutcome::Infeasible);
    }

    #[test]
    fn consistency_constraints_respected() {
        // x <= y; maximize 5x - y with both binary -> x=y=1 gives 4
        let mut lp = LinearProgram::new(2);
        lp.set_upper(0, 1.0);
        lp.set_upper(1, 1.0);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Sense::Le, 0.0);
        let ip = IntegerProgram { lp, binary: vec![0, 1] };
        let s = solved(&ip);
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert_eq!(s.x[0].round() as i32, 1);
        assert_eq!(s.x[1].round() as i32, 1);
    }

    #[test]
    fn node_limit_reported() {
        // large enough instance that 1 node can't prove optimality
        let values: Vec<f64> = (0..12).map(|i| 10.0 + (i % 5) as f64).collect();
        let weights: Vec<f64> = (0..12).map(|i| 5.0 + (i % 3) as f64).collect();
        let ip = knapsack(&values, &weights, 30.0);
        match solve_ilp(&ip, SolveLimits { max_nodes: 2 }) {
            IlpOutcome::Solved(s) => assert!(!s.proven_optimal),
            IlpOutcome::Infeasible => {} // found nothing integral in 2 nodes — acceptable
            other => panic!("{other:?}"),
        }
    }
}
