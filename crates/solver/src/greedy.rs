//! Greedy baseline selection, in the style of the commercial tools the
//! paper contrasts with ("all these tools are based on greedy heuristics").
//!
//! Generic over the benefit oracle so the advisor can plug in either plain
//! optimizer costing or the INUM cached model: at every step the candidate
//! with the best marginal benefit per unit size is added, re-evaluating
//! benefits because index interactions change them.

/// A candidate item for greedy selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyItem {
    /// Caller-defined candidate id.
    pub id: usize,
    /// Size in bytes charged against the budget.
    pub size: u64,
}

/// Greedy selection: repeatedly pick the candidate with the highest
/// marginal benefit density until the budget is exhausted or no candidate
/// improves the objective.
///
/// `benefit(selected, candidate)` must return the marginal benefit of
/// adding `candidate` on top of `selected` (in cost units; ≤ 0 means no
/// improvement).
pub fn greedy_select<F>(items: &[GreedyItem], budget: u64, mut benefit: F) -> Vec<usize>
where
    F: FnMut(&[usize], usize) -> f64,
{
    greedy_select_batch(items, budget, |selected, ids| {
        ids.iter().map(|&id| benefit(selected, id)).collect()
    })
}

/// [`greedy_select`] with a *batch* benefit oracle: each round, the oracle
/// receives every candidate that still fits the budget (in input order) and
/// returns their marginal benefits in the same order. This lets callers
/// evaluate the round's candidates in parallel while the selection itself —
/// including the first-strict-maximum tie-break — remains exactly the
/// per-item loop's.
pub fn greedy_select_batch<F>(items: &[GreedyItem], budget: u64, mut benefits: F) -> Vec<usize>
where
    F: FnMut(&[usize], &[usize]) -> Vec<f64>,
{
    let mut selected: Vec<usize> = Vec::new();
    let mut remaining: Vec<GreedyItem> = items.to_vec();
    let mut budget_left = budget;

    loop {
        let eligible: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, item)| item.size <= budget_left)
            .map(|(pos, _)| pos)
            .collect();
        if eligible.is_empty() {
            break;
        }
        let ids: Vec<usize> = eligible.iter().map(|&pos| remaining[pos].id).collect();
        let round = benefits(&selected, &ids);
        assert_eq!(round.len(), ids.len(), "batch oracle must score every candidate");

        let mut best: Option<(usize, f64)> = None; // (position in remaining, density)
        for (&pos, &b) in eligible.iter().zip(&round) {
            if b <= 0.0 {
                continue;
            }
            let density = b / remaining[pos].size.max(1) as f64;
            if best.map(|(_, d)| density > d).unwrap_or(true) {
                best = Some((pos, density));
            }
        }
        match best {
            Some((pos, _)) => {
                let item = remaining.remove(pos);
                budget_left -= item.size;
                selected.push(item.id);
            }
            None => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_by_density_with_static_benefits() {
        let items = vec![
            GreedyItem { id: 0, size: 10 }, // benefit 100 -> density 10
            GreedyItem { id: 1, size: 1 },  // benefit 20  -> density 20
            GreedyItem { id: 2, size: 10 }, // benefit 10  -> density 1
        ];
        let benefits = [100.0, 20.0, 10.0];
        let picked = greedy_select(&items, 11, |_, id| benefits[id]);
        assert_eq!(picked, vec![1, 0]);
    }

    #[test]
    fn budget_limits_selection() {
        let items = vec![
            GreedyItem { id: 0, size: 10 },
            GreedyItem { id: 1, size: 10 },
        ];
        let picked = greedy_select(&items, 10, |_, _| 5.0);
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn non_improving_items_skipped() {
        let items = vec![GreedyItem { id: 0, size: 1 }, GreedyItem { id: 1, size: 1 }];
        let picked = greedy_select(&items, 100, |_, id| if id == 0 { 1.0 } else { -5.0 });
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn interactions_reduce_marginal_benefit() {
        // second copy of the "same" index gives no additional benefit
        let items = vec![GreedyItem { id: 0, size: 1 }, GreedyItem { id: 1, size: 1 }];
        let picked = greedy_select(&items, 100, |selected, _| {
            if selected.is_empty() {
                10.0
            } else {
                0.0
            }
        });
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(greedy_select(&[], 100, |_, _| 1.0).is_empty());
    }

    #[test]
    fn batch_matches_per_item_on_ties() {
        // Equal densities everywhere: both variants must keep the
        // first-strict-maximum winner (input order).
        let items: Vec<GreedyItem> = (0..6).map(|id| GreedyItem { id, size: 2 }).collect();
        let per_item = greedy_select(&items, 7, |_, _| 4.0);
        let batch = greedy_select_batch(&items, 7, |_, ids| vec![4.0; ids.len()]);
        assert_eq!(per_item, batch);
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn batch_oracle_sees_only_affordable_candidates() {
        let items = vec![
            GreedyItem { id: 0, size: 50 },
            GreedyItem { id: 1, size: 200 }, // never fits
            GreedyItem { id: 2, size: 50 },
        ];
        let mut seen: Vec<Vec<usize>> = Vec::new();
        let picked = greedy_select_batch(&items, 100, |_, ids| {
            seen.push(ids.to_vec());
            ids.iter().map(|&id| (id + 1) as f64).collect()
        });
        assert_eq!(picked, vec![2, 0]);
        assert!(seen.iter().all(|round| !round.contains(&1)));
    }
}
