//! Greedy baseline selection, in the style of the commercial tools the
//! paper contrasts with ("all these tools are based on greedy heuristics").
//!
//! Generic over the benefit oracle so the advisor can plug in either plain
//! optimizer costing or the INUM cached model: at every step the candidate
//! with the best marginal benefit per unit size is added, re-evaluating
//! benefits because index interactions change them.

/// A candidate item for greedy selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyItem {
    /// Caller-defined candidate id.
    pub id: usize,
    /// Size in bytes charged against the budget.
    pub size: u64,
}

/// Greedy selection: repeatedly pick the candidate with the highest
/// marginal benefit density until the budget is exhausted or no candidate
/// improves the objective.
///
/// `benefit(selected, candidate)` must return the marginal benefit of
/// adding `candidate` on top of `selected` (in cost units; ≤ 0 means no
/// improvement).
pub fn greedy_select<F>(items: &[GreedyItem], budget: u64, mut benefit: F) -> Vec<usize>
where
    F: FnMut(&[usize], usize) -> f64,
{
    let mut selected: Vec<usize> = Vec::new();
    let mut remaining: Vec<GreedyItem> = items.to_vec();
    let mut budget_left = budget;

    loop {
        let mut best: Option<(usize, f64)> = None; // (position in remaining, density)
        for (pos, item) in remaining.iter().enumerate() {
            if item.size > budget_left {
                continue;
            }
            let b = benefit(&selected, item.id);
            if b <= 0.0 {
                continue;
            }
            let density = b / item.size.max(1) as f64;
            if best.map(|(_, d)| density > d).unwrap_or(true) {
                best = Some((pos, density));
            }
        }
        match best {
            Some((pos, _)) => {
                let item = remaining.remove(pos);
                budget_left -= item.size;
                selected.push(item.id);
            }
            None => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_by_density_with_static_benefits() {
        let items = vec![
            GreedyItem { id: 0, size: 10 }, // benefit 100 -> density 10
            GreedyItem { id: 1, size: 1 },  // benefit 20  -> density 20
            GreedyItem { id: 2, size: 10 }, // benefit 10  -> density 1
        ];
        let benefits = [100.0, 20.0, 10.0];
        let picked = greedy_select(&items, 11, |_, id| benefits[id]);
        assert_eq!(picked, vec![1, 0]);
    }

    #[test]
    fn budget_limits_selection() {
        let items = vec![
            GreedyItem { id: 0, size: 10 },
            GreedyItem { id: 1, size: 10 },
        ];
        let picked = greedy_select(&items, 10, |_, _| 5.0);
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn non_improving_items_skipped() {
        let items = vec![GreedyItem { id: 0, size: 1 }, GreedyItem { id: 1, size: 1 }];
        let picked = greedy_select(&items, 100, |_, id| if id == 0 { 1.0 } else { -5.0 });
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn interactions_reduce_marginal_benefit() {
        // second copy of the "same" index gives no additional benefit
        let items = vec![GreedyItem { id: 0, size: 1 }, GreedyItem { id: 1, size: 1 }];
        let picked = greedy_select(&items, 100, |selected, _| {
            if selected.is_empty() {
                10.0
            } else {
                0.0
            }
        });
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(greedy_select(&[], 100, |_, _| 1.0).is_empty());
    }
}
