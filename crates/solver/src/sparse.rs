//! CSR-style sparse matrix for the advisor's benefit matrix.
//!
//! The (query/template × candidate) benefit matrix is overwhelmingly
//! zero once below-epsilon cells are dropped — an index helps the few
//! statements that touch its table and columns. Materializing the dense
//! `Vec<Vec<f64>>` is quadratic waste at workload scale; this structure
//! stores nonzeros only and hands the ILP construction row iterators, so
//! memory and LP size follow `nnz`, not `rows × cols`.
//!
//! The layout is the classic compressed-sparse-row triple
//! (`row_ptr` / `col_idx` / `values`); building from row-major entries
//! is O(nnz) and iteration order is exactly the insertion order, which
//! keeps every consumer bit-identical to an equivalent dense scan.

/// Immutable CSR matrix over `f64` entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s entries.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from row-major entries: `(row, col, value)` triples sorted
    /// by `(row, col)` with no duplicates (the natural order of a scan
    /// that skips below-epsilon cells).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or an order violation — both are
    /// construction bugs, not data conditions.
    pub fn from_row_major(
        rows: usize,
        cols: usize,
        entries: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> SparseMatrix {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut cur_row = 0usize;
        let mut last_col: Option<usize> = None;
        for (r, c, v) in entries {
            assert!(r < rows && c < cols, "entry ({r}, {c}) outside {rows}x{cols}");
            assert!(
                r > cur_row || (r == cur_row && last_col.map_or(true, |lc| c > lc)),
                "entries must be strictly row-major: ({r}, {c}) after ({cur_row}, {last_col:?})"
            );
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            last_col = Some(c);
            col_idx.push(c);
            values.push(v);
        }
        while row_ptr.len() <= rows {
            row_ptr.push(col_idx.len());
        }
        SparseMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Materialized nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `rows × cols` — what a dense representation would materialize.
    pub fn dense_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// The entries of row `r`, as `(col, value)` in ascending column
    /// order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()].iter().copied().zip(self.values[span].iter().copied())
    }

    /// The entries of column `c`, as `(row, value)` in ascending row
    /// order (binary search per row; the matrices here are shallow).
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.rows).filter_map(move |r| {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            self.col_idx[span.clone()]
                .binary_search(&c)
                .ok()
                .map(|k| (r, self.values[span.start + k]))
        })
    }

    /// Every entry as `(row, col, value)`, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// The value at `(r, c)` (0.0 for an unmaterialized cell).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        match self.col_idx[span.clone()].binary_search(&c) {
            Ok(k) => self.values[span.start + k],
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // 3x4:  [ .  1  .  2 ]
        //       [ .  .  .  . ]
        //       [ 3  .  4  . ]
        SparseMatrix::from_row_major(
            3,
            4,
            vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0), (2, 2, 4.0)],
        )
    }

    #[test]
    fn shape_and_counts() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.dense_cells(), 12);
    }

    #[test]
    fn row_iteration_matches_dense() {
        let m = sample();
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 1.0), (3, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 3.0), (2, 4.0)]);
    }

    #[test]
    fn col_iteration_matches_dense() {
        let m = sample();
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(2, 3.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(m.col(3).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(m.col(2).collect::<Vec<_>>(), vec![(2, 4.0)]);
    }

    #[test]
    fn get_returns_zero_for_missing_cells() {
        let m = sample();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 3), 0.0);
    }

    #[test]
    fn iter_is_row_major() {
        let m = sample();
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0), (2, 2, 4.0)]
        );
    }

    #[test]
    fn empty_and_trailing_rows() {
        let m = SparseMatrix::from_row_major(4, 2, vec![(1, 0, 5.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(3).count(), 0);
        assert_eq!(m.get(1, 0), 5.0);
        let e = SparseMatrix::from_row_major(0, 0, vec![]);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.dense_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly row-major")]
    fn order_violation_panics() {
        SparseMatrix::from_row_major(2, 2, vec![(1, 0, 1.0), (0, 1, 1.0)]);
    }
}
