//! Property tests: the branch-and-bound ILP solver must agree with brute
//! force on random small 0/1 programs, and the simplex must return
//! feasible optima.

use parinda_solver::{
    solve_ilp, solve_lp, IlpOutcome, IntegerProgram, LinearProgram, LpOutcome, Sense, SolveLimits,
};
use proptest::prelude::*;

/// A random binary knapsack with an optional side constraint.
fn knapsack_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (2usize..9).prop_flat_map(|n| {
        (
            prop::collection::vec(1u32..40, n).prop_map(|v| v.into_iter().map(f64::from).collect()),
            prop::collection::vec(1u32..15, n).prop_map(|v| v.into_iter().map(f64::from).collect()),
            1u32..40,
        )
            .prop_map(|(values, weights, cap)| (values, weights, f64::from(cap)))
    })
}

fn brute_force_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let w: f64 = (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| weights[j]).sum();
        if w <= cap + 1e-9 {
            let v: f64 = (0..n).filter(|&j| mask & (1 << j) != 0).map(|j| values[j]).sum();
            best = best.max(v);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ilp_matches_bruteforce_on_knapsacks((values, weights, cap) in knapsack_strategy()) {
        let n = values.len();
        let mut lp = LinearProgram::new(n);
        for (j, &v) in values.iter().enumerate() {
            lp.set_objective(j, v);
            lp.set_upper(j, 1.0);
        }
        lp.add_constraint(
            weights.iter().enumerate().map(|(j, &w)| (j, w)).collect(),
            Sense::Le,
            cap,
        );
        let ip = IntegerProgram { lp, binary: (0..n).collect() };
        let expected = brute_force_knapsack(&values, &weights, cap);
        match solve_ilp(&ip, SolveLimits::default()) {
            IlpOutcome::Solved(s) => {
                prop_assert!(s.proven_optimal);
                prop_assert!((s.objective - expected).abs() < 1e-6,
                    "ilp={} brute={expected}", s.objective);
                // solution must be integral and feasible
                prop_assert!(ip.lp.is_feasible(&s.x, 1e-6));
                for &j in &ip.binary {
                    prop_assert!((s.x[j] - s.x[j].round()).abs() < 1e-6);
                }
            }
            IlpOutcome::Infeasible => prop_assert!(expected == 0.0),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn ilp_with_consistency_constraints_matches_bruteforce(
        (values, weights, cap) in knapsack_strategy(),
        link in 0usize..4,
    ) {
        // x_0 <= x_link: item 0 may only be taken together with item link.
        let n = values.len();
        let link = link % n;
        let mut lp = LinearProgram::new(n);
        for (j, &v) in values.iter().enumerate() {
            lp.set_objective(j, v);
            lp.set_upper(j, 1.0);
        }
        lp.add_constraint(
            weights.iter().enumerate().map(|(j, &w)| (j, w)).collect(),
            Sense::Le,
            cap,
        );
        lp.add_constraint(vec![(0, 1.0), (link, -1.0)], Sense::Le, 0.0);
        let ip = IntegerProgram { lp, binary: (0..n).collect() };

        // brute force with the side constraint
        let mut expected = 0.0f64;
        for mask in 0u32..(1 << n) {
            let take = |j: usize| mask & (1 << j) != 0;
            if take(0) && !take(link) {
                continue;
            }
            let w: f64 = (0..n).filter(|&j| take(j)).map(|j| weights[j]).sum();
            if w <= cap + 1e-9 {
                let v: f64 = (0..n).filter(|&j| take(j)).map(|j| values[j]).sum();
                expected = expected.max(v);
            }
        }

        match solve_ilp(&ip, SolveLimits::default()) {
            IlpOutcome::Solved(s) => {
                prop_assert!((s.objective - expected).abs() < 1e-6,
                    "ilp={} brute={expected}", s.objective);
            }
            IlpOutcome::Infeasible => prop_assert!(expected == 0.0),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn lp_optimum_is_feasible_and_bounds_ilp(
        (values, weights, cap) in knapsack_strategy()
    ) {
        let n = values.len();
        let mut lp = LinearProgram::new(n);
        for (j, &v) in values.iter().enumerate() {
            lp.set_objective(j, v);
            lp.set_upper(j, 1.0);
        }
        lp.add_constraint(
            weights.iter().enumerate().map(|(j, &w)| (j, w)).collect(),
            Sense::Le,
            cap,
        );
        let relaxed = match solve_lp(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.x, 1e-6), "infeasible LP optimum {:?}", s.x);
                s.objective
            }
            other => return Err(TestCaseError::fail(format!("LP failed: {other:?}"))),
        };
        let expected = brute_force_knapsack(&values, &weights, cap);
        // LP relaxation upper-bounds the integer optimum
        prop_assert!(relaxed >= expected - 1e-6, "relaxation {relaxed} < integer {expected}");
    }
}
