//! Greedy index selection — the baseline the paper positions ILP against
//! ("all these commercial tools are based on greedy heuristics").
//!
//! Classic DTA-style loop: at each step add the candidate with the best
//! marginal workload benefit per byte, re-evaluating marginal benefits with
//! the INUM model (so the comparison against ILP is cost-model-fair).

use parinda_inum::{CandId, CandidateIndex, Configuration, InumModel};
use parinda_parallel::{par_map, par_map_indexed, Budget};
use parinda_solver::{greedy_select_batch, GreedyItem};

use crate::ilp_index::{finish_selection, IndexSelection, SolverConstraints};

/// Select indexes greedily under a storage budget (bytes).
pub fn select_indexes_greedy(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
) -> IndexSelection {
    select_indexes_greedy_budgeted(model, candidates, budget_bytes, &Budget::unlimited())
}

/// [`select_indexes_greedy`] under a [`Budget`]: the budget is checked at
/// each selection round (a round cap counts selection rounds), and an
/// interrupted run returns the indexes picked so far, flagged
/// `degraded: true`. With an unlimited budget this is exactly
/// [`select_indexes_greedy`].
pub fn select_indexes_greedy_budgeted(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    budget: &Budget,
) -> IndexSelection {
    greedy_budgeted_base(model, candidates, budget_bytes, budget, &[])
}

/// [`select_indexes_greedy_budgeted`] under [`SolverConstraints`]:
/// pinned indexes seed the current configuration (and are charged
/// against `budget_bytes` first), banned ones never enter the candidate
/// pool, so every marginal benefit the loop prices is *relative to the
/// pins*. With empty constraints this is exactly
/// [`select_indexes_greedy_budgeted`].
pub fn select_indexes_greedy_constrained(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    budget: &Budget,
    constraints: &SolverConstraints,
) -> IndexSelection {
    let pinned: Vec<CandId> =
        constraints.pinned.iter().map(|c| model.register_candidate(c.clone())).collect();
    let pool = constraints.filter_pool(candidates);
    let pinned_size: u64 = pinned.iter().map(|&id| model.candidate_size(id)).sum();
    let search_budget = budget_bytes.saturating_sub(pinned_size);
    greedy_budgeted_base(model, &pool, search_budget, budget, &pinned)
}

/// The greedy body. `base` is the pinned configuration: the selection
/// loop starts from it and it is prepended to the picks. Empty `base`
/// reproduces the historical unconstrained path bit-for-bit.
fn greedy_budgeted_base(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    budget: &Budget,
    base: &[CandId],
) -> IndexSelection {
    let trace = model.trace().clone();
    let _span = trace.span("greedy_rounds");
    let cand_ids: Vec<CandId> =
        candidates.iter().map(|c| model.register_candidate(c.clone())).collect();
    let nq = model.queries().len();
    let par = model.parallelism();
    let base_cfg = Configuration::from_ids(base.iter().copied());
    let model_ref = &*model;
    // Weighted models (compressed workloads) scale everything by the
    // template weight; ×1.0 on unweighted models is bit-identical.
    let base_costs: Vec<f64> =
        par_map_indexed(par, nq, |q| model_ref.cost(q, &base_cfg) * model_ref.weight(q));

    let items: Vec<GreedyItem> = cand_ids
        .iter()
        .enumerate()
        .map(|(pos, &id)| GreedyItem { id: pos, size: model.candidate_size(id) })
        .collect();

    // Each round re-evaluates every still-affordable candidate's marginal
    // benefit; the (candidate × query) probes are independent, so a round
    // fans out over the pool. The current-config cost is hoisted out of
    // the per-candidate closure — it is the same for all of them.
    //
    // Budget hook: once the budget is exceeded, the oracle reports zero
    // benefit for everything, which terminates the selection loop with
    // the picks made so far (best-so-far semantics).
    let rounds = std::cell::Cell::new(0usize);
    let stopped = std::cell::Cell::new(false);
    let picked_pos = greedy_select_batch(&items, budget_bytes, |selected, eligible| {
        if budget.exceeded(rounds.get()) {
            stopped.set(true);
            return vec![0.0; eligible.len()];
        }
        rounds.set(rounds.get() + 1);
        let _round = trace.span("greedy_rounds/round");
        let current: Configuration = Configuration::from_ids(
            base.iter().copied().chain(selected.iter().map(|&p| cand_ids[p])),
        );
        let current_cost = model_ref.workload_cost(&current);
        trace.count(parinda_trace::Counter::CandidatesEvaluated, eligible.len() as u64);
        par_map(par, eligible, |&pos| {
            current_cost - model_ref.workload_cost(&current.with(cand_ids[pos]))
        })
    });

    let mut chosen: Vec<CandId> = base.to_vec();
    chosen.extend(picked_pos.iter().map(|&p| cand_ids[p]));
    let degraded = stopped.get();
    let mut selection = finish_selection(model, chosen, &base_costs, !degraded);
    selection.degraded = degraded;
    selection.budget =
        degraded.then(|| budget.report(rounds.get(), candidates.len().saturating_sub(rounds.get())));
    selection
}

/// Classic single-pass greedy (the "greedy heuristic" of the commercial
/// tools, §1): benefits are computed once per candidate against the base
/// design and never re-evaluated, so interactions between chosen indexes
/// are ignored — redundant candidates look as good as complementary ones.
pub fn select_indexes_greedy_static(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
) -> IndexSelection {
    let cand_ids: Vec<CandId> =
        candidates.iter().map(|c| model.register_candidate(c.clone())).collect();
    let nq = model.queries().len();
    let empty = Configuration::empty();
    let base_costs: Vec<f64> =
        (0..nq).map(|q| model.cost(q, &empty) * model.weight(q)).collect();
    let base_total: f64 = base_costs.iter().sum();

    // one-shot benefits
    let mut scored: Vec<(usize, f64, u64)> = cand_ids
        .iter()
        .enumerate()
        .map(|(pos, &id)| {
            let with = Configuration::from_ids([id]);
            let benefit = base_total - model.workload_cost(&with);
            (pos, benefit, model.candidate_size(id))
        })
        .filter(|&(_, b, _)| b > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        let da = a.1 / a.2.max(1) as f64;
        let db = b.1 / b.2.max(1) as f64;
        db.total_cmp(&da)
    });

    let mut chosen = Vec::new();
    let mut left = budget_bytes;
    for (pos, _, size) in scored {
        if size <= left {
            left -= size;
            chosen.push(cand_ids[pos]);
        }
    }
    finish_selection(model, chosen, &base_costs, true)
}
