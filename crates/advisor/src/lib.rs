//! # parinda-advisor
//!
//! The automatic design components of PARINDA:
//!
//! * candidate index generation by workload analysis (§3.4),
//! * ILP-based index selection over the INUM cached cost model (§3.4),
//! * the greedy baseline the paper contrasts against,
//! * AutoPart vertical partitioning with atomic/composite fragments and
//!   replication constraints (§3.3),
//! * the automatic query rewriter for partitioned schemas (§3.3).

#![allow(missing_docs)]

pub mod autopart;
pub mod candidates;
pub mod fragments;
pub mod greedy_index;
pub mod ilp_index;
pub mod rewrite;

pub use autopart::{
    suggest_partitions, suggest_partitions_budgeted, suggest_partitions_par,
    suggest_partitions_traced, AdvisorError, AutoPartConfig, PartitionSuggestion,
};
pub use candidates::{generate_candidates, CandidateLimits};
pub use fragments::{atomic_fragments, replication_overhead, Fragment};
pub use greedy_index::{
    select_indexes_greedy, select_indexes_greedy_budgeted, select_indexes_greedy_constrained,
    select_indexes_greedy_static,
};
pub use ilp_index::{
    index_update_cost, select_indexes_ilp, select_indexes_ilp_budgeted,
    select_indexes_ilp_constrained, select_indexes_ilp_with, IlpOptions, IndexSelection,
    SolverConstraints,
};
pub use rewrite::{rewrite_select, NamedFragment, PartitionDesign, RewriteError};
