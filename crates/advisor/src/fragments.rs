//! Fragment algebra for AutoPart (Papadomanolakis & Ailamaki, SSDBM'04;
//! paper §3.3).
//!
//! *Atomic fragments* are "the 'thinnest' possible fragments of the
//! partitioned tables … accessed atomically": group a table's columns by
//! the exact set of workload queries touching them — columns always read
//! together end up in the same atomic fragment. *Composite fragments* are
//! unions of fragments built during the iterative improvement loop.

use std::collections::{BTreeMap, BTreeSet};

use parinda_catalog::{layout, MetadataProvider, TableId};
use parinda_optimizer::BoundQuery;

/// A vertical fragment of one table: a set of column positions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fragment {
    pub table: TableId,
    /// Column positions, sorted (primary-key columns are implicit: every
    /// materialized fragment carries them for reconstruction).
    pub columns: BTreeSet<usize>,
}

impl Fragment {
    /// New fragment.
    pub fn new<I: IntoIterator<Item = usize>>(table: TableId, columns: I) -> Self {
        Fragment { table, columns: columns.into_iter().collect() }
    }

    /// Union of two fragments of the same table.
    pub fn union(&self, other: &Fragment) -> Option<Fragment> {
        if self.table != other.table {
            return None;
        }
        Some(Fragment {
            table: self.table,
            columns: self.columns.union(&other.columns).copied().collect(),
        })
    }

    /// Does this fragment contain all of `cols`?
    pub fn covers<I: IntoIterator<Item = usize>>(&self, cols: I) -> bool {
        cols.into_iter().all(|c| self.columns.contains(&c))
    }

    /// Stored bytes of the fragment (fragment columns + the table's PK),
    /// used for the replication constraint.
    pub fn size_bytes(&self, meta: &dyn MetadataProvider) -> u64 {
        let Some(table) = meta.table(self.table) else { return 0 };
        let mut cols: Vec<usize> = table.primary_key.clone();
        for &c in &self.columns {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        let col_defs: Vec<parinda_catalog::Column> =
            cols.iter().map(|&i| table.columns[i].clone()).collect();
        layout::heap_pages(table.row_count, &col_defs) * layout::PAGE_SIZE as u64
    }
}

/// Compute the atomic fragments of every table the workload touches.
///
/// Returns fragments grouped by table; unused columns of a table form one
/// extra "cold" fragment so the partitioning is complete.
pub fn atomic_fragments(
    queries: &[BoundQuery],
    meta: &dyn MetadataProvider,
) -> Vec<Fragment> {
    use std::collections::HashMap;
    // signature per (table, column): sorted set of query indices using it
    let mut sig: HashMap<(TableId, usize), BTreeSet<usize>> = HashMap::new();
    let mut tables: BTreeSet<TableId> = BTreeSet::new();
    for (qi, q) in queries.iter().enumerate() {
        for rel in &q.rels {
            tables.insert(rel.table);
            for &col in &rel.needed_columns {
                sig.entry((rel.table, col)).or_default().insert(qi);
            }
        }
    }

    let mut out = Vec::new();
    for table in tables {
        let Some(t) = meta.table(table) else { continue };
        // group columns by signature (BTreeMap: fragment order must not
        // depend on hash iteration — determinism contract)
        let mut groups: BTreeMap<BTreeSet<usize>, BTreeSet<usize>> = BTreeMap::new();
        let mut cold: BTreeSet<usize> = BTreeSet::new();
        for col in 0..t.columns.len() {
            match sig.get(&(table, col)) {
                Some(s) => {
                    groups.entry(s.clone()).or_default().insert(col);
                }
                None => {
                    cold.insert(col);
                }
            }
        }
        let mut frags: Vec<Fragment> = groups
            .into_values()
            .map(|columns| Fragment { table, columns })
            .collect();
        if !cold.is_empty() {
            frags.push(Fragment { table, columns: cold });
        }
        frags.sort();
        out.extend(frags);
    }
    out
}

/// Extra bytes a set of fragments needs beyond the original tables
/// (replicated PKs and any column stored in more than one fragment).
pub fn replication_overhead(fragments: &[Fragment], meta: &dyn MetadataProvider) -> i64 {
    let mut per_table: BTreeMap<TableId, Vec<&Fragment>> = BTreeMap::new();
    for f in fragments {
        per_table.entry(f.table).or_default().push(f);
    }
    let mut overhead = 0i64;
    for (table, frags) in per_table {
        let Some(t) = meta.table(table) else { continue };
        let base = (t.pages * layout::PAGE_SIZE as u64) as i64;
        let total: i64 = frags.iter().map(|f| f.size_bytes(meta) as i64).sum();
        overhead += total - base;
    }
    overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Catalog, Column, SqlType};
    use parinda_optimizer::bind;
    use parinda_sql::parse_select;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
                Column::new("dec", SqlType::Float8).not_null(),
                Column::new("rmag", SqlType::Float8).not_null(),
                Column::new("gmag", SqlType::Float8).not_null(),
                Column::new("notes", SqlType::Text),
            ],
            100_000,
        );
        c.table_mut(t).unwrap().primary_key = vec![0];
        c
    }

    fn frags(sqls: &[&str]) -> Vec<Fragment> {
        let c = catalog();
        let qs: Vec<_> = sqls
            .iter()
            .map(|s| bind(&parse_select(s).unwrap(), &c).unwrap())
            .collect();
        atomic_fragments(&qs, &c)
    }

    #[test]
    fn co_accessed_columns_group_together() {
        let v = frags(&[
            "SELECT ra, dec FROM photoobj WHERE objid = 1",
            "SELECT rmag, gmag FROM photoobj WHERE objid = 2",
        ]);
        // groups: {objid}, {ra,dec}, {rmag,gmag}, cold {notes}
        assert_eq!(v.len(), 4);
        assert!(v.iter().any(|f| f.columns == BTreeSet::from([1, 2])));
        assert!(v.iter().any(|f| f.columns == BTreeSet::from([3, 4])));
        assert!(v.iter().any(|f| f.columns == BTreeSet::from([5])));
    }

    #[test]
    fn differently_accessed_columns_split() {
        let v = frags(&[
            "SELECT ra FROM photoobj",
            "SELECT ra, dec FROM photoobj",
        ]);
        // ra used by {0,1}, dec by {1} -> separate fragments
        let ra = v.iter().find(|f| f.columns.contains(&1)).unwrap();
        assert!(!ra.columns.contains(&2));
    }

    #[test]
    fn union_same_table_only() {
        let a = Fragment::new(TableId(0), [1]);
        let b = Fragment::new(TableId(0), [2, 3]);
        let c = Fragment::new(TableId(1), [1]);
        assert_eq!(a.union(&b).unwrap().columns, BTreeSet::from([1, 2, 3]));
        assert!(a.union(&c).is_none());
    }

    #[test]
    fn covers_checks_subset() {
        let f = Fragment::new(TableId(0), [1, 2, 3]);
        assert!(f.covers([1, 3]));
        assert!(!f.covers([4]));
    }

    #[test]
    fn fragment_sizes_scale_with_width() {
        let c = catalog();
        let narrow = Fragment::new(TableId(0), [1]);
        let wide = Fragment::new(TableId(0), [1, 2, 3, 4]);
        assert!(narrow.size_bytes(&c) < wide.size_bytes(&c));
    }

    #[test]
    fn replication_overhead_roughly_pk_cost() {
        let c = catalog();
        // full partitioning into 2 fragments duplicates the PK once
        let f1 = Fragment::new(TableId(0), [1, 2]);
        let f2 = Fragment::new(TableId(0), [3, 4, 5]);
        let o = replication_overhead(&[f1, f2], &c);
        // PK is 8 bytes/row + per-fragment tuple headers; must be > 0 and
        // far below the base table size
        assert!(o > 0);
        let base = c.table_by_name("photoobj").unwrap().pages * 8192;
        assert!((o as u64) < base);
    }
}
