//! The AutoPart algorithm (paper §3.3): iterative vertical-partitioning
//! selection using the what-if table component.
//!
//! 1. Determine atomic fragments from the workload.
//! 2. Selected fragments := atomic fragments.
//! 3. Loop: generate composite fragments by combining selected fragments
//!    with atomic/selected fragments; rewrite the workload; evaluate every
//!    candidate design with what-if partitions; keep the best improvement
//!    that fits the replication constraint; stop when no improvement.

use parinda_catalog::{Catalog, MetadataProvider, TableId};
use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
use parinda_parallel::{par_map, par_map_indexed, Budget, BudgetReport, Parallelism};
use parinda_sql::Select;
use parinda_trace::{Counter, Trace};
use parinda_whatif::{HypotheticalCatalog, WhatIfPartition};

use crate::fragments::{atomic_fragments, replication_overhead, Fragment};
use crate::rewrite::{rewrite_select, NamedFragment, PartitionDesign};

/// AutoPart configuration.
#[derive(Debug, Clone, Copy)]
pub struct AutoPartConfig {
    /// Extra bytes the partitioned layout may occupy beyond the original
    /// tables (replicated PKs / columns) — the paper's "maximum space taken
    /// by replicated columns" constraint.
    pub replication_limit_bytes: i64,
    /// Safety cap on improvement iterations.
    pub max_iterations: usize,
    /// Improvement threshold: stop when the best candidate improves the
    /// workload cost by less than this fraction.
    pub min_improvement: f64,
}

impl Default for AutoPartConfig {
    fn default() -> Self {
        AutoPartConfig {
            replication_limit_bytes: i64::MAX,
            max_iterations: 32,
            min_improvement: 1e-4,
        }
    }
}

/// Result of partition suggestion.
#[derive(Debug, Clone)]
pub struct PartitionSuggestion {
    /// The selected fragments.
    pub design: PartitionDesign,
    /// Workload cost on the original design.
    pub cost_before: f64,
    /// Workload cost on the partitioned design.
    pub cost_after: f64,
    /// Per-query (before, after) costs.
    pub per_query: Vec<(f64, f64)>,
    /// The rewritten workload (original statement when rewriting was not
    /// possible or not beneficial for that query).
    pub rewritten: Vec<Select>,
    /// Improvement iterations executed.
    pub iterations: usize,
    /// Did a budget (deadline, round cap, or cancellation) stop the
    /// improvement loop early? The design is still valid — the best one
    /// found before the budget expired.
    pub degraded: bool,
    /// How far the run got, when `degraded` is set.
    pub budget: Option<BudgetReport>,
}

impl PartitionSuggestion {
    /// Average workload speedup factor.
    pub fn speedup(&self) -> f64 {
        if self.cost_after <= 0.0 {
            return 1.0;
        }
        self.cost_before / self.cost_after
    }
}

/// Advisor errors.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    Bind(usize, String),
    Plan(usize, String),
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::Bind(q, e) => write!(f, "query {q}: {e}"),
            AdvisorError::Plan(q, e) => write!(f, "query {q}: {e}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

/// Run AutoPart over a workload with auto-detected parallelism.
pub fn suggest_partitions(
    catalog: &Catalog,
    workload: &[Select],
    config: AutoPartConfig,
) -> Result<PartitionSuggestion, AdvisorError> {
    suggest_partitions_par(catalog, workload, config, Parallelism::auto())
}

/// Run AutoPart over a workload with an explicit thread-count policy.
///
/// Each round's candidate designs are evaluated concurrently against a
/// read-only snapshot of the cost memo; per-design costs are pure, and
/// both the memo merge and the round-winner selection happen on the
/// caller's thread in candidate order, so the suggested design is
/// identical at any thread count.
pub fn suggest_partitions_par(
    catalog: &Catalog,
    workload: &[Select],
    config: AutoPartConfig,
    par: Parallelism,
) -> Result<PartitionSuggestion, AdvisorError> {
    suggest_partitions_budgeted(catalog, workload, config, par, &Budget::unlimited())
}

/// [`suggest_partitions_par`] under a [`Budget`]: the budget is checked
/// at the top of every improvement round (a round cap counts improvement
/// rounds), and an interrupted run returns the best design found so far,
/// flagged `degraded: true`. With an unlimited budget this is exactly
/// [`suggest_partitions_par`] — bit-identical output.
pub fn suggest_partitions_budgeted(
    catalog: &Catalog,
    workload: &[Select],
    config: AutoPartConfig,
    par: Parallelism,
    budget: &Budget,
) -> Result<PartitionSuggestion, AdvisorError> {
    suggest_partitions_traced(catalog, workload, config, par, budget, &Trace::disabled())
}

/// [`suggest_partitions_budgeted`] with an observability handle: the run
/// records an `autopart_rounds` span (plus one `autopart_rounds/round`
/// span per improvement round) and counts candidate designs evaluated.
/// Tracing never influences the suggested design.
pub fn suggest_partitions_traced(
    catalog: &Catalog,
    workload: &[Select],
    config: AutoPartConfig,
    par: Parallelism,
    budget: &Budget,
    trace: &Trace,
) -> Result<PartitionSuggestion, AdvisorError> {
    let _span = trace.span("autopart_rounds");
    let params = CostParams::default();
    let flags = PlannerFlags::default();

    // Baseline costs: every query binds and plans independently.
    let prepared = par_map_indexed(par, workload.len(), |i| {
        let q = bind(&workload[i], catalog).map_err(|e| AdvisorError::Bind(i, e.to_string()))?;
        let p = plan_query(&q, catalog, &params, &flags)
            .map_err(|e| AdvisorError::Plan(i, e.to_string()))?;
        Ok::<_, AdvisorError>((q, p.cost.total))
    });
    let mut bound = Vec::with_capacity(workload.len());
    let mut base_costs = Vec::with_capacity(workload.len());
    for r in prepared {
        let (q, c) = r?;
        bound.push(q);
        base_costs.push(c);
    }
    let cost_before: f64 = base_costs.iter().sum();

    // Atomic fragments.
    let atoms = atomic_fragments(&bound, catalog);

    // Only partition tables that actually split into >1 fragment.
    let mut selected: Vec<Fragment> = Vec::new();
    for table in atoms.iter().map(|f| f.table).collect::<std::collections::BTreeSet<_>>() {
        let of_table: Vec<&Fragment> = atoms.iter().filter(|f| f.table == table).collect();
        if of_table.len() > 1 {
            selected.extend(of_table.into_iter().cloned());
        }
    }

    if selected.is_empty() {
        // Nothing worth partitioning: report the identity design.
        return Ok(PartitionSuggestion {
            design: PartitionDesign::default(),
            cost_before,
            cost_after: cost_before,
            per_query: base_costs.iter().map(|&c| (c, c)).collect(),
            rewritten: workload.to_vec(),
            iterations: 0,
            degraded: false,
            budget: None,
        });
    }

    let atoms_by_table = |t: TableId| -> Vec<&Fragment> {
        atoms.iter().filter(|f| f.table == t).collect()
    };

    // Evaluate the starting (atomic) design.
    let qtables = query_tables(&bound);
    let mut memo: CostMemo = CostMemo::new();
    let mut best_total = design_cost(
        catalog, workload, &selected, &params, &flags, &base_costs, &qtables, &mut memo,
    );
    let mut iterations = 0usize;

    // Improvement loop. When the current design exceeds the replication
    // budget (atomic fragmentations of wide tables usually do: every
    // fragment replicates the PK and pays its own tuple headers), the loop
    // first *merges toward the budget*, accepting the cheapest
    // overhead-reducing candidate each round; once within budget it only
    // accepts cost improvements that stay within budget.
    let mut budget_stopped = false;
    while iterations < config.max_iterations {
        // Anytime contract: check the budget at the round boundary and
        // keep the best design found so far.
        if budget.exceeded(iterations) {
            budget_stopped = true;
            break;
        }
        iterations += 1;
        let _round = trace.span("autopart_rounds/round");
        let mut improved = false;
        let mut round_best: Option<(Vec<Fragment>, f64)> = None;
        let cur_overhead = replication_overhead(&selected, catalog);
        let over_budget = cur_overhead > config.replication_limit_bytes;

        // Candidate moves: merge any two selected fragments of a table, or
        // merge a selected fragment with an atomic fragment.
        let mut candidates: Vec<Vec<Fragment>> = Vec::new();
        for i in 0..selected.len() {
            for j in (i + 1)..selected.len() {
                if selected[i].table == selected[j].table {
                    let Some(merged) = selected[i].union(&selected[j]) else { continue };
                    let mut next = selected.clone();
                    next.retain(|f| *f != selected[i] && *f != selected[j]);
                    next.push(merged);
                    candidates.push(next);
                }
            }
            for atom in atoms_by_table(selected[i].table) {
                if !selected[i].covers(atom.columns.iter().copied()) {
                    let Some(merged) = selected[i].union(atom) else { continue };
                    if !selected.contains(&merged) {
                        let mut next = selected.clone();
                        // subsumed fragments are dropped
                        next.retain(|f| {
                            !(f.table == merged.table
                                && merged.covers(f.columns.iter().copied()))
                        });
                        next.push(merged.clone());
                        candidates.push(next);
                    }
                }
            }
        }
        // When over budget, also consider un-partitioning a whole table.
        if over_budget {
            let tables: std::collections::BTreeSet<TableId> =
                selected.iter().map(|f| f.table).collect();
            for t in tables {
                let rest: Vec<Fragment> =
                    selected.iter().filter(|f| f.table != t).cloned().collect();
                candidates.push(rest);
            }
        }
        for c in &mut candidates {
            c.sort();
        }
        candidates.sort();
        candidates.dedup();

        // Constraint pre-filter is cheap; the surviving designs cost real
        // planner work, so they fan out over the pool. Workers read a
        // frozen memo snapshot and hand back any entries they had to
        // compute; the merge and the winner scan run here, in candidate
        // order, exactly as the sequential loop would.
        let viable: Vec<Vec<Fragment>> = candidates
            .into_iter()
            .filter(|cand| {
                let overhead = replication_overhead(cand, catalog);
                if over_budget {
                    // must make progress toward the budget
                    overhead < cur_overhead
                } else {
                    overhead <= config.replication_limit_bytes
                }
            })
            .collect();
        let memo_ref = &memo;
        trace.count(Counter::CandidatesEvaluated, viable.len() as u64);
        let evaluated: Vec<(f64, Vec<MemoEntry>)> = par_map(par, &viable, |cand| {
            design_cost_snapshot(
                catalog, workload, cand, &params, &flags, &base_costs, &qtables, memo_ref,
            )
        });
        for (cand, (total, new_entries)) in viable.into_iter().zip(evaluated) {
            for (k, v) in new_entries {
                memo.entry(k).or_insert(v);
            }
            let acceptable = if over_budget {
                true // any overhead-reducing move; pick the cheapest below
            } else {
                total < best_total * (1.0 - config.min_improvement)
            };
            if acceptable
                && round_best.as_ref().map(|(_, b)| total < *b).unwrap_or(true)
            {
                round_best = Some((cand, total));
            }
        }

        if let Some((cand, total)) = round_best {
            selected = cand;
            best_total = total;
            improved = true;
        }
        if !improved {
            if over_budget {
                // cannot reach the budget: give up on partitioning entirely
                selected.clear();
            }
            break;
        }
    }

    // Never hand back a design that violates the constraint.
    if replication_overhead(&selected, catalog) > config.replication_limit_bytes {
        selected.clear();
    }

    // Full evaluation (with rewrites) only for the final design.
    let mut best_eval = evaluate_design(catalog, workload, &selected, &params, &flags, &base_costs);

    // Drop fragments no rewritten query references: they add replication
    // without benefit (the costs are unaffected since no plan uses them).
    let used: std::collections::BTreeSet<String> = best_eval
        .rewritten
        .iter()
        .flat_map(|rw| rw.from.iter().map(|t| t.name.clone()))
        .collect();
    best_eval.design.fragments.retain(|nf| used.contains(&nf.name));

    // The final answer keeps only fragments that help (tables whose
    // rewritten queries got cheaper); simple post-filter: drop tables where
    // partitioning brought no gain.
    let degraded = budget_stopped || budget.interrupted();
    Ok(PartitionSuggestion {
        design: best_eval.design,
        cost_before,
        cost_after: best_eval.total,
        per_query: base_costs
            .iter()
            .zip(&best_eval.per_query)
            .map(|(&b, &a)| (b, a))
            .collect(),
        rewritten: best_eval.rewritten,
        iterations,
        degraded,
        budget: degraded
            .then(|| budget.report(iterations, config.max_iterations.saturating_sub(iterations))),
    })
}

struct Evaluation {
    total: f64,
    per_query: Vec<f64>,
    rewritten: Vec<Select>,
    design: PartitionDesign,
}

/// Memo for the selection loop: per-query cost keyed by the fragment sets
/// of the tables that query touches. Candidate designs in one round differ
/// in a single table's fragmentation, so most lookups hit.
type CostMemo = std::collections::HashMap<(usize, Vec<Fragment>), f64>;

/// A memo entry computed by a worker against a snapshot, merged into the
/// round's memo on the caller's thread.
type MemoEntry = ((usize, Vec<Fragment>), f64);

/// Per query: the tables it references and the columns it needs of each
/// (a query's cost depends only on fragments overlapping those columns).
fn query_tables(bound: &[parinda_optimizer::BoundQuery]) -> Vec<Vec<(TableId, Vec<usize>)>> {
    bound
        .iter()
        .map(|q| {
            let mut t: Vec<(TableId, Vec<usize>)> = q
                .rels
                .iter()
                .map(|r| (r.table, r.needed_columns.clone()))
                .collect();
            t.sort();
            t.dedup();
            t
        })
        .collect()
}

/// Fragments relevant to one query: those on a referenced table whose
/// columns intersect the query's needed columns of that table.
fn relevant_fragments(
    fragments: &[Fragment],
    tables: &[(TableId, Vec<usize>)],
) -> Vec<Fragment> {
    let mut key: Vec<Fragment> = fragments
        .iter()
        .filter(|f| {
            tables.iter().any(|(t, needed)| {
                *t == f.table && needed.iter().any(|c| f.columns.contains(c))
            })
        })
        .cloned()
        .collect();
    key.sort();
    key
}

/// Search-time cost of a fragment set, with per-query memoization keyed by
/// the fragment sets of the tables the query touches.
#[allow(clippy::too_many_arguments)]
fn design_cost(
    catalog: &Catalog,
    workload: &[Select],
    fragments: &[Fragment],
    params: &CostParams,
    flags: &PlannerFlags,
    base_costs: &[f64],
    qtables: &[Vec<(TableId, Vec<usize>)>],
    memo: &mut CostMemo,
) -> f64 {
    let (total, new_entries) =
        design_cost_snapshot(catalog, workload, fragments, params, flags, base_costs, qtables, memo);
    memo.extend(new_entries);
    total
}

/// [`design_cost`] against a read-only memo: returns the design's total
/// plus the entries that were missing, so concurrent candidate evaluations
/// can share one frozen memo and merge their discoveries afterwards.
/// Entry values are pure functions of their keys, so the merged table does
/// not depend on which candidate computed an entry first.
#[allow(clippy::too_many_arguments)]
fn design_cost_snapshot(
    catalog: &Catalog,
    workload: &[Select],
    fragments: &[Fragment],
    params: &CostParams,
    flags: &PlannerFlags,
    base_costs: &[f64],
    qtables: &[Vec<(TableId, Vec<usize>)>],
    memo: &CostMemo,
) -> (f64, Vec<MemoEntry>) {
    if parinda_failpoint::should_fail("advisor::autopart_eval") {
        // Injected fault: this candidate design looks infinitely bad, so
        // the round keeps whatever real evaluations it has.
        return (f64::INFINITY, Vec::new());
    }
    let mut total = 0.0;
    let mut pending: Vec<usize> = Vec::new();
    for (qi, tables) in qtables.iter().enumerate() {
        let key = relevant_fragments(fragments, tables);
        match memo.get(&(qi, key)) {
            Some(&c) => total += c,
            None => pending.push(qi),
        }
    }
    if pending.is_empty() {
        return (total, Vec::new());
    }
    // Evaluate the pending queries under this design in one overlay pass.
    let eval = evaluate_design_subset(catalog, workload, fragments, params, flags, base_costs, &pending);
    let mut new_entries = Vec::with_capacity(pending.len());
    for (qi, cost) in pending.iter().zip(&eval) {
        let key = relevant_fragments(fragments, &qtables[*qi]);
        total += *cost;
        new_entries.push(((*qi, key), *cost));
    }
    (total, new_entries)
}

/// Plan only `subset` of the workload under a simulated design; returns
/// their costs in subset order.
fn evaluate_design_subset(
    catalog: &Catalog,
    workload: &[Select],
    fragments: &[Fragment],
    params: &CostParams,
    flags: &PlannerFlags,
    base_costs: &[f64],
    subset: &[usize],
) -> Vec<f64> {
    let (overlay, design) = simulate_fragments(catalog, fragments);
    subset
        .iter()
        .map(|&i| {
            let fallback = base_costs[i];
            rewrite_select(&workload[i], &overlay, &design)
                .ok()
                .and_then(|rw| {
                    let q = bind(&rw, &overlay).ok()?;
                    let p = plan_query(&q, &overlay, params, flags).ok()?;
                    Some(p.cost.total)
                })
                .filter(|&c| c < fallback)
                .unwrap_or(fallback)
        })
        .collect()
}

/// Simulate a fragment set on an overlay, returning the overlay and the
/// named design used by the rewriter.
fn simulate_fragments<'a>(
    catalog: &'a Catalog,
    fragments: &[Fragment],
) -> (HypotheticalCatalog<'a>, PartitionDesign) {
    let mut design = PartitionDesign::default();
    let mut overlay = HypotheticalCatalog::new(catalog);
    let mut counters: std::collections::HashMap<TableId, usize> = std::collections::HashMap::new();
    for f in fragments {
        let n = counters.entry(f.table).or_insert(0);
        *n += 1;
        // A fragment whose parent table vanished from the catalog, whose
        // column indexes are stale, or whose simulation is rejected is
        // skipped rather than fatal: the rewriter never references it and
        // the affected queries keep their original plans — degraded, not
        // crashed.
        let Some(parent) = catalog.table(f.table) else { continue };
        let name = format!("{}_p{n}", parent.name);
        let cols: Vec<String> = f
            .columns
            .iter()
            .filter_map(|&i| parent.columns.get(i).map(|c| c.name.clone()))
            .collect();
        if cols.len() != f.columns.len() {
            continue;
        }
        let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let def = WhatIfPartition::new(name.clone(), parent.name.clone(), &colrefs);
        if parinda_whatif::simulate_partition(&mut overlay, &def).is_err() {
            continue;
        }
        design.fragments.push(NamedFragment { name, fragment: f.clone() });
    }
    (overlay, design)
}

/// Evaluate a fragment set: simulate the partitions, rewrite the workload,
/// plan everything, sum the costs. Falls back to the original statement
/// when a query cannot be rewritten or the rewrite is not cheaper.
fn evaluate_design(
    catalog: &Catalog,
    workload: &[Select],
    fragments: &[Fragment],
    params: &CostParams,
    flags: &PlannerFlags,
    base_costs: &[f64],
) -> Evaluation {
    let (overlay, design) = simulate_fragments(catalog, fragments);

    // Rewrite + plan each query.
    let mut total = 0.0;
    let mut per_query = Vec::with_capacity(workload.len());
    let mut rewritten_out = Vec::with_capacity(workload.len());
    for (i, sel) in workload.iter().enumerate() {
        let fallback = base_costs[i];
        let outcome = rewrite_select(sel, &overlay, &design)
            .ok()
            .and_then(|rw| {
                let q = bind(&rw, &overlay).ok()?;
                let p = plan_query(&q, &overlay, params, flags).ok()?;
                Some((rw, p.cost.total))
            });
        match outcome {
            Some((rw, cost)) if cost < fallback => {
                total += cost;
                per_query.push(cost);
                rewritten_out.push(rw);
            }
            _ => {
                total += fallback;
                per_query.push(fallback);
                rewritten_out.push(sel.clone());
            }
        }
    }
    Evaluation { total, per_query, rewritten: rewritten_out, design }
}
