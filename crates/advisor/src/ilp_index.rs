//! ILP-based index selection (Papadomanolakis & Ailamaki, SMDB'07; paper
//! §3.4).
//!
//! The selection problem is mapped to a 0/1 integer-linear program:
//!
//! * `y_i`   — build candidate index `i`
//! * `x_q_i` — query `q` uses index `i` for the table it covers
//!
//! maximize   Σ b_{q,i} · x_{q,i}           (benefits from the INUM model)
//! subject to x_{q,i} ≤ y_i                 (use only built indexes)
//!            Σ_{i on table t} x_{q,i} ≤ 1  ("only one access path is
//!                                           selected for each table in a
//!                                           query")
//!            Σ size_i · y_i ≤ B            (storage constraint)
//!
//! Benefits `b_{q,i} = cost_INUM(q, ∅) − cost_INUM(q, {i})` come from the
//! cached cost model, so building the program costs thousands of cached
//! estimations rather than optimizer calls. The reported final costs are
//! re-evaluated with INUM on the *selected set*, so interaction effects the
//! linear objective ignores never reach the user.

use std::collections::HashMap;

use parinda_catalog::{MetadataProvider, TableId};
use parinda_inum::{CandId, CandidateIndex, Configuration, InumModel};
use parinda_parallel::{par_map_indexed, par_try_map_budgeted_traced, Budget, BudgetReport};
use parinda_solver::{
    solve_ilp, IlpOutcome, IntegerProgram, LinearProgram, Sense, SolveLimits, SparseMatrix,
};
use parinda_trace::Counter;

/// Cells at or below this benefit are never materialized: they would get
/// no `x` variable anyway, so dropping them changes nothing downstream.
const BENEFIT_EPS: f64 = 1e-9;

/// User-supplied constraints beyond the storage budget (paper §3.4: "other
/// user-supplied constraints, such as constraints on the total size of the
/// design features, and their update costs").
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Per-query workload weights (frequencies); `None` = all 1.0.
    pub weights: Option<Vec<f64>>,
    /// Cap on the total index maintenance cost per unit time.
    pub update_limit: Option<f64>,
    /// Writes per unit time per table, for the update-cost constraint.
    pub update_rates: HashMap<TableId, f64>,
    /// Materialize the full dense benefit matrix before scanning it into
    /// the program — the pre-sparse reference path. The determinism
    /// suite pins sparse-vs-dense bit-identity through this flag; it
    /// exists for that comparison, not for production use.
    pub dense_reference: bool,
    /// Seed the branch-and-bound with a greedy incumbent computed from
    /// the benefit matrix (default `true`) so the first bound check can
    /// already prune. Never changes the selected design — only the work
    /// to prove it.
    pub warm_start: bool,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            weights: None,
            update_limit: None,
            update_rates: HashMap::new(),
            dense_reference: false,
            warm_start: true,
        }
    }
}

/// Standing DBA constraints threaded in from the streaming console
/// (after *Semi-Automatic Index Tuning*'s pin/ban feedback): `pinned`
/// candidates are forced into the design — registered up front, charged
/// against the storage budget *first*, never entering the search — and
/// `banned` candidates are removed from the candidate pool before any
/// benefit cell is scored, so their `y`/`x` variables simply never exist
/// in the program (and the greedy loop never prices them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverConstraints {
    /// Indexes forced into every design, budget-first.
    pub pinned: Vec<CandidateIndex>,
    /// Indexes excluded from the search space.
    pub banned: Vec<CandidateIndex>,
}

impl SolverConstraints {
    /// No pins, no bans: the constrained entry points become exactly
    /// their unconstrained counterparts, bit-identically.
    pub fn none() -> SolverConstraints {
        SolverConstraints::default()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty() && self.banned.is_empty()
    }

    /// The search pool: `candidates` minus banned entries minus pinned
    /// entries (pins are forced, not searched).
    pub fn filter_pool(&self, candidates: &[CandidateIndex]) -> Vec<CandidateIndex> {
        candidates
            .iter()
            .filter(|c| !self.banned.contains(c) && !self.pinned.contains(c))
            .cloned()
            .collect()
    }
}

/// Estimated maintenance cost of one index per unit time: each write to
/// its table inserts one entry (B-tree descent + leaf write).
pub fn index_update_cost(
    model: &InumModel<'_>,
    id: CandId,
    update_rates: &HashMap<TableId, f64>,
) -> f64 {
    let cand = model.candidate(id);
    let Some(&rate) = update_rates.get(&cand.table) else { return 0.0 };
    let Some(table) = model.catalog().table(cand.table) else { return 0.0 };
    let params = model.params();
    let height = cand.height(table) as f64;
    let per_insert = (height + 1.0) * params.random_page_cost
        + 30.0 * params.cpu_operator_cost
        + params.cpu_index_tuple_cost;
    rate * per_insert
}

/// Outcome of index selection.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSelection {
    /// Chosen candidates.
    pub chosen: Vec<CandId>,
    /// Estimated workload cost before (empty configuration).
    pub cost_before: f64,
    /// Estimated workload cost with the chosen set (INUM, interactions
    /// included).
    pub cost_after: f64,
    /// Total size of the chosen indexes in bytes.
    pub total_size: u64,
    /// Was the ILP solved to proven optimality?
    pub proven_optimal: bool,
    /// Did a budget (deadline, round cap, or cancellation) stop the run
    /// before it evaluated everything? The selection is still valid —
    /// best-so-far over what was evaluated — just possibly not as good
    /// as an unbudgeted run.
    pub degraded: bool,
    /// How far the run got, when `degraded` is set.
    pub budget: Option<BudgetReport>,
    /// Per-query costs before/after.
    pub per_query: Vec<(f64, f64)>,
}

impl IndexSelection {
    /// Average workload speedup factor (≥ 1.0 when the design helps).
    pub fn speedup(&self) -> f64 {
        if self.cost_after <= 0.0 {
            return 1.0;
        }
        self.cost_before / self.cost_after
    }
}

/// Select indexes with the ILP under a storage budget (bytes).
pub fn select_indexes_ilp(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
) -> IndexSelection {
    select_indexes_ilp_with(model, candidates, budget_bytes, &IlpOptions::default())
}

/// [`select_indexes_ilp`] with workload weights and an update-cost cap.
pub fn select_indexes_ilp_with(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    options: &IlpOptions,
) -> IndexSelection {
    select_indexes_ilp_budgeted(model, candidates, budget_bytes, options, &Budget::unlimited())
}

/// [`select_indexes_ilp_with`] under a [`Budget`]: the benefit matrix is
/// evaluated candidate-by-candidate until the budget (deadline, round
/// cap = candidates scored, or cancellation) interrupts; unscored
/// candidates are treated as zero-benefit (never chosen), and the
/// branch-and-bound inherits the deadline and cancel token. The result
/// is always valid; `degraded: true` plus a [`BudgetReport`] mark a run
/// the budget cut short. With an unlimited budget this is exactly
/// [`select_indexes_ilp_with`] — bit-identical output.
pub fn select_indexes_ilp_budgeted(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    options: &IlpOptions,
    budget: &Budget,
) -> IndexSelection {
    ilp_budgeted_base(model, candidates, budget_bytes, options, budget, &[])
}

/// [`select_indexes_ilp_budgeted`] under [`SolverConstraints`]: pinned
/// indexes are charged against `budget_bytes` first and prepended to the
/// chosen set unconditionally (even if they alone exceed the budget —
/// the DBA's pin outranks the budget), banned ones never enter the
/// program. Benefits are scored *relative to the pinned base*, so the
/// solver only pays for what pins don't already cover. With empty
/// constraints this is exactly [`select_indexes_ilp_budgeted`].
pub fn select_indexes_ilp_constrained(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    options: &IlpOptions,
    budget: &Budget,
    constraints: &SolverConstraints,
) -> IndexSelection {
    let pinned: Vec<CandId> =
        constraints.pinned.iter().map(|c| model.register_candidate(c.clone())).collect();
    let pool = constraints.filter_pool(candidates);
    let pinned_size: u64 = pinned.iter().map(|&id| model.candidate_size(id)).sum();
    let search_budget = budget_bytes.saturating_sub(pinned_size);
    ilp_budgeted_base(model, &pool, search_budget, options, budget, &pinned)
}

/// The ILP body. `base` is the pinned configuration: benefits and base
/// costs are relative to it, and it is prepended to whatever the solver
/// picks. Empty `base` reproduces the historical unconstrained path
/// bit-for-bit (`Configuration::from_ids([])` is the empty config).
fn ilp_budgeted_base(
    model: &mut InumModel<'_>,
    candidates: &[CandidateIndex],
    budget_bytes: u64,
    options: &IlpOptions,
    budget: &Budget,
    base: &[CandId],
) -> IndexSelection {
    let trace = model.trace().clone();
    let _span = trace.span("ilp_rounds");
    let cand_ids: Vec<CandId> =
        candidates.iter().map(|c| model.register_candidate(c.clone())).collect();
    let nq = model.queries().len();
    // Explicit option weights win; a weighted model (compressed workload)
    // supplies them otherwise; 1.0 on plain models — bit-identical.
    let weight = |q: usize| -> f64 {
        options.weights.as_ref().and_then(|w| w.get(q)).copied().unwrap_or_else(|| model.weight(q))
    };

    // Benefits (weighted) and sizes. The (query, candidate) cells are
    // independent cached-model probes, so the matrix fans out over the
    // model's thread pool; each cell is pure, so the matrix is identical
    // at any thread count. Cells are laid out candidate-major so a
    // budget-interrupted prefix covers whole candidates: a candidate is
    // either fully scored or not considered at all.
    let par = model.parallelism();
    let model_ref: &InumModel<'_> = model;
    let base_cfg = Configuration::from_ids(base.iter().copied());
    let base_costs: Vec<f64> =
        par_map_indexed(par, nq, |q| model_ref.cost(q, &base_cfg) * weight(q));
    let n_cand = cand_ids.len();
    let scored_cap = budget.max_rounds().map_or(n_cand, |r| r.min(n_cand));
    let cells = match par_try_map_budgeted_traced(
        par,
        scored_cap * nq,
        budget,
        &trace,
        "ilp_rounds/benefit_matrix",
        |k| {
            if parinda_failpoint::should_fail("advisor::benefit_cell") {
                return 0.0; // injected error: the cell degrades to "no benefit"
            }
            let (ci, q) = (k / nq.max(1), k % nq.max(1));
            let with = model_ref.cost(q, &base_cfg.with(cand_ids[ci])) * weight(q);
            (base_costs[q] - with).max(0.0)
        },
    ) {
        Ok(partial) => partial,
        // Re-raise the contained worker panic for the session guard()
        // backstop; resume_unwind skips the panic hook (already ran).
        Err(p) => std::panic::resume_unwind(Box::new(p.to_string())),
    };
    // Only fully scored candidates enter the program.
    let scored = if nq == 0 { scored_cap } else { cells.done.len() / nq };
    let candidates_skipped = n_cand - scored;
    trace.count(Counter::CandidatesEvaluated, scored as u64);
    trace.count(Counter::CandidatesSkipped, candidates_skipped as u64);
    let sizes: Vec<u64> = cand_ids.iter().map(|&id| model.candidate_size(id)).collect();

    // CSR benefit matrix (query-major, candidate columns): at workload
    // scale almost every cell is below epsilon — an index only helps the
    // statements that touch its table and columns — so memory and LP
    // size follow the nonzero count, not `nq × n_cand`. The cell buffer
    // is candidate-major (budget prefixes cover whole candidates), so
    // the scan transposes; cell enumeration order and the epsilon are
    // exactly the dense path's, keeping the program bit-identical.
    let benefits: SparseMatrix = if options.dense_reference {
        // Reference path: materialize the full dense matrix first, then
        // scan it — what the advisor did before compression landed. The
        // determinism suite pins both paths to the same bits.
        let mut dense: Vec<Vec<f64>> = vec![vec![0.0; n_cand]; nq];
        for (ci, col) in cells.done.chunks(nq.max(1)).take(scored).enumerate() {
            for (q, &b) in col.iter().enumerate() {
                dense[q][ci] = b;
            }
        }
        SparseMatrix::from_row_major(
            nq,
            n_cand,
            dense.iter().enumerate().flat_map(|(q, row)| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &b)| b > BENEFIT_EPS)
                    .map(move |(ci, &b)| (q, ci, b))
            }),
        )
    } else {
        SparseMatrix::from_row_major(
            nq,
            n_cand,
            (0..nq).flat_map(|q| {
                let cells = &cells.done;
                (0..scored).filter_map(move |ci| {
                    let b = cells[ci * nq + q];
                    (b > BENEFIT_EPS).then_some((q, ci, b))
                })
            }),
        )
    };
    trace.count(Counter::MatrixNnz, benefits.nnz() as u64);

    // Build the ILP.
    // variable layout: y_0..y_{n-1}, then x_{q,i} for materialized cells
    let x_vars: Vec<(usize, usize, f64)> = benefits.iter().collect();
    let n_vars = n_cand + x_vars.len();
    let mut lp = LinearProgram::new(n_vars);
    for j in 0..n_vars {
        lp.set_upper(j, 1.0);
    }
    // tiny per-byte penalty on y so indexes that enable no x stay unbuilt
    for (ci, &s) in sizes.iter().enumerate() {
        lp.set_objective(ci, -1e-9 * s as f64);
    }
    for (k, &(_, ci, b)) in x_vars.iter().enumerate() {
        lp.set_objective(n_cand + k, b);
        // x <= y
        lp.add_constraint(vec![(n_cand + k, 1.0), (ci, -1.0)], Sense::Le, 0.0);
    }
    // one access path per (query, table)
    {
        // BTreeMap: these constraints' order steers simplex pivoting, so
        // hash iteration here would make tied solutions vary run-to-run.
        use std::collections::BTreeMap;
        let mut per_qt: BTreeMap<(usize, u32), Vec<usize>> = BTreeMap::new();
        for (k, &(q, ci, _)) in x_vars.iter().enumerate() {
            let t = model.candidate(cand_ids[ci]).table.0;
            per_qt.entry((q, t)).or_default().push(n_cand + k);
        }
        for vars in per_qt.values() {
            if vars.len() > 1 {
                lp.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Sense::Le, 1.0);
            }
        }
    }
    // storage budget
    lp.add_constraint(
        sizes.iter().enumerate().map(|(ci, &s)| (ci, s as f64)).collect(),
        Sense::Le,
        budget_bytes as f64,
    );
    // update-cost constraint
    if let Some(limit) = options.update_limit {
        let terms: Vec<(usize, f64)> = cand_ids
            .iter()
            .enumerate()
            .map(|(ci, &id)| (ci, index_update_cost(model, id, &options.update_rates)))
            .filter(|&(_, c)| c > 0.0)
            .collect();
        if !terms.is_empty() {
            lp.add_constraint(terms, Sense::Le, limit);
        }
    }

    // Warm start: a greedy incumbent computed from the already-built
    // matrix — benefit-per-byte over the candidate columns under the
    // storage budget, then each (query, table)'s single best x among the
    // picked candidates. No model probes, no extra counters; the solver
    // re-checks feasibility and falls back to a cold start if e.g. an
    // update-cost constraint rejects the seed.
    let warm_start = (options.warm_start && n_vars > 0).then(|| {
        let mut col_benefit = vec![0.0f64; n_cand];
        for &(_, ci, b) in &x_vars {
            col_benefit[ci] += b;
        }
        let mut order: Vec<usize> = (0..n_cand).collect();
        order.sort_by(|&a, &b| {
            let da = col_benefit[a] / sizes[a].max(1) as f64;
            let db = col_benefit[b] / sizes[b].max(1) as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });
        let mut picked = vec![false; n_cand];
        let mut left = budget_bytes;
        for ci in order {
            if col_benefit[ci] > 0.0 && sizes[ci] <= left {
                left -= sizes[ci];
                picked[ci] = true;
            }
        }
        let mut x = vec![0.0f64; n_vars];
        for (ci, &p) in picked.iter().enumerate() {
            if p {
                x[ci] = 1.0;
            }
        }
        use std::collections::BTreeMap;
        let mut best_per_qt: BTreeMap<(usize, u32), (usize, f64)> = BTreeMap::new();
        for (k, &(q, ci, b)) in x_vars.iter().enumerate() {
            if !picked[ci] {
                continue;
            }
            let t = model.candidate(cand_ids[ci]).table.0;
            let e = best_per_qt.entry((q, t)).or_insert((k, b));
            if b > e.1 {
                *e = (k, b);
            }
        }
        for &(k, _) in best_per_qt.values() {
            x[n_cand + k] = 1.0;
        }
        x
    });

    let ip = IntegerProgram { lp, binary: (0..n_vars).collect() };
    let limits = SolveLimits {
        deadline: budget.deadline(),
        cancel: Some(budget.cancel_token().clone()),
        trace: trace.clone(),
        warm_start,
        ..SolveLimits::default()
    };
    let (chosen_pos, proven) = match solve_ilp(&ip, limits) {
        IlpOutcome::Solved(s) => {
            let picked: Vec<usize> =
                (0..n_cand).filter(|&ci| s.x[ci] > 0.5).collect();
            (picked, s.proven_optimal)
        }
        // A genuine infeasibility proof can only mean "no candidate fits
        // the budget"; unbounded cannot occur with all-binary variables.
        IlpOutcome::Infeasible | IlpOutcome::Unbounded => (Vec::new(), true),
        // A limit stopped the search before any incumbent: the empty
        // design is the best-so-far answer, and it is *not* proven.
        IlpOutcome::Limit => (Vec::new(), false),
    };

    let mut chosen: Vec<CandId> = base.to_vec();
    chosen.extend(chosen_pos.iter().map(|&ci| cand_ids[ci]));
    let degraded = candidates_skipped > 0 || budget.interrupted();
    let mut selection =
        finish_selection_weighted(model, chosen, &base_costs, proven, &options.weights);
    selection.degraded = degraded;
    selection.budget = degraded.then(|| budget.report(scored, candidates_skipped));
    selection
}

/// Compute the final (honest) report for a chosen set.
pub(crate) fn finish_selection(
    model: &InumModel<'_>,
    chosen: Vec<CandId>,
    base_costs: &[f64],
    proven_optimal: bool,
) -> IndexSelection {
    finish_selection_weighted(model, chosen, base_costs, proven_optimal, &None)
}

/// Weighted variant: `base_costs` are already weighted; after-costs get
/// the same weights so the report stays consistent.
pub(crate) fn finish_selection_weighted(
    model: &InumModel<'_>,
    chosen: Vec<CandId>,
    base_costs: &[f64],
    proven_optimal: bool,
    weights: &Option<Vec<f64>>,
) -> IndexSelection {
    let weight = |q: usize| -> f64 {
        weights.as_ref().and_then(|w| w.get(q)).copied().unwrap_or_else(|| model.weight(q))
    };
    let cfg = Configuration::from_ids(chosen.iter().copied());
    let per_query: Vec<(f64, f64)> = base_costs
        .iter()
        .enumerate()
        .map(|(q, &b)| (b, model.cost(q, &cfg) * weight(q)))
        .collect();
    let cost_before: f64 = base_costs.iter().sum();
    let cost_after: f64 = per_query.iter().map(|p| p.1).sum();
    let total_size: u64 = chosen.iter().map(|&id| model.candidate_size(id)).sum();
    IndexSelection {
        chosen,
        cost_before,
        cost_after,
        total_size,
        proven_optimal,
        degraded: false,
        budget: None,
        per_query,
    }
}
