//! Candidate index generation from workload analysis (paper §3.4: "the
//! component determines a large set of candidate indexes by analyzing the
//! workload").
//!
//! Unlike the greedy commercial tools, PARINDA does not prune this set —
//! the ILP sees every candidate.

use std::collections::BTreeSet;

use parinda_inum::CandidateIndex;
use parinda_optimizer::query::{BoundQuery, RestrictionShape};

/// Candidate-generation limits (defensive caps, generous enough that SDSS
/// workloads never hit them).
#[derive(Debug, Clone, Copy)]
pub struct CandidateLimits {
    /// Maximum key columns per candidate.
    pub max_width: usize,
    /// Maximum candidates overall.
    pub max_candidates: usize,
}

impl Default for CandidateLimits {
    fn default() -> Self {
        CandidateLimits { max_width: 3, max_candidates: 512 }
    }
}

/// Generate candidate indexes for a workload of bound queries.
pub fn generate_candidates(
    queries: &[BoundQuery],
    limits: CandidateLimits,
) -> Vec<CandidateIndex> {
    struct Acc {
        seen: BTreeSet<(u32, Vec<usize>)>,
        out: Vec<CandidateIndex>,
        max_width: usize,
    }
    impl Acc {
        fn push(&mut self, table: parinda_catalog::TableId, cols: Vec<usize>) {
            if cols.is_empty() || cols.len() > self.max_width {
                return;
            }
            // dedup preserving key order (order matters for B-trees)
            if self.seen.insert((table.0, cols.clone())) {
                self.out.push(CandidateIndex::new(table, cols));
            }
        }
    }
    let mut acc = Acc { seen: BTreeSet::new(), out: Vec::new(), max_width: limits.max_width };

    for q in queries {
        for (rel, base) in q.rels.iter().enumerate() {
            let table = base.table;

            // classify this rel's restricted columns
            let mut eq_cols: Vec<usize> = Vec::new();
            let mut range_cols: Vec<usize> = Vec::new();
            for r in q.restrictions_on(rel) {
                match &r.shape {
                    RestrictionShape::Eq { col, .. }
                    | RestrictionShape::InList { col, negated: false, .. }
                        if !eq_cols.contains(col) => {
                            eq_cols.push(*col);
                        }
                    RestrictionShape::Range { col, .. }
                    | RestrictionShape::Between { col, negated: false, .. }
                        if !range_cols.contains(col) => {
                            range_cols.push(*col);
                        }
                    _ => {}
                }
            }
            let join_cols: Vec<usize> = q
                .joins
                .iter()
                .flat_map(|j| [j.left, j.right])
                .filter(|s| s.rel == rel)
                .map(|s| s.col)
                .collect();
            let order_cols: Vec<usize> = q
                .order_by
                .iter()
                .filter(|k| k.slot.rel == rel && !k.desc)
                .map(|k| k.slot.col)
                .collect();
            let group_cols: Vec<usize> = q
                .group_by
                .iter()
                .filter(|s| s.rel == rel)
                .map(|s| s.col)
                .collect();

            // single-column candidates on every interesting column
            for &c in eq_cols.iter().chain(&range_cols).chain(&join_cols) {
                acc.push(table, vec![c]);
            }

            // eq prefix + one range column
            for &r in &range_cols {
                let mut cols = eq_cols.clone();
                cols.retain(|&c| c != r);
                cols.push(r);
                acc.push(table, cols);
            }

            // the full equality set (multi-column point lookups)
            if eq_cols.len() >= 2 {
                acc.push(table, eq_cols.clone());
            }

            // join column + equality filters (index nested-loop fodder)
            for &j in &join_cols {
                let mut cols = vec![j];
                cols.extend(eq_cols.iter().copied().filter(|&c| c != j));
                acc.push(table, cols);
            }

            // ORDER BY / GROUP BY prefixes (sort avoidance)
            if !order_cols.is_empty() {
                acc.push(table, order_cols.clone());
            }
            if !group_cols.is_empty() {
                acc.push(table, group_cols.clone());
            }

            if acc.out.len() >= limits.max_candidates {
                return acc.out;
            }
        }
    }
    acc.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parinda_catalog::{Catalog, Column, SqlType};
    use parinda_optimizer::bind;
    use parinda_sql::parse_select;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
                Column::new("dec", SqlType::Float8).not_null(),
                Column::new("type", SqlType::Int2).not_null(),
            ],
            100_000,
        );
        c.create_table(
            "specobj",
            vec![
                Column::new("specobjid", SqlType::Int8).not_null(),
                Column::new("bestobjid", SqlType::Int8).not_null(),
                Column::new("z", SqlType::Float8).not_null(),
            ],
            10_000,
        );
        c
    }

    fn cands(sqls: &[&str]) -> Vec<CandidateIndex> {
        let c = catalog();
        let queries: Vec<_> = sqls
            .iter()
            .map(|s| bind(&parse_select(s).unwrap(), &c).unwrap())
            .collect();
        generate_candidates(&queries, CandidateLimits::default())
    }

    #[test]
    fn equality_column_becomes_candidate() {
        let v = cands(&["SELECT ra FROM photoobj WHERE type = 3"]);
        assert!(v.iter().any(|c| c.columns == vec![3]));
    }

    #[test]
    fn eq_plus_range_multicolumn() {
        let v = cands(&["SELECT ra FROM photoobj WHERE type = 3 AND ra BETWEEN 1.0 AND 2.0"]);
        // (type, ra) with eq first
        assert!(v.iter().any(|c| c.columns == vec![3, 1]), "{v:?}");
    }

    #[test]
    fn join_columns_generate_candidates_on_both_sides() {
        let v = cands(&[
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        ]);
        assert!(v.iter().any(|c| c.columns == vec![0] && c.table.0 == 0));
        assert!(v.iter().any(|c| c.columns == vec![1] && c.table.0 == 1));
    }

    #[test]
    fn group_by_candidate() {
        let v = cands(&["SELECT type, COUNT(*) FROM photoobj GROUP BY type"]);
        assert!(v.iter().any(|c| c.columns == vec![3]));
    }

    #[test]
    fn candidates_deduplicated_across_queries() {
        let v = cands(&[
            "SELECT ra FROM photoobj WHERE type = 3",
            "SELECT dec FROM photoobj WHERE type = 6",
        ]);
        let n = v.iter().filter(|c| c.columns == vec![3]).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn width_cap_respected() {
        let c = catalog();
        let q = bind(
            &parse_select(
                "SELECT objid FROM photoobj WHERE objid = 1 AND ra = 2.0 AND dec = 3.0 AND type = 4",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        let v = generate_candidates(&[q], CandidateLimits { max_width: 2, max_candidates: 100 });
        assert!(v.iter().all(|c| c.columns.len() <= 2));
    }

    #[test]
    fn candidate_cap_respected() {
        let v = cands(&["SELECT ra FROM photoobj WHERE type = 3 AND ra < 1.0 AND dec > 0.0"]);
        assert!(v.len() <= CandidateLimits::default().max_candidates);
        assert!(!v.is_empty());
    }
}
