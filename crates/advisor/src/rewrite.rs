//! Automatic query rewriting for partitioned schemas (paper §3.3: "An
//! automatic query rewriter is used to rewrite the original workload for
//! the composite fragments").
//!
//! A table reference whose table is partitioned is replaced by the minimal
//! set of fragments covering the columns the query uses; fragments are
//! joined on the primary key. The first fragment inherits the original
//! binding name so the rewrite stays local, and every column reference is
//! re-qualified to the fragment that stores it.

use std::collections::{BTreeSet, HashMap};

use parinda_catalog::MetadataProvider;
use parinda_sql::ast::{ColumnRef, Expr, Select, SelectItem, TableRef};
use parinda_sql::BinOp;

use crate::fragments::Fragment;

/// A named fragment of a named table — the rewriter/evaluator currency.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedFragment {
    /// Simulated partition table name.
    pub name: String,
    /// The fragment (table id + columns).
    pub fragment: Fragment,
}

/// A partitioning design: named fragments, possibly for several tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionDesign {
    pub fragments: Vec<NamedFragment>,
}

impl PartitionDesign {
    /// Fragments defined over `table`.
    pub fn fragments_for(&self, table: parinda_catalog::TableId) -> Vec<&NamedFragment> {
        self.fragments.iter().filter(|f| f.fragment.table == table).collect()
    }

    /// Is any table partitioned?
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

/// Rewrite errors. Callers typically fall back to the original query.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    UnknownTable(String),
    AmbiguousColumn(String),
    UnknownColumn(String),
    /// The design has no fragment set covering a needed column.
    NotCoverable { table: String, column: String },
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::UnknownTable(t) => write!(f, "unknown table {t}"),
            RewriteError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            RewriteError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            RewriteError::NotCoverable { table, column } => {
                write!(f, "no fragment of {table} covers column {column}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Rewrite `select` against a partition design. Returns the rewritten
/// statement (identical to the input when no referenced table is
/// partitioned).
pub fn rewrite_select(
    select: &Select,
    meta: &dyn MetadataProvider,
    design: &PartitionDesign,
) -> Result<Select, RewriteError> {
    if parinda_failpoint::should_fail("advisor::rewrite") {
        // Injected fault: callers fall back to the original statement.
        return Err(RewriteError::UnknownTable("failpoint advisor::rewrite".to_string()));
    }
    // Resolve the FROM list.
    struct RelInfo {
        binding: String,
        table_name: String,
        table: parinda_catalog::TableId,
        used: BTreeSet<usize>,
    }
    let mut rels: Vec<RelInfo> = Vec::new();
    for tr in &select.from {
        let t = meta
            .table_by_name(&tr.name)
            .ok_or_else(|| RewriteError::UnknownTable(tr.name.clone()))?;
        rels.push(RelInfo {
            binding: tr.binding().to_ascii_lowercase(),
            table_name: t.name.clone(),
            table: t.id,
            used: BTreeSet::new(),
        });
    }

    // Resolve a column ref to (rel position, column position).
    let resolve = |c: &ColumnRef, rels: &[RelInfo]| -> Result<(usize, usize), RewriteError> {
        match &c.table {
            Some(q) => {
                let ql = q.to_ascii_lowercase();
                let ri = rels
                    .iter()
                    .position(|r| r.binding == ql)
                    .ok_or_else(|| RewriteError::UnknownTable(ql.clone()))?;
                let t = meta
                    .table(rels[ri].table)
                    .ok_or_else(|| RewriteError::UnknownTable(rels[ri].table_name.clone()))?;
                let ci = t
                    .column_index(&c.column)
                    .ok_or_else(|| RewriteError::UnknownColumn(c.column.clone()))?;
                Ok((ri, ci))
            }
            None => {
                let mut hit = None;
                for (ri, r) in rels.iter().enumerate() {
                    let Some(t) = meta.table(r.table) else { continue };
                    if let Some(ci) = t.column_index(&c.column) {
                        if hit.is_some() {
                            return Err(RewriteError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some((ri, ci));
                    }
                }
                hit.ok_or_else(|| RewriteError::UnknownColumn(c.column.clone()))
            }
        }
    };

    // Gather used columns.
    let collect = |e: &Expr, rels: &mut Vec<RelInfo>| -> Result<(), RewriteError> {
        let mut err = None;
        e.visit_columns(&mut |c| {
            if err.is_some() {
                return;
            }
            match resolve(c, rels) {
                Ok((ri, ci)) => {
                    rels[ri].used.insert(ci);
                }
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    };
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for r in &mut rels {
                    let n = meta
                        .table(r.table)
                        .ok_or_else(|| RewriteError::UnknownTable(r.table_name.clone()))?
                        .columns
                        .len();
                    r.used.extend(0..n);
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let ql = q.to_ascii_lowercase();
                let Some(pos) = rels.iter().position(|r| r.binding == ql) else {
                    return Err(RewriteError::UnknownTable(ql));
                };
                let n = meta
                    .table(rels[pos].table)
                    .ok_or_else(|| RewriteError::UnknownTable(rels[pos].table_name.clone()))?
                    .columns
                    .len();
                rels[pos].used.extend(0..n);
            }
            SelectItem::Expr { expr, .. } => collect(expr, &mut rels)?,
        }
    }
    if let Some(w) = &select.where_clause {
        collect(w, &mut rels)?;
    }
    for e in &select.group_by {
        collect(e, &mut rels)?;
    }
    for o in &select.order_by {
        collect(&o.expr, &mut rels)?;
    }

    // Plan the replacement per rel.
    struct Replacement {
        /// new FROM entries for this rel
        from: Vec<TableRef>,
        /// extra PK-join predicates
        preds: Vec<Expr>,
        /// column position -> binding to qualify with
        col_binding: HashMap<usize, String>,
    }
    let mut replacements: Vec<Option<Replacement>> = Vec::new();
    for r in &rels {
        let frags = design.fragments_for(r.table);
        if frags.is_empty() {
            replacements.push(None);
            continue;
        }
        let parent = meta
            .table(r.table)
            .ok_or_else(|| RewriteError::UnknownTable(r.table_name.clone()))?;
        let pk: Vec<usize> = parent.primary_key.clone();
        // Needed columns beyond the PK (every fragment carries the PK).
        let needed: BTreeSet<usize> =
            r.used.iter().copied().filter(|c| !pk.contains(c)).collect();

        // Greedy set cover over fragments.
        let mut uncovered = needed.clone();
        let mut chosen: Vec<&NamedFragment> = Vec::new();
        while !uncovered.is_empty() {
            let best = frags
                .iter()
                .filter(|f| !chosen.iter().any(|c| c.name == f.name))
                .max_by_key(|f| f.fragment.columns.intersection(&uncovered).count());
            match best {
                Some(f) if f.fragment.columns.intersection(&uncovered).count() > 0 => {
                    for c in f.fragment.columns.intersection(&uncovered.clone()) {
                        uncovered.remove(c);
                    }
                    chosen.push(f);
                }
                _ => {
                    // The loop guard says `uncovered` is non-empty; name
                    // the first uncovered column if it still exists.
                    let column = uncovered
                        .iter()
                        .next()
                        .and_then(|&c| parent.columns.get(c))
                        .map(|c| c.name.clone())
                        .unwrap_or_else(|| "?".to_string());
                    return Err(RewriteError::NotCoverable {
                        table: r.table_name.clone(),
                        column,
                    });
                }
            }
        }
        if chosen.is_empty() {
            // query touches only the PK: any fragment will do
            chosen.push(frags[0]);
        }

        // FROM entries: first fragment takes the original binding.
        let mut from = Vec::new();
        let mut preds = Vec::new();
        let mut col_binding: HashMap<usize, String> = HashMap::new();
        let first_alias = r.binding.clone();
        for (i, f) in chosen.iter().enumerate() {
            let alias = if i == 0 {
                first_alias.clone()
            } else {
                format!("{}_f{}", r.binding, i + 1)
            };
            from.push(TableRef { name: f.name.clone(), alias: Some(alias.clone()) });
            if i > 0 {
                // join on the PK with the first fragment
                for &pkc in &pk {
                    let Some(col) = parent.columns.get(pkc).map(|c| c.name.clone()) else {
                        continue;
                    };
                    preds.push(Expr::binary(
                        BinOp::Eq,
                        Expr::Column(ColumnRef::qualified(first_alias.clone(), col.clone())),
                        Expr::Column(ColumnRef::qualified(alias.clone(), col)),
                    ));
                }
            }
            for &c in &f.fragment.columns {
                col_binding.entry(c).or_insert_with(|| alias.clone());
            }
        }
        // PK columns resolve to the first fragment.
        for &pkc in &pk {
            col_binding.insert(pkc, first_alias.clone());
        }
        replacements.push(Some(Replacement { from, preds, col_binding }));
    }

    if replacements.iter().all(|r| r.is_none()) {
        return Ok(select.clone());
    }

    // Column mapper: re-qualify refs of partitioned rels.
    let map_ref = |c: &ColumnRef| -> Result<ColumnRef, RewriteError> {
        let (ri, ci) = resolve(c, &rels)?;
        match &replacements[ri] {
            None => Ok(c.clone()),
            Some(rep) => {
                // The cover above was computed over every used column, so
                // a miss means the design and the query disagree — report
                // it as not coverable instead of crashing.
                let binding = rep.col_binding.get(&ci).ok_or_else(|| {
                    RewriteError::NotCoverable {
                        table: rels[ri].table_name.clone(),
                        column: c.column.clone(),
                    }
                })?;
                Ok(ColumnRef::qualified(binding.clone(), c.column.clone()))
            }
        }
    };

    // Rebuild the statement.
    let mut from = Vec::new();
    let mut extra_preds = Vec::new();
    for (ri, tr) in select.from.iter().enumerate() {
        match &replacements[ri] {
            None => from.push(tr.clone()),
            Some(rep) => {
                from.extend(rep.from.iter().cloned());
                extra_preds.extend(rep.preds.iter().cloned());
            }
        }
    }

    let items = select
        .items
        .iter()
        .map(|item| -> Result<SelectItem, RewriteError> {
            Ok(match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::QualifiedWildcard(q) => SelectItem::QualifiedWildcard(q.clone()),
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: map_expr(expr, &map_ref)?,
                    alias: alias.clone(),
                },
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let mut where_clause = match &select.where_clause {
        Some(w) => Some(map_expr(w, &map_ref)?),
        None => None,
    };
    for p in extra_preds {
        where_clause = Some(match where_clause {
            Some(w) => Expr::and(w, p),
            None => p,
        });
    }

    let group_by = select
        .group_by
        .iter()
        .map(|e| map_expr(e, &map_ref))
        .collect::<Result<Vec<_>, _>>()?;
    let order_by = select
        .order_by
        .iter()
        .map(|o| {
            Ok(parinda_sql::ast::OrderByItem { expr: map_expr(&o.expr, &map_ref)?, desc: o.desc })
        })
        .collect::<Result<Vec<_>, RewriteError>>()?;

    Ok(Select {
        distinct: select.distinct,
        items,
        from,
        where_clause,
        group_by,
        order_by,
        limit: select.limit,
    })
}

/// Map every column reference through `f`, rebuilding the expression.
fn map_expr<F>(e: &Expr, f: &F) -> Result<Expr, RewriteError>
where
    F: Fn(&ColumnRef) -> Result<ColumnRef, RewriteError>,
{
    Ok(match e {
        Expr::Column(c) => Expr::Column(f(c)?),
        Expr::Literal(l) => Expr::Literal(l.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(map_expr(left, f)?),
            right: Box::new(map_expr(right, f)?),
        },
        Expr::Not(inner) => Expr::Not(Box::new(map_expr(inner, f)?)),
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(map_expr(expr, f)?),
            low: Box::new(map_expr(low, f)?),
            high: Box::new(map_expr(high, f)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(map_expr(expr, f)?),
            list: list.iter().map(|e| map_expr(e, f)).collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(map_expr(expr, f)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(map_expr(expr, f)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Agg { func, arg, distinct } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(map_expr(a, f)?)),
                None => None,
            },
            distinct: *distinct,
        },
    })
}
