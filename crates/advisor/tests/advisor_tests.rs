//! Advisor end-to-end behaviour: rewriting correctness, ILP vs greedy
//! quality, AutoPart convergence and improvement.

use parinda_advisor::{
    atomic_fragments, generate_candidates, rewrite_select, select_indexes_greedy,
    select_indexes_ilp, suggest_partitions, AutoPartConfig, CandidateLimits, Fragment,
    NamedFragment, PartitionDesign,
};
use parinda_catalog::{analyze_column, Catalog, Column, Datum, MetadataProvider, SqlType};
use parinda_inum::InumModel;
use parinda_optimizer::{bind, CostParams};
use parinda_sql::{parse_select, Select};
use parinda_whatif::{HypotheticalCatalog, WhatIfPartition};

/// Wide SDSS-flavoured catalog with statistics.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let photo = c.create_table(
        "photoobj",
        vec![
            Column::new("objid", SqlType::Int8).not_null(),
            Column::new("ra", SqlType::Float8).not_null(),
            Column::new("dec", SqlType::Float8).not_null(),
            Column::new("type", SqlType::Int2).not_null(),
            Column::new("rmag", SqlType::Float8).not_null(),
            Column::new("gmag", SqlType::Float8).not_null(),
            Column::new("umag", SqlType::Float8).not_null(),
            Column::new("imag", SqlType::Float8).not_null(),
            Column::new("zmag", SqlType::Float8).not_null(),
            Column::new("status", SqlType::Int4).not_null(),
            Column::new("flags", SqlType::Int8).not_null(),
            Column::new("skyversion", SqlType::Int2).not_null(),
        ],
        800_000,
    );
    c.table_mut(photo).unwrap().primary_key = vec![0];
    let spec = c.create_table(
        "specobj",
        vec![
            Column::new("specobjid", SqlType::Int8).not_null(),
            Column::new("bestobjid", SqlType::Int8).not_null(),
            Column::new("z", SqlType::Float8).not_null(),
            Column::new("zerr", SqlType::Float8).not_null(),
            Column::new("class", SqlType::Int2).not_null(),
        ],
        40_000,
    );
    c.table_mut(spec).unwrap().primary_key = vec![0];

    let n = 40_000usize;
    let ids: Vec<Datum> = (0..n as i64).map(Datum::Int).collect();
    let uniform: Vec<Datum> = (0..n).map(|i| Datum::Float(i as f64 * 0.009 % 360.0)).collect();
    let small: Vec<Datum> = (0..n).map(|i| Datum::Int((i % 6) as i64)).collect();
    for col in 0..12 {
        let stats = match col {
            0 => analyze_column(SqlType::Int8, &ids),
            3 | 11 => analyze_column(SqlType::Int2, &small),
            9 | 10 => analyze_column(SqlType::Int8, &small),
            _ => analyze_column(SqlType::Float8, &uniform),
        };
        c.set_column_stats(photo, col, stats);
    }
    let best: Vec<Datum> = (0..n as i64).map(|i| Datum::Int(i * 20)).collect();
    let z: Vec<Datum> = (0..n).map(|i| Datum::Float((i % 500) as f64 * 0.002)).collect();
    c.set_column_stats(spec, 0, analyze_column(SqlType::Int8, &ids));
    c.set_column_stats(spec, 1, analyze_column(SqlType::Int8, &best));
    c.set_column_stats(spec, 2, analyze_column(SqlType::Float8, &z));
    c.set_column_stats(spec, 3, analyze_column(SqlType::Float8, &z));
    c.set_column_stats(spec, 4, analyze_column(SqlType::Int2, &small));
    c
}

fn workload() -> Vec<Select> {
    [
        "SELECT ra, dec FROM photoobj WHERE objid = 5000",
        "SELECT objid FROM photoobj WHERE ra BETWEEN 120.0 AND 120.5",
        "SELECT objid, rmag FROM photoobj WHERE type = 3 AND rmag BETWEEN 14.0 AND 14.2",
        "SELECT p.ra, s.z FROM photoobj p, specobj s WHERE p.objid = s.bestobjid AND s.z > 0.9",
        "SELECT type, COUNT(*) FROM photoobj GROUP BY type",
        "SELECT objid FROM photoobj WHERE gmag < 0.5 AND type IN (3, 6)",
    ]
    .iter()
    .map(|s| parse_select(s).unwrap())
    .collect()
}

// ---------- rewriter ----------

#[test]
fn rewrite_single_covering_fragment() {
    let c = catalog();
    let photo = c.table_by_name("photoobj").unwrap().id;
    let design = PartitionDesign {
        fragments: vec![
            NamedFragment {
                name: "photoobj_p1".into(),
                fragment: Fragment::new(photo, [1, 2]), // ra, dec
            },
            NamedFragment {
                name: "photoobj_p2".into(),
                fragment: Fragment::new(photo, [4, 5, 6, 7, 8]),
            },
        ],
    };
    // simulate so the fragment tables resolve
    let mut o = HypotheticalCatalog::new(&c);
    parinda_whatif::simulate_partition(&mut o, &WhatIfPartition::new("photoobj_p1", "photoobj", &["ra", "dec"])).unwrap();
    parinda_whatif::simulate_partition(&mut o, &WhatIfPartition::new("photoobj_p2", "photoobj", &["rmag", "gmag", "umag", "imag", "zmag"])).unwrap();

    let sel = parse_select("SELECT ra, dec FROM photoobj WHERE objid = 7").unwrap();
    let rw = rewrite_select(&sel, &o, &design).unwrap();
    assert_eq!(rw.from.len(), 1);
    assert_eq!(rw.from[0].name, "photoobj_p1");
    // rewritten statement must bind against the overlay
    assert!(bind(&rw, &o).is_ok(), "{rw}");
}

#[test]
fn rewrite_joins_fragments_on_pk() {
    let c = catalog();
    let photo = c.table_by_name("photoobj").unwrap().id;
    let design = PartitionDesign {
        fragments: vec![
            NamedFragment { name: "photoobj_p1".into(), fragment: Fragment::new(photo, [1, 2]) },
            NamedFragment { name: "photoobj_p2".into(), fragment: Fragment::new(photo, [4]) },
        ],
    };
    let mut o = HypotheticalCatalog::new(&c);
    parinda_whatif::simulate_partition(&mut o, &WhatIfPartition::new("photoobj_p1", "photoobj", &["ra", "dec"])).unwrap();
    parinda_whatif::simulate_partition(&mut o, &WhatIfPartition::new("photoobj_p2", "photoobj", &["rmag"])).unwrap();

    let sel = parse_select("SELECT ra, rmag FROM photoobj WHERE dec > 0.0").unwrap();
    let rw = rewrite_select(&sel, &o, &design).unwrap();
    assert_eq!(rw.from.len(), 2, "{rw}");
    let text = rw.to_string();
    assert!(text.contains("objid ="), "PK join missing: {text}");
    assert!(bind(&rw, &o).is_ok(), "{rw}");
}

#[test]
fn rewrite_not_coverable_errors() {
    let c = catalog();
    let photo = c.table_by_name("photoobj").unwrap().id;
    let design = PartitionDesign {
        fragments: vec![NamedFragment {
            name: "photoobj_p1".into(),
            fragment: Fragment::new(photo, [1]),
        }],
    };
    let sel = parse_select("SELECT rmag FROM photoobj").unwrap();
    assert!(rewrite_select(&sel, &c, &design).is_err());
}

#[test]
fn rewrite_untouched_without_partitions() {
    let c = catalog();
    let sel = parse_select("SELECT ra FROM photoobj WHERE type = 1").unwrap();
    let rw = rewrite_select(&sel, &c, &PartitionDesign::default()).unwrap();
    assert_eq!(rw, sel);
}

// ---------- index advisors ----------

#[test]
fn ilp_selection_improves_workload_and_respects_budget() {
    let c = catalog();
    let wl = workload();
    let mut model = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let queries = model.queries().to_vec();
    let cands = generate_candidates(&queries, CandidateLimits::default());
    assert!(cands.len() >= 5, "expected a healthy candidate pool, got {}", cands.len());

    let budget = 200 * 1024 * 1024; // generous
    let sel = select_indexes_ilp(&mut model, &cands, budget);
    assert!(!sel.chosen.is_empty());
    assert!(sel.total_size <= budget);
    assert!(
        sel.speedup() > 1.5,
        "speedup {} (before {}, after {})",
        sel.speedup(),
        sel.cost_before,
        sel.cost_after
    );
    // per-query costs never get worse
    for (i, (b, a)) in sel.per_query.iter().enumerate() {
        assert!(a <= &(b * 1.0001), "q{i} regressed: {b} -> {a}");
    }
}

#[test]
fn tight_budget_limits_ilp_choice() {
    let c = catalog();
    let wl = workload();
    let mut model = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let queries = model.queries().to_vec();
    let cands = generate_candidates(&queries, CandidateLimits::default());
    let sel = select_indexes_ilp(&mut model, &cands, 8 * 1024 * 1024); // 8 MB
    assert!(sel.total_size <= 8 * 1024 * 1024);
}

#[test]
fn zero_budget_selects_nothing() {
    let c = catalog();
    let wl = workload();
    let mut model = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let queries = model.queries().to_vec();
    let cands = generate_candidates(&queries, CandidateLimits::default());
    let sel = select_indexes_ilp(&mut model, &cands, 0);
    assert!(sel.chosen.is_empty());
    assert_eq!(sel.cost_before, sel.cost_after);
}

#[test]
fn ilp_at_least_matches_greedy() {
    let c = catalog();
    let wl = workload();
    let cands = {
        let model = InumModel::build(&c, &wl, CostParams::default()).unwrap();
        generate_candidates(model.queries(), CandidateLimits::default())
    };
    for budget in [16u64 * 1024 * 1024, 64 * 1024 * 1024, 256 * 1024 * 1024] {
        let mut m1 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
        let ilp = select_indexes_ilp(&mut m1, &cands, budget);
        let mut m2 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
        let greedy = select_indexes_greedy(&mut m2, &cands, budget);
        assert!(
            ilp.cost_after <= greedy.cost_after * 1.02,
            "budget {budget}: ilp {} vs greedy {}",
            ilp.cost_after,
            greedy.cost_after
        );
    }
}

// ---------- AutoPart ----------

fn narrow_workload() -> Vec<Select> {
    // queries touching few of photoobj's 12 columns: prime partitioning fodder
    [
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 10.0 AND 40.0",
        "SELECT ra, dec FROM photoobj WHERE dec > 350.0",
        "SELECT rmag, gmag FROM photoobj WHERE rmag < 100.0",
        "SELECT type, COUNT(*) FROM photoobj GROUP BY type",
    ]
    .iter()
    .map(|s| parse_select(s).unwrap())
    .collect()
}

#[test]
fn autopart_improves_narrow_scans() {
    let c = catalog();
    let sugg = suggest_partitions(&c, &narrow_workload(), AutoPartConfig::default()).unwrap();
    assert!(
        sugg.speedup() > 1.3,
        "partitioning should pay off on narrow scans over a wide table: \
         speedup {} (before {}, after {})",
        sugg.speedup(),
        sugg.cost_before,
        sugg.cost_after
    );
    // individual narrow-scan queries should improve clearly; on this
    // 12-column table the win is IO-bound (~1.5x) — the 100+-column SDSS
    // schema in parinda-workload is where the paper-scale factors appear
    let wins = sugg.per_query.iter().filter(|(b, a)| b / a > 1.4).count();
    assert!(wins >= 2, "per_query: {:?}", sugg.per_query);
    assert!(!sugg.design.is_empty());
    // rewritten statements must re-parse (printer round-trip)
    for rw in &sugg.rewritten {
        let text = rw.to_string();
        assert!(parse_select(&text).is_ok(), "{text}");
    }
}

#[test]
fn autopart_converges() {
    let c = catalog();
    let cfg = AutoPartConfig { max_iterations: 64, ..Default::default() };
    let sugg = suggest_partitions(&c, &narrow_workload(), cfg).unwrap();
    assert!(sugg.iterations < 64, "did not converge: {}", sugg.iterations);
}

#[test]
fn autopart_respects_replication_limit() {
    let c = catalog();
    // no extra space allowed at all: merging may still happen (merging
    // *reduces* overhead) but the final design must fit
    let cfg = AutoPartConfig { replication_limit_bytes: 0, ..Default::default() };
    let sugg = suggest_partitions(&c, &narrow_workload(), cfg).unwrap();
    if !sugg.design.is_empty() {
        let frags: Vec<Fragment> =
            sugg.design.fragments.iter().map(|f| f.fragment.clone()).collect();
        // the selection loop only *adopts* candidates within the limit; the
        // atomic starting point itself may exceed it, in which case no
        // improvement fits and the design stays atomic — both acceptable;
        // what matters is that adopted candidates obeyed the constraint,
        // which convergence with a finite cost demonstrates.
        let _ = frags;
    }
    assert!(sugg.cost_after <= sugg.cost_before);
}

#[test]
fn autopart_noop_on_fully_covered_table() {
    let c = catalog();
    // every query reads every specobj column -> single atomic fragment,
    // nothing to partition
    let wl = vec![parse_select("SELECT * FROM specobj WHERE z > 0.5").unwrap()];
    let sugg = suggest_partitions(&c, &wl, AutoPartConfig::default()).unwrap();
    assert!(sugg.design.fragments_for(c.table_by_name("specobj").unwrap().id).is_empty());
    assert_eq!(sugg.cost_before, sugg.cost_after);
}

#[test]
fn atomic_fragments_respect_workload_structure() {
    let c = catalog();
    let wl = narrow_workload();
    let bound: Vec<_> = wl.iter().map(|s| bind(s, &c).unwrap()).collect();
    let atoms = atomic_fragments(&bound, &c);
    let photo = c.table_by_name("photoobj").unwrap().id;
    let photo_atoms: Vec<_> = atoms.iter().filter(|f| f.table == photo).collect();
    // ra+dec together, rmag+gmag together, type alone, cold rest
    assert!(photo_atoms.len() >= 4, "{photo_atoms:?}");
}

// ---------- paper-shape regressions (SDSS-30 workload) ----------

#[test]
fn ilp_beats_classic_greedy_at_tight_budget() {
    use parinda_advisor::select_indexes_greedy_static;
    use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    let wl = sdss_workload();
    let cands = {
        let m = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
        generate_candidates(m.queries(), CandidateLimits::default())
    };
    // budget at a knapsack boundary (found by sweep; stable because the
    // catalog and statistics are deterministic)
    let budget = 1920 * 1024 * 1024;
    let mut m1 = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
    let ilp = select_indexes_ilp(&mut m1, &cands, budget);
    let mut m2 = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
    let classic = select_indexes_greedy_static(&mut m2, &cands, budget);
    let gap = (classic.cost_after - ilp.cost_after) / classic.cost_after;
    assert!(
        gap > 0.05,
        "ILP should clearly beat single-pass greedy at tight budgets: gap {:.2}%",
        gap * 100.0
    );
    assert!(ilp.proven_optimal);
}

#[test]
fn static_greedy_never_beats_ilp() {
    use parinda_advisor::select_indexes_greedy_static;
    use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    let wl = sdss_workload();
    let cands = {
        let m = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
        generate_candidates(m.queries(), CandidateLimits::default())
    };
    for mb in [300u64, 900, 1500] {
        let budget = mb * 1024 * 1024;
        let mut m1 = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
        let ilp = select_indexes_ilp(&mut m1, &cands, budget);
        let mut m2 = InumModel::build(&cat, &wl, CostParams::default()).unwrap();
        let classic = select_indexes_greedy_static(&mut m2, &cands, budget);
        assert!(
            ilp.cost_after <= classic.cost_after * 1.0001,
            "budget {mb} MB: ilp {} > classic {}",
            ilp.cost_after,
            classic.cost_after
        );
    }
}

#[test]
fn autopart_merges_toward_tight_replication_budget() {
    use parinda_workload::{sdss_catalog, sdss_workload, synthesize_stats, SdssScale};
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    let wl = sdss_workload();

    // atomic fragmentation exceeds this budget; the loop must merge until
    // it fits (or abandon partitioning), never hand back a violating design
    let base = {
        use parinda_catalog::MetadataProvider;
        let _ = &cat;
        cat.all_tables().iter().map(|t| t.pages * 8192).sum::<u64>()
    };
    let unlimited = suggest_partitions(&cat, &wl, AutoPartConfig::default()).unwrap();
    let cfg = AutoPartConfig {
        replication_limit_bytes: (base / 10) as i64,
        ..Default::default()
    };
    let tight = suggest_partitions(&cat, &wl, cfg).unwrap();
    let frags: Vec<Fragment> =
        tight.design.fragments.iter().map(|f| f.fragment.clone()).collect();
    assert!(
        parinda_advisor::replication_overhead(&frags, &cat) <= (base / 10) as i64,
        "returned design violates the replication constraint"
    );
    assert!(
        tight.design.fragments.len() < unlimited.design.fragments.len(),
        "tight budget should force merging: {} vs {}",
        tight.design.fragments.len(),
        unlimited.design.fragments.len()
    );
    // still an improvement, just a smaller one
    assert!(tight.speedup() > 1.2, "{}", tight.speedup());
    assert!(tight.speedup() <= unlimited.speedup() * 1.01);
}

// ---------- weights and update-cost constraints ----------

#[test]
fn weights_steer_the_selection() {
    use parinda_advisor::{select_indexes_ilp_with, IlpOptions};
    let c = catalog();
    // two queries wanting different indexes; budget fits only one index
    let wl: Vec<Select> = [
        "SELECT ra FROM photoobj WHERE objid = 5000",
        "SELECT objid FROM photoobj WHERE ra BETWEEN 120.0 AND 120.3",
    ]
    .iter()
    .map(|s| parse_select(s).unwrap())
    .collect();
    let cands = {
        let m = InumModel::build(&c, &wl, CostParams::default()).unwrap();
        generate_candidates(m.queries(), CandidateLimits::default())
    };
    let photo = c.table_by_name("photoobj").unwrap().clone();
    let one_index = cands[0].size_bytes(&photo) + cands[0].size_bytes(&photo) / 4;

    // weight query 0 heavily -> its index (objid) must win
    let mut m1 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let s1 = select_indexes_ilp_with(
        &mut m1,
        &cands,
        one_index,
        &IlpOptions { weights: Some(vec![100.0, 1.0]), ..Default::default() },
    );
    // weight query 1 heavily -> the ra index must win
    let mut m2 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let s2 = select_indexes_ilp_with(
        &mut m2,
        &cands,
        one_index,
        &IlpOptions { weights: Some(vec![1.0, 100.0]), ..Default::default() },
    );
    assert!(!s1.chosen.is_empty() && !s2.chosen.is_empty());
    let cols1 = m1.candidate(s1.chosen[0]).columns.clone();
    let cols2 = m2.candidate(s2.chosen[0]).columns.clone();
    assert_ne!(cols1, cols2, "weights should flip the winner: {cols1:?} vs {cols2:?}");
    assert_eq!(cols1, vec![0], "objid index expected for heavy point-lookup weight");
}

#[test]
fn update_cost_limit_excludes_hot_table_indexes() {
    use parinda_advisor::{index_update_cost, select_indexes_ilp_with, IlpOptions};
    use std::collections::HashMap;
    let c = catalog();
    let wl = workload();
    let cands = {
        let m = InumModel::build(&c, &wl, CostParams::default()).unwrap();
        generate_candidates(m.queries(), CandidateLimits::default())
    };
    let photo = c.table_by_name("photoobj").unwrap().id;
    let mut rates = HashMap::new();
    rates.insert(photo, 1_000.0); // photoobj is write-hot

    // without the cap: photoobj indexes get chosen
    let mut m1 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let free = select_indexes_ilp_with(
        &mut m1,
        &cands,
        1 << 34,
        &IlpOptions { update_rates: rates.clone(), ..Default::default() },
    );
    let photo_picked = free.chosen.iter().any(|&id| m1.candidate(id).table == photo);
    assert!(photo_picked);

    // with a cap of zero update cost: no photoobj index may be built
    let mut m2 = InumModel::build(&c, &wl, CostParams::default()).unwrap();
    let capped = select_indexes_ilp_with(
        &mut m2,
        &cands,
        1 << 34,
        &IlpOptions {
            update_limit: Some(0.0),
            update_rates: rates.clone(),
            ..Default::default()
        },
    );
    for &id in &capped.chosen {
        assert_ne!(
            m2.candidate(id).table,
            photo,
            "update-cost cap must exclude hot-table indexes"
        );
    }
    // update costs are positive for rated tables
    let some_photo = (0..cands.len())
        .map(parinda_inum::CandId)
        .find(|&id| m2.candidate(id).table == photo)
        .unwrap();
    assert!(index_update_cost(&m2, some_photo, &rates) > 0.0);
}
