//! # parinda-failpoint
//!
//! A deterministic, std-only fault-injection harness for proving
//! PARINDA's recovery paths. Production code sprinkles *named sites*
//! (`failpoint::should_fail("inum::bind")`) at the places where real
//! faults would surface — worker items, optimizer calls, solver pivots,
//! heap loads — and the failpoint suite injects a panic, a typed error,
//! or a stall at each site, then asserts the session reports the **same
//! typed error or the same degraded-but-valid result at any thread
//! count**.
//!
//! The harness is compiled out of release binaries: unless the
//! `failpoints` cargo feature is enabled, every function here is an
//! inlinable no-op (`should_fail` is a constant `false`), so the sites
//! cost nothing in production.
//!
//! With the feature on, sites are configured either programmatically
//! ([`set`] / [`clear_all`]) or via the environment:
//!
//! ```text
//! PARINDA_FAILPOINTS='inum::bind=err,solver::relax=panic,storage::load=delay:25'
//! ```
//!
//! Injection is deterministic: a site either always fires or never
//! fires — there is no probabilistic mode — so a failing configuration
//! reproduces exactly.

#![deny(missing_docs)]

/// Environment variable listing active failpoints, as comma-separated
/// `site=action` pairs where action is `err`, `panic`, or `delay:<ms>`.
pub const FAILPOINTS_ENV: &str = "PARINDA_FAILPOINTS";

/// Every named injection site in the workspace. Kept in one place so the
/// failpoint suite can iterate the full matrix without grepping.
pub const SITES: &[&str] = &[
    "parallel::item",          // inside the parallel engine's per-item catch_unwind wrapper
    "inum::bind",              // INUM query binding (column resolution against the catalog)
    "inum::plan_case",         // INUM per-configuration plan construction during cache build
    "inum::access_cost",       // INUM cached access-cost lookup for one (query, index) pair
    "advisor::benefit_cell",   // one cell of the ILP benefit matrix
    "advisor::autopart_eval",  // AutoPart per-candidate costing against the frozen memo
    "advisor::rewrite",        // query rewriting against a fragmented schema
    "solver::relax",           // LP relaxation of one branch-and-bound node
    "solver::simplex",         // one simplex solve
    "storage::load",           // heap loading in the storage engine
    "core::dispatch",          // console command dispatch (exercises the guard() backstop)
    "workload::cluster",       // template clustering in workload compression
    "solver::warmstart",       // greedy-incumbent seeding of the branch-and-bound search
    "server::accept",          // daemon connection admission (refuses the connection)
    "server::session",         // daemon per-request dispatch (errs one request)
    "wal::append",             // metadata-WAL record append (daemon degrades to ephemeral)
    "wal::fsync",              // metadata-WAL group fsync (daemon degrades to ephemeral)
    "wal::snapshot",           // snapshot write + log truncation (daemon degrades to ephemeral)
    "recover::replay",         // startup snapshot+WAL replay (daemon starts ephemeral)
    "stream::feed",            // one streamed statement's parse/accumulate step
    "stream::epoch",           // epoch advance (decay + merge + evict), before any commit
    "stream::drift",           // drift scoring between epoch distributions
    "inum::delta",             // incremental INUM maintenance (apply_delta)
];

/// What an activated failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The site reports failure: [`should_fail`] returns `true` and the
    /// caller takes its typed-error / degraded path.
    Err,
    /// The site panics inside [`should_fail`], exercising the
    /// `catch_unwind` containment around it.
    Panic,
    /// The site stalls for the given number of milliseconds, then
    /// proceeds normally (exercises deadline expiry), so
    /// [`should_fail`] returns `false`.
    Delay(u64),
}

impl Action {
    /// Parse `err`, `panic`, or `delay:<ms>`.
    pub fn parse(s: &str) -> Option<Action> {
        match s.trim() {
            "err" => Some(Action::Err),
            "panic" => Some(Action::Panic),
            other => {
                let ms = other.strip_prefix("delay:")?.trim().parse::<u64>().ok()?;
                Some(Action::Delay(ms))
            }
        }
    }
}

#[cfg(feature = "failpoints")]
mod active {
    use super::{Action, FAILPOINTS_ENV};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct State {
        actions: HashMap<String, Action>,
        hits: HashMap<String, u64>,
    }

    fn state() -> &'static Mutex<State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE.get_or_init(|| {
            let mut actions = HashMap::new();
            if let Ok(spec) = std::env::var(FAILPOINTS_ENV) {
                for pair in spec.split(',') {
                    let pair = pair.trim();
                    if pair.is_empty() {
                        continue;
                    }
                    if let Some((site, action)) = pair.split_once('=') {
                        if let Some(a) = Action::parse(action) {
                            actions.insert(site.trim().to_string(), a);
                        }
                    }
                }
            }
            Mutex::new(State { actions, hits: HashMap::new() })
        })
    }

    fn lock() -> std::sync::MutexGuard<'static, State> {
        // A panic injected at one site must not wedge the registry for
        // the rest of the test process: recover from poisoning.
        state().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// See the crate docs; this is the feature-on implementation.
    pub fn should_fail(site: &str) -> bool {
        let action = {
            let mut st = lock();
            *st.hits.entry(site.to_string()).or_insert(0) += 1;
            st.actions.get(site).copied()
        };
        match action {
            None => false,
            Some(Action::Err) => true,
            Some(Action::Panic) => panic!("failpoint {site}: injected panic"),
            Some(Action::Delay(ms)) => {
                // parinda-lint: allow(blocking-while-locked): the delay is the injected fault — tests schedule it deliberately to widen race windows, and the registry guard is already released; the feature-off build compiles this whole module away
                std::thread::sleep(std::time::Duration::from_millis(ms));
                false
            }
        }
    }

    pub fn set(site: &str, action: Action) {
        lock().actions.insert(site.to_string(), action);
    }

    pub fn clear(site: &str) {
        lock().actions.remove(site);
    }

    pub fn clear_all() {
        lock().actions.clear();
    }

    pub fn hit_count(site: &str) -> u64 {
        lock().hits.get(site).copied().unwrap_or(0)
    }

    pub fn reset_hits() {
        lock().hits.clear();
    }
}

#[cfg(feature = "failpoints")]
pub use active::should_fail;

/// Activate `site` with the given [`Action`] (overrides any env config).
#[cfg(feature = "failpoints")]
pub fn set(site: &str, action: Action) {
    active::set(site, action)
}

/// Deactivate one site.
#[cfg(feature = "failpoints")]
pub fn clear(site: &str) {
    active::clear(site)
}

/// Deactivate every site (hit counters are preserved).
#[cfg(feature = "failpoints")]
pub fn clear_all() {
    active::clear_all()
}

/// How many times execution has reached `site` (hit whether or not the
/// site was active — useful for asserting a code path was exercised).
#[cfg(feature = "failpoints")]
pub fn hit_count(site: &str) -> u64 {
    active::hit_count(site)
}

/// Zero all hit counters.
#[cfg(feature = "failpoints")]
pub fn reset_hits() {
    active::reset_hits()
}

/// Feature off: never fails.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn should_fail(_site: &str) -> bool {
    false
}

/// Feature off: no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn set(_site: &str, _action: Action) {}

/// Feature off: no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn clear(_site: &str) {}

/// Feature off: no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn clear_all() {}

/// Feature off: always 0.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit_count(_site: &str) -> u64 {
    0
}

/// Feature off: no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn reset_hits() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_parsing() {
        assert_eq!(Action::parse("err"), Some(Action::Err));
        assert_eq!(Action::parse(" panic "), Some(Action::Panic));
        assert_eq!(Action::parse("delay:25"), Some(Action::Delay(25)));
        assert_eq!(Action::parse("delay:"), None);
        assert_eq!(Action::parse("explode"), None);
    }

    #[test]
    fn sites_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for site in SITES {
            assert!(seen.insert(site), "duplicate site {site}");
            assert!(site.contains("::"), "site {site} should be crate-namespaced");
        }
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn feature_off_is_inert() {
        set("parallel::item", Action::Panic);
        assert!(!should_fail("parallel::item"));
        assert_eq!(hit_count("parallel::item"), 0);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn feature_on_registry_works() {
        clear_all();
        reset_hits();
        assert!(!should_fail("tests::quiet"));
        set("tests::site", Action::Err);
        assert!(should_fail("tests::site"));
        assert_eq!(hit_count("tests::site"), 1);
        clear("tests::site");
        assert!(!should_fail("tests::site"));
        assert_eq!(hit_count("tests::site"), 2);

        set("tests::boom", Action::Panic);
        let r = std::panic::catch_unwind(|| should_fail("tests::boom"));
        assert!(r.is_err());
        clear_all();
        // The panic above poisoned nothing observable: registry still usable.
        assert!(!should_fail("tests::boom"));
    }
}
