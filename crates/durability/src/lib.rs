//! # parinda-wal
//!
//! Crash-safe durability for the PARINDA advisor daemon: an append-only
//! *metadata* write-ahead log plus periodic snapshots, std-only.
//!
//! The daemon's whole state is command-sourced — the shared engine is
//! rebuilt from a bootstrap spec and every session overlay is the
//! deterministic product of the console commands that created it — so
//! the log journals *commands*, not pages: one record per state-mutating
//! console line, plus session open/close markers and the engine-level
//! bootstrap DDL. Recovery is replay.
//!
//! ## Record format
//!
//! Each WAL record is framed as
//!
//! ```text
//! [u32 LE payload_len][u32 LE crc32(payload)][payload bytes]
//! ```
//!
//! where the payload is UTF-8 text `"<lsn> <body>"` and the body is one
//! of:
//!
//! ```text
//! boot <spec>            engine bootstrap (spec may span lines)
//! open <session>         a durable session came into existence
//! close <session>        the session ended cleanly (state dropped)
//! cmd <session> <line>   one state-mutating console line
//! ```
//!
//! LSNs are assigned by the writer, monotonically, starting at 1. A torn
//! or corrupt tail — short frame, bad checksum, undecodable payload — is
//! detected on recovery and the log is cleanly cut at the *preceding*
//! record boundary ([`Recovery::truncated_tail`] counts the cut); a bad
//! record never panics and is never silently misparsed as data.
//!
//! ## Snapshots (`parinda-snapshot/v1`)
//!
//! [`Wal::snapshot`] persists the compacted state — bootstrap spec,
//! next session id, and every live session's journaled command list —
//! to `snapshot.v1` (written to a temp file, fsynced, renamed, directory
//! fsynced) recording the last LSN it covers, then truncates the log.
//! Recovery loads the snapshot (whole-file CRC-verified) and replays
//! only WAL records with a higher LSN, so a crash *between* snapshot
//! rename and log truncation is harmless: the stale records are skipped.
//!
//! ## Group fsync
//!
//! [`Wal::append`] buffers in the OS; [`Wal::sync`] makes records
//! durable. `sync(lsn)` returns without touching the disk when another
//! caller's fsync already covered `lsn` — concurrent committers share
//! one `fdatasync`.
//!
//! Failpoint sites (`wal::append`, `wal::fsync`, `wal::snapshot`,
//! `recover::replay`) let the deterministic fault-injection harness
//! drive every disk-misbehaves path; callers degrade to ephemeral mode
//! rather than die.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The WAL file inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// The snapshot file inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.v1";
/// First line of every snapshot file.
pub const SNAPSHOT_SCHEMA: &str = "parinda-snapshot/v1";

/// Upper bound on one record's payload; a length prefix beyond this is
/// treated as corruption (protects recovery from absurd allocations when
/// scanning garbage).
const MAX_RECORD_BYTES: usize = 1 << 24;

/// Bytes of frame header per record (`len` + `crc`).
const FRAME_HEADER: usize = 8;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, const-built. Detects every
// single-bit flip, which makes the torn-write fuzz assertions exact.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One logical WAL record (see the crate docs for the wire encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The engine bootstrap spec (`paper`, `laptop:<rows>`, or
    /// `ddl\n<script>`); the spec may contain newlines.
    Bootstrap(String),
    /// A durable session came into existence.
    Open(u64),
    /// The session ended cleanly; its state is dropped, not restored.
    Close(u64),
    /// One state-mutating console line for a session. The line must be
    /// newline-free (console lines are read one per line, so this holds
    /// by construction; [`Wal::append`] rejects violations).
    Cmd {
        /// The durable session the command belongs to.
        session: u64,
        /// The console line, verbatim.
        line: String,
    },
}

impl Record {
    /// Encode the record body (everything after the LSN prefix).
    pub fn encode(&self) -> String {
        match self {
            Record::Bootstrap(spec) => format!("boot {spec}"),
            Record::Open(id) => format!("open {id}"),
            Record::Close(id) => format!("close {id}"),
            Record::Cmd { session, line } => format!("cmd {session} {line}"),
        }
    }

    /// Decode a record body; `None` means the body is not a valid
    /// record (recovery treats that as a corrupt tail).
    pub fn decode(body: &str) -> Option<Record> {
        if let Some(spec) = body.strip_prefix("boot ") {
            return Some(Record::Bootstrap(spec.to_string()));
        }
        if let Some(id) = body.strip_prefix("open ") {
            return Some(Record::Open(id.trim().parse().ok()?));
        }
        if let Some(id) = body.strip_prefix("close ") {
            return Some(Record::Close(id.trim().parse().ok()?));
        }
        if let Some(rest) = body.strip_prefix("cmd ") {
            let (sid, line) = rest.split_once(' ')?;
            return Some(Record::Cmd { session: sid.parse().ok()?, line: line.to_string() });
        }
        None
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// Everything recovered from a data directory: the compacted snapshot
/// state with the surviving WAL tail replayed on top.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The recorded engine bootstrap spec, if any was ever journaled.
    pub bootstrap: Option<String>,
    /// Live (not cleanly closed) sessions and their journaled
    /// state-mutating command lines, in original order.
    pub sessions: BTreeMap<u64, Vec<String>>,
    /// The next durable session id to allocate.
    pub next_session: u64,
    /// WAL records applied on top of the snapshot during this recovery.
    pub replayed_records: u64,
    /// Torn/corrupt tails discarded at a record boundary (0 on a clean
    /// log; recovery itself still succeeds).
    pub truncated_tail: u64,
    /// The LSN the writer should assign to the next record.
    pub next_lsn: u64,
    /// Byte length of the valid WAL prefix; everything past it is the
    /// discarded tail and is cut off when the log is reopened.
    pub wal_good_bytes: u64,
}

/// A validated data directory holding `wal.log` + `snapshot.v1`.
#[derive(Debug)]
pub struct DataDir {
    path: PathBuf,
}

impl DataDir {
    /// Open (creating if absent) a data directory. An existing path
    /// that is not a directory is refused with a typed
    /// [`io::ErrorKind::InvalidInput`] error naming the path.
    pub fn open(path: &Path) -> io::Result<DataDir> {
        if path.exists() && !path.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("data dir {} is not a directory", path.display()),
            ));
        }
        std::fs::create_dir_all(path)?;
        Ok(DataDir { path: path.to_path_buf() })
    }

    /// Where this data directory lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load the snapshot (if any) and replay the surviving WAL tail on
    /// top. Torn or corrupt tail records are discarded at the preceding
    /// record boundary — that is *success*, reported via
    /// [`Recovery::truncated_tail`]. An unreadable snapshot or an
    /// injected `recover::replay` fault is an error; callers degrade to
    /// ephemeral mode.
    pub fn recover(&self) -> io::Result<Recovery> {
        if parinda_failpoint::should_fail("recover::replay") {
            return Err(io::Error::other("failpoint recover::replay"));
        }
        let mut rec = Recovery { next_session: 1, next_lsn: 1, ..Recovery::default() };
        let mut snapshot_lsn = 0u64;
        let snap_path = self.path.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let data = std::fs::read(&snap_path)?;
            let snap = parse_snapshot(&data)?;
            rec.bootstrap = if snap.bootstrap.is_empty() { None } else { Some(snap.bootstrap) };
            rec.sessions = snap.sessions;
            rec.next_session = snap.next_session.max(1);
            snapshot_lsn = snap.last_lsn;
            rec.next_lsn = snapshot_lsn + 1;
        }
        let wal_path = self.path.join(WAL_FILE);
        if wal_path.exists() {
            let data = std::fs::read(&wal_path)?;
            let mut off = 0usize;
            loop {
                if off == data.len() {
                    break; // clean end of log
                }
                if data.len() - off < FRAME_HEADER {
                    rec.truncated_tail += 1; // torn frame header
                    break;
                }
                let len = u32::from_le_bytes([
                    data[off],
                    data[off + 1],
                    data[off + 2],
                    data[off + 3],
                ]) as usize;
                let crc = u32::from_le_bytes([
                    data[off + 4],
                    data[off + 5],
                    data[off + 6],
                    data[off + 7],
                ]);
                if len == 0 || len > MAX_RECORD_BYTES || data.len() - off - FRAME_HEADER < len {
                    rec.truncated_tail += 1; // insane length or torn payload
                    break;
                }
                let payload = &data[off + FRAME_HEADER..off + FRAME_HEADER + len];
                if crc32(payload) != crc {
                    rec.truncated_tail += 1; // checksum mismatch (bit flip / torn write)
                    break;
                }
                if parinda_failpoint::should_fail("recover::replay") {
                    return Err(io::Error::other("failpoint recover::replay"));
                }
                let parsed = std::str::from_utf8(payload)
                    .ok()
                    .and_then(|text| text.split_once(' '))
                    .and_then(|(lsn, body)| {
                        Some((lsn.parse::<u64>().ok()?, Record::decode(body)?))
                    });
                let Some((lsn, record)) = parsed else {
                    rec.truncated_tail += 1; // checksummed but undecodable: stop here
                    break;
                };
                off += FRAME_HEADER + len;
                rec.wal_good_bytes = off as u64;
                if lsn <= snapshot_lsn {
                    continue; // already compacted into the snapshot
                }
                rec.next_lsn = lsn + 1;
                rec.replayed_records += 1;
                match record {
                    Record::Bootstrap(spec) => rec.bootstrap = Some(spec),
                    Record::Open(id) => {
                        rec.sessions.entry(id).or_default();
                        rec.next_session = rec.next_session.max(id + 1);
                    }
                    Record::Close(id) => {
                        rec.sessions.remove(&id);
                    }
                    Record::Cmd { session, line } => {
                        rec.sessions.entry(session).or_default().push(line);
                        rec.next_session = rec.next_session.max(session + 1);
                    }
                }
            }
        }
        Ok(rec)
    }

    /// Open the WAL for continued appends after a recovery: the
    /// discarded tail (if any) is cut off the file, and the writer
    /// resumes at [`Recovery::next_lsn`].
    pub fn open_wal(&self, recovery: &Recovery) -> io::Result<Wal> {
        let path = self.path.join(WAL_FILE);
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let actual = file.metadata()?.len();
        if actual > recovery.wal_good_bytes {
            // Cut the torn tail so new records append at a clean boundary.
            file.set_len(recovery.wal_good_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            dir: self.path.clone(),
            inner: Mutex::new(WalInner {
                file,
                next_lsn: recovery.next_lsn.max(1),
                synced_lsn: recovery.next_lsn.saturating_sub(1),
                records: 0,
                bytes: 0,
                since_snapshot: 0,
            }),
        })
    }
}

// ---------------------------------------------------------------------
// The WAL writer
// ---------------------------------------------------------------------

struct WalInner {
    file: File,
    next_lsn: u64,
    synced_lsn: u64,
    records: u64,
    bytes: u64,
    since_snapshot: u64,
}

/// An open, append-only WAL with group fsync and snapshot/truncate.
pub struct Wal {
    dir: PathBuf,
    inner: Mutex<WalInner>,
}

/// What [`Wal::append`] wrote: the record's LSN and its on-disk size.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// Log sequence number assigned to the record.
    pub lsn: u64,
    /// Frame bytes written (header + payload).
    pub bytes: u64,
}

impl Wal {
    fn lock(&self) -> MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one record (buffered; call [`Wal::sync`] to make it
    /// durable). Command lines containing a newline are rejected — the
    /// text encoding is line-framed inside the checksummed payload.
    pub fn append(&self, record: &Record) -> io::Result<Appended> {
        if parinda_failpoint::should_fail("wal::append") {
            return Err(io::Error::other("failpoint wal::append"));
        }
        if let Record::Cmd { line, .. } = record {
            if line.contains('\n') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "journaled console lines must be newline-free",
                ));
            }
        }
        let mut g = self.lock();
        let lsn = g.next_lsn;
        let payload = format!("{lsn} {}", record.encode()).into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // parinda-lint: allow(blocking-while-locked): the frame write IS the critical section — `inner` serialises writers so frames never interleave; `Wal.inner` is a leaf lock (see DESIGN.md lock order)
        g.file.write_all(&frame)?;
        g.next_lsn += 1;
        g.records += 1;
        g.bytes += frame.len() as u64;
        g.since_snapshot += 1;
        Ok(Appended { lsn, bytes: frame.len() as u64 })
    }

    /// Make every record up to `lsn` durable. Group commit: if another
    /// caller's fsync already covered `lsn`, this returns without
    /// touching the disk.
    pub fn sync(&self, lsn: u64) -> io::Result<()> {
        if parinda_failpoint::should_fail("wal::fsync") {
            return Err(io::Error::other("failpoint wal::fsync"));
        }
        let mut g = self.lock();
        if g.synced_lsn >= lsn {
            return Ok(());
        }
        // parinda-lint: allow(blocking-while-locked): group commit — the fsync must happen under `inner` so `synced_lsn` can only advance to an LSN the disk has truly absorbed; `Wal.inner` is a leaf lock
        g.file.sync_data()?;
        g.synced_lsn = g.next_lsn - 1;
        Ok(())
    }

    /// Persist a `parinda-snapshot/v1` snapshot of the compacted state
    /// and truncate the log. The snapshot is written to a temp file,
    /// fsynced, renamed over `snapshot.v1`, and the directory fsynced;
    /// only then is the log cut, so a crash at any point leaves either
    /// the old (snapshot, log) pair or the new one.
    ///
    /// Callers must ensure `sessions` is consistent with every record
    /// already appended (hold their journal lock across this call).
    pub fn snapshot(
        &self,
        bootstrap: &str,
        next_session: u64,
        sessions: &BTreeMap<u64, Vec<String>>,
    ) -> io::Result<()> {
        if parinda_failpoint::should_fail("wal::snapshot") {
            return Err(io::Error::other("failpoint wal::snapshot"));
        }
        let mut g = self.lock();
        let last_lsn = g.next_lsn - 1;
        let mut text = format!(
            "{SNAPSHOT_SCHEMA}\nlast_lsn {last_lsn}\nnext_session {next_session}\nbootstrap {}\n",
            bootstrap.len()
        );
        text.push_str(bootstrap);
        text.push('\n');
        for (id, cmds) in sessions {
            text.push_str(&format!("session {id} {}\n", cmds.len()));
            for line in cmds {
                text.push_str(line);
                text.push('\n');
            }
        }
        let trailer = format!("crc {:08x}\n", crc32(text.as_bytes()));
        text.push_str(&trailer);

        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            // parinda-lint: allow(blocking-while-locked): the whole write-fsync-rename-fsync dance must sit under `inner` — the snapshot and the log cut below it have to be one atomic transition; `Wal.inner` is a leaf lock
            f.write_all(text.as_bytes())?;
            // parinda-lint: allow(blocking-while-locked): see above — tmp-file fsync before the rename is the atomicity protocol
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &final_path)?;
        // Make the rename itself durable (best-effort: directory fsync
        // is not supported on every platform).
        if let Ok(d) = File::open(&self.dir) {
            // parinda-lint: allow(blocking-while-locked): see above — directory fsync makes the rename durable before the log is cut
            d.sync_all().ok();
        }
        // Now the snapshot covers everything: cut the log. A crash
        // before this point replays stale records and skips them by LSN.
        g.file.set_len(0)?;
        g.file.seek(SeekFrom::Start(0))?;
        // parinda-lint: allow(blocking-while-locked): see above — the truncation fsync completes the snapshot transaction while `inner` still excludes appenders
        g.file.sync_data()?;
        g.synced_lsn = g.next_lsn - 1;
        g.since_snapshot = 0;
        Ok(())
    }

    /// Records appended through this handle (since open).
    pub fn records(&self) -> u64 {
        self.lock().records
    }

    /// Frame bytes appended through this handle (since open).
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Records appended since the last snapshot (drives the periodic
    /// snapshot policy).
    pub fn since_snapshot(&self) -> u64 {
        self.lock().since_snapshot
    }
}

// ---------------------------------------------------------------------
// Snapshot parsing
// ---------------------------------------------------------------------

struct SnapshotContents {
    last_lsn: u64,
    next_session: u64,
    bootstrap: String,
    sessions: BTreeMap<u64, Vec<String>>,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot corrupt: {what}"))
}

/// Parse + CRC-verify a `parinda-snapshot/v1` file.
fn parse_snapshot(data: &[u8]) -> io::Result<SnapshotContents> {
    // Fixed-width trailer: "crc XXXXXXXX\n" (13 bytes) over everything
    // before it.
    const TRAILER: usize = 13;
    if data.len() < TRAILER {
        return Err(corrupt("shorter than its checksum trailer"));
    }
    let (body, trailer) = data.split_at(data.len() - TRAILER);
    let trailer = std::str::from_utf8(trailer).map_err(|_| corrupt("non-UTF-8 trailer"))?;
    let hex = trailer
        .strip_prefix("crc ")
        .and_then(|t| t.strip_suffix('\n'))
        .ok_or_else(|| corrupt("malformed checksum trailer"))?;
    let want = u32::from_str_radix(hex, 16).map_err(|_| corrupt("malformed checksum"))?;
    if crc32(body) != want {
        return Err(corrupt("checksum mismatch"));
    }
    let text = std::str::from_utf8(body).map_err(|_| corrupt("non-UTF-8 body"))?;

    // Header lines, then the length-prefixed bootstrap bytes, then the
    // per-session command lists.
    let mut pos = 0usize;
    let next_line = |pos: &mut usize| -> io::Result<&str> {
        let rest = &text[*pos..];
        let nl = rest.find('\n').ok_or_else(|| corrupt("truncated header"))?;
        *pos += nl + 1;
        Ok(&rest[..nl])
    };
    if next_line(&mut pos)? != SNAPSHOT_SCHEMA {
        return Err(corrupt("unknown schema"));
    }
    let last_lsn = next_line(&mut pos)?
        .strip_prefix("last_lsn ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad last_lsn"))?;
    let next_session = next_line(&mut pos)?
        .strip_prefix("next_session ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad next_session"))?;
    let boot_len: usize = next_line(&mut pos)?
        .strip_prefix("bootstrap ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("bad bootstrap length"))?;
    if text.len() - pos < boot_len {
        return Err(corrupt("bootstrap overruns the file"));
    }
    if !text.is_char_boundary(pos + boot_len) {
        return Err(corrupt("bootstrap length splits a character"));
    }
    let bootstrap = text[pos..pos + boot_len].to_string();
    pos += boot_len;
    if text[pos..].starts_with('\n') {
        pos += 1;
    } else {
        return Err(corrupt("missing bootstrap terminator"));
    }
    let mut sessions: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    while pos < text.len() {
        let header = next_line(&mut pos)?;
        let rest = header.strip_prefix("session ").ok_or_else(|| corrupt("bad session header"))?;
        let (id, n) = rest.split_once(' ').ok_or_else(|| corrupt("bad session header"))?;
        let id: u64 = id.parse().map_err(|_| corrupt("bad session id"))?;
        let n: usize = n.parse().map_err(|_| corrupt("bad session command count"))?;
        let mut cmds = Vec::with_capacity(n);
        for _ in 0..n {
            cmds.push(next_line(&mut pos)?.to_string());
        }
        sessions.insert(id, cmds);
    }
    Ok(SnapshotContents { last_lsn, next_session, bootstrap, sessions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("parinda-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tmpdir");
        dir
    }

    fn fresh(dir: &Path) -> (DataDir, Wal) {
        let dd = DataDir::open(dir).expect("open data dir");
        let rec = dd.recover().expect("recover empty");
        let wal = dd.open_wal(&rec).expect("open wal");
        (dd, wal)
    }

    #[test]
    fn record_encoding_roundtrips() {
        for rec in [
            Record::Bootstrap("ddl\nCREATE TABLE t (a BIGINT);".into()),
            Record::Open(7),
            Record::Close(7),
            Record::Cmd { session: 3, line: "workload sdss".into() },
            Record::Cmd { session: 3, line: String::new() },
        ] {
            // `cmd <id> <line>` with an empty line encodes a trailing
            // space; decode must tolerate it.
            let enc = rec.encode();
            assert_eq!(Record::decode(&enc), Some(rec), "{enc:?}");
        }
        assert_eq!(Record::decode("frobnicate 1"), None);
        assert_eq!(Record::decode("open x"), None);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn append_sync_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let (dd, wal) = fresh(&dir);
        let a = wal.append(&Record::Bootstrap("paper".into())).expect("boot");
        assert_eq!(a.lsn, 1);
        wal.append(&Record::Open(1)).expect("open");
        wal.append(&Record::Cmd { session: 1, line: "workload sdss".into() }).expect("cmd");
        wal.append(&Record::Cmd { session: 1, line: "budget rounds 2".into() }).expect("cmd");
        wal.append(&Record::Open(2)).expect("open");
        wal.append(&Record::Close(2)).expect("close");
        let last = wal.append(&Record::Cmd { session: 1, line: "threads 2".into() }).expect("cmd");
        wal.sync(last.lsn).expect("sync");
        // group commit: already covered, second sync is a no-op
        wal.sync(1).expect("noop sync");

        let rec = dd.recover().expect("recover");
        assert_eq!(rec.bootstrap.as_deref(), Some("paper"));
        assert_eq!(rec.truncated_tail, 0);
        assert_eq!(rec.replayed_records, 7);
        assert_eq!(rec.next_lsn, 8);
        assert_eq!(rec.next_session, 3);
        assert_eq!(rec.sessions.len(), 1, "closed session dropped");
        assert_eq!(
            rec.sessions[&1],
            vec!["workload sdss".to_string(), "budget rounds 2".into(), "threads 2".into()]
        );
    }

    #[test]
    fn snapshot_compacts_and_truncates() {
        let dir = tmpdir("snapshot");
        let (dd, wal) = fresh(&dir);
        wal.append(&Record::Open(1)).expect("open");
        let a = wal.append(&Record::Cmd { session: 1, line: "workload sdss".into() }).expect("cmd");
        wal.sync(a.lsn).expect("sync");
        let mut sessions = BTreeMap::new();
        sessions.insert(1u64, vec!["workload sdss".to_string()]);
        wal.snapshot("paper", 2, &sessions).expect("snapshot");
        assert_eq!(wal.since_snapshot(), 0);
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).expect("meta").len(), 0);

        // post-snapshot appends land in the (fresh) log
        let b = wal.append(&Record::Cmd { session: 1, line: "threads 2".into() }).expect("cmd");
        wal.sync(b.lsn).expect("sync");

        let rec = dd.recover().expect("recover");
        assert_eq!(rec.bootstrap.as_deref(), Some("paper"));
        assert_eq!(rec.replayed_records, 1, "only the post-snapshot record replays");
        assert_eq!(rec.sessions[&1], vec!["workload sdss".to_string(), "threads 2".into()]);
        assert_eq!(rec.next_session, 2);
    }

    #[test]
    fn stale_records_after_snapshot_are_skipped_by_lsn() {
        // Simulate a crash *between* snapshot rename and log truncation:
        // write the snapshot via a second Wal handle trick — easier: take
        // a snapshot, then put the old log bytes back.
        let dir = tmpdir("stale");
        let (dd, wal) = fresh(&dir);
        wal.append(&Record::Open(1)).expect("open");
        let a = wal.append(&Record::Cmd { session: 1, line: "workload sdss".into() }).expect("cmd");
        wal.sync(a.lsn).expect("sync");
        let old_log = std::fs::read(dir.join(WAL_FILE)).expect("read log");
        let mut sessions = BTreeMap::new();
        sessions.insert(1u64, vec!["workload sdss".to_string()]);
        wal.snapshot("paper", 2, &sessions).expect("snapshot");
        std::fs::write(dir.join(WAL_FILE), &old_log).expect("restore stale log");

        let rec = dd.recover().expect("recover");
        assert_eq!(rec.replayed_records, 0, "stale records are covered by the snapshot");
        assert_eq!(rec.sessions[&1], vec!["workload sdss".to_string()]);
        assert_eq!(rec.truncated_tail, 0);
    }

    #[test]
    fn torn_tail_is_cut_at_the_previous_boundary() {
        let dir = tmpdir("torn");
        let (dd, wal) = fresh(&dir);
        wal.append(&Record::Open(1)).expect("open");
        let a = wal.append(&Record::Cmd { session: 1, line: "workload sdss".into() }).expect("cmd");
        wal.sync(a.lsn).expect("sync");
        let full = std::fs::read(dir.join(WAL_FILE)).expect("read log");
        // Truncate one byte into the last record's frame.
        std::fs::write(dir.join(WAL_FILE), &full[..full.len() - 1]).expect("truncate");
        let rec = dd.recover().expect("recover");
        assert_eq!(rec.truncated_tail, 1);
        assert!(rec.sessions[&1].is_empty(), "torn cmd record discarded");
        // Reopening the WAL cuts the torn bytes so appends are clean.
        let wal2 = dd.open_wal(&rec).expect("reopen");
        let b = wal2.append(&Record::Cmd { session: 1, line: "threads 2".into() }).expect("cmd");
        wal2.sync(b.lsn).expect("sync");
        let rec2 = dd.recover().expect("recover again");
        assert_eq!(rec2.truncated_tail, 0);
        assert_eq!(rec2.sessions[&1], vec!["threads 2".to_string()]);
    }

    #[test]
    fn snapshot_file_is_checksummed() {
        let dir = tmpdir("snapcrc");
        let (dd, wal) = fresh(&dir);
        let mut sessions = BTreeMap::new();
        sessions.insert(1u64, vec!["workload sdss".to_string()]);
        wal.snapshot("ddl\nCREATE TABLE t (a BIGINT);", 2, &sessions).expect("snapshot");
        let rec = dd.recover().expect("recover");
        assert_eq!(rec.bootstrap.as_deref(), Some("ddl\nCREATE TABLE t (a BIGINT);"));
        assert_eq!(rec.sessions[&1], vec!["workload sdss".to_string()]);
        // Flip one byte: recovery must refuse the snapshot, not misparse it.
        let mut bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).expect("read snap");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(dir.join(SNAPSHOT_FILE), &bytes).expect("corrupt");
        let err = dd.recover().expect_err("corrupt snapshot must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn non_directory_data_dir_is_refused() {
        let dir = tmpdir("notadir");
        let file = dir.join("plainfile");
        std::fs::write(&file, b"x").expect("write file");
        let err = DataDir::open(&file).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("plainfile"), "{err}");
    }

    #[test]
    fn newline_in_command_is_rejected() {
        let dir = tmpdir("nl");
        let (_dd, wal) = fresh(&dir);
        let err = wal
            .append(&Record::Cmd { session: 1, line: "a\nb".into() })
            .expect_err("newline rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
