//! Table and index metadata.

use crate::column::Column;
use crate::layout;

/// Identifier of a table within a [`crate::catalog::Catalog`] (stable
/// across additions; similar to a PostgreSQL OID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of an index within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// A base table (or a materialized partition, which is just a table whose
/// `partition_of` records its parent, as in the paper's what-if tables).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    /// Cardinality (`pg_class.reltuples`).
    pub row_count: u64,
    /// Heap pages (`pg_class.relpages`); derived from layout when built
    /// synthetically, measured when materialized.
    pub pages: u64,
    /// Positions (into `columns`) of the primary-key columns.
    pub primary_key: Vec<usize>,
    /// If this table is a vertical partition, the parent table's id.
    pub partition_of: Option<TableId>,
}

impl Table {
    /// Create a table, deriving the page count from the row shape.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        columns: Vec<Column>,
        row_count: u64,
    ) -> Self {
        let pages = layout::heap_pages(row_count, &columns);
        Table {
            id,
            name: name.into().to_ascii_lowercase(),
            columns,
            row_count,
            pages,
            primary_key: Vec::new(),
            partition_of: None,
        }
    }

    /// Builder: set the primary key by column names (panics on a bad name,
    /// which is a schema-definition bug, not a runtime condition).
    pub fn with_primary_key(mut self, names: &[&str]) -> Self {
        self.primary_key = names
            .iter()
            .map(|n| {
                self.column_index(n)
                    .unwrap_or_else(|| panic!("primary key column {n} not in table {}", self.name))
            })
            .collect();
        self
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column lookup by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Average heap tuple width in bytes (data portion + header).
    pub fn avg_tuple_size(&self) -> f64 {
        layout::avg_heap_tuple_size(&self.columns)
    }

    /// Average *data* width of a row (planner "width" of `SELECT *`).
    pub fn avg_row_width(&self) -> f64 {
        layout::avg_columns_size(&self.columns)
    }

    /// Recompute `pages` from the current shape and row count.
    pub fn recompute_pages(&mut self) {
        self.pages = layout::heap_pages(self.row_count, &self.columns);
    }
}

/// A B-tree index over a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    /// Positions of the key columns in the table, in key order.
    pub key_columns: Vec<usize>,
    pub unique: bool,
    /// Leaf pages (Equation 1 when hypothetical, measured when built).
    pub pages: u64,
    /// Tree height above the leaf level.
    pub height: u32,
    /// True for what-if indexes that exist only as statistics.
    pub hypothetical: bool,
}

impl Index {
    /// Define an index over `table`, sizing it with Equation 1.
    pub fn new(
        id: IndexId,
        name: impl Into<String>,
        table: &Table,
        key_column_names: &[&str],
    ) -> Option<Self> {
        let key_columns: Option<Vec<usize>> = key_column_names
            .iter()
            .map(|n| table.column_index(n))
            .collect();
        let key_columns = key_columns?;
        let cols: Vec<Column> = key_columns.iter().map(|&i| table.columns[i].clone()).collect();
        let pages = layout::index_leaf_pages(table.row_count, &cols);
        let entry = layout::INDEX_ROW_OVERHEAD as f64 + layout::avg_columns_size(&cols);
        let fanout = ((layout::usable_page_bytes() as f64) / entry).max(2.0) as u64;
        Some(Index {
            id,
            name: name.into().to_ascii_lowercase(),
            table: table.id,
            key_columns,
            unique: false,
            pages,
            height: layout::btree_height(pages, fanout),
            hypothetical: false,
        })
    }

    /// Builder: mark unique.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Builder: mark hypothetical (what-if).
    pub fn hypothetical(mut self) -> Self {
        self.hypothetical = true;
        self
    }

    /// Size in bytes (leaf level), as charged against the advisor's budget.
    pub fn size_bytes(&self) -> u64 {
        self.pages * layout::PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SqlType;

    fn t() -> Table {
        Table::new(
            TableId(1),
            "PhotoObj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8).not_null(),
                Column::new("dec", SqlType::Float8).not_null(),
                Column::new("type", SqlType::Int2).not_null(),
            ],
            100_000,
        )
        .with_primary_key(&["objid"])
    }

    #[test]
    fn table_name_lowercased() {
        assert_eq!(t().name, "photoobj");
    }

    #[test]
    fn column_lookup_case_insensitive() {
        assert_eq!(t().column_index("RA"), Some(1));
        assert_eq!(t().column_index("nope"), None);
    }

    #[test]
    fn primary_key_positions() {
        assert_eq!(t().primary_key, vec![0]);
    }

    #[test]
    #[should_panic(expected = "primary key column")]
    fn bad_primary_key_panics() {
        let _ = t().with_primary_key(&["missing"]);
    }

    #[test]
    fn pages_derived_from_layout() {
        let table = t();
        assert_eq!(
            table.pages,
            layout::heap_pages(table.row_count, &table.columns)
        );
        assert!(table.pages > 0);
    }

    #[test]
    fn index_over_missing_column_is_none() {
        let table = t();
        assert!(Index::new(IndexId(1), "i", &table, &["missing"]).is_none());
    }

    #[test]
    fn index_pages_match_equation1() {
        let table = t();
        let idx = Index::new(IndexId(1), "i_ra", &table, &["ra"]).unwrap();
        let cols = vec![table.columns[1].clone()];
        assert_eq!(idx.pages, layout::index_leaf_pages(table.row_count, &cols));
        assert!(idx.size_bytes() >= idx.pages * 8192);
    }

    #[test]
    fn multicolumn_index_keys_in_order() {
        let table = t();
        let idx = Index::new(IndexId(2), "i", &table, &["dec", "ra"]).unwrap();
        assert_eq!(idx.key_columns, vec![2, 1]);
    }
}
