//! The system catalog and the metadata interface the planner consumes.
//!
//! The planner never touches a [`Catalog`] directly; it goes through the
//! [`MetadataProvider`] trait. That indirection is this substrate's
//! equivalent of PostgreSQL's planner hooks (paper §3.1): the what-if layer
//! implements the same trait with an overlay that adds hypothetical
//! indexes and partition tables without mutating the real catalog.

use std::collections::HashMap;

use crate::stats::ColumnStats;
use crate::table::{Index, IndexId, Table, TableId};

/// Everything the planner needs to know about the physical design.
///
/// Implemented by the real [`Catalog`] and by the what-if overlay in
/// `parinda-whatif`.
pub trait MetadataProvider {
    /// Look up a table by (case-insensitive) name.
    fn table_by_name(&self, name: &str) -> Option<&Table>;
    /// Look up a table by id.
    fn table(&self, id: TableId) -> Option<&Table>;
    /// All indexes defined on `table`.
    fn indexes_on(&self, table: TableId) -> Vec<&Index>;
    /// Statistics for column `column_idx` of `table`, if analyzed.
    fn column_stats(&self, table: TableId, column_idx: usize) -> Option<&ColumnStats>;
    /// All tables (for tooling / reports).
    fn all_tables(&self) -> Vec<&Table>;
}

/// The "real" catalog: tables, indexes, and per-column statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    indexes: Vec<Index>,
    by_name: HashMap<String, TableId>,
    stats: HashMap<(TableId, usize), ColumnStats>,
    next_table: u32,
    next_index: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Allocate the next table id (also used by the what-if overlay so
    /// hypothetical ids never collide with real ones).
    pub fn next_table_id(&self) -> TableId {
        TableId(self.next_table)
    }

    /// Allocate the next index id.
    pub fn next_index_id(&self) -> IndexId {
        IndexId(self.next_index)
    }

    /// Add a table built elsewhere; its id must come from
    /// [`Catalog::next_table_id`]. Returns the id for convenience.
    pub fn add_table(&mut self, table: Table) -> TableId {
        assert_eq!(
            table.id.0, self.next_table,
            "table id must be allocated via next_table_id"
        );
        let id = table.id;
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        self.next_table += 1;
        id
    }

    /// Convenience: create and add a table in one step.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<crate::column::Column>,
        row_count: u64,
    ) -> TableId {
        let t = Table::new(self.next_table_id(), name, columns, row_count);
        self.add_table(t)
    }

    /// Add an index; its id must come from [`Catalog::next_index_id`].
    pub fn add_index(&mut self, index: Index) -> IndexId {
        assert_eq!(
            index.id.0, self.next_index,
            "index id must be allocated via next_index_id"
        );
        let id = index.id;
        self.indexes.push(index);
        self.next_index += 1;
        id
    }

    /// Convenience: define and add an index by column names.
    ///
    /// Returns `None` if the table or any key column does not exist.
    pub fn create_index(&mut self, name: &str, table: &str, keys: &[&str]) -> Option<IndexId> {
        let t = self.table_by_name(table)?.clone();
        let idx = Index::new(self.next_index_id(), name, &t, keys)?;
        Some(self.add_index(idx))
    }

    /// Drop an index by id; returns the removed index.
    pub fn drop_index(&mut self, id: IndexId) -> Option<Index> {
        let pos = self.indexes.iter().position(|i| i.id == id)?;
        Some(self.indexes.remove(pos))
    }

    /// Overwrite an index's size with a *measured* value (used after the
    /// storage engine materializes it; the original value came from
    /// Equation 1).
    pub fn update_index_size(&mut self, id: IndexId, pages: u64, height: u32) -> bool {
        match self.indexes.iter_mut().find(|i| i.id == id) {
            Some(i) => {
                i.pages = pages;
                i.height = height;
                i.hypothetical = false;
                true
            }
            None => false,
        }
    }

    /// Record statistics for one column.
    pub fn set_column_stats(&mut self, table: TableId, column_idx: usize, stats: ColumnStats) {
        self.stats.insert((table, column_idx), stats);
    }

    /// Mutable access to a table (e.g. after loading data, to update
    /// `row_count`/`pages`).
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.id == id)
    }

    /// Index lookup by id.
    pub fn index(&self, id: IndexId) -> Option<&Index> {
        self.indexes.iter().find(|i| i.id == id)
    }

    /// Index lookup by name.
    pub fn index_by_name(&self, name: &str) -> Option<&Index> {
        let lower = name.to_ascii_lowercase();
        self.indexes.iter().find(|i| i.name == lower)
    }

    /// All indexes (for reports).
    pub fn all_indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Total bytes occupied by all tables and indexes — the base size the
    /// advisor's space budgets are expressed against.
    pub fn total_size_bytes(&self) -> u64 {
        let t: u64 = self
            .tables
            .iter()
            .map(|t| t.pages * crate::layout::PAGE_SIZE as u64)
            .sum();
        let i: u64 = self.indexes.iter().map(|i| i.size_bytes()).sum();
        t + i
    }
}

impl MetadataProvider for Catalog {
    fn table_by_name(&self, name: &str) -> Option<&Table> {
        let id = self.by_name.get(&name.to_ascii_lowercase())?;
        self.table(*id)
    }

    fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.iter().find(|t| t.id == id)
    }

    fn indexes_on(&self, table: TableId) -> Vec<&Index> {
        self.indexes.iter().filter(|i| i.table == table).collect()
    }

    fn column_stats(&self, table: TableId, column_idx: usize) -> Option<&ColumnStats> {
        self.stats.get(&(table, column_idx))
    }

    fn all_tables(&self) -> Vec<&Table> {
        self.tables.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::stats::ColumnStats;
    use crate::types::SqlType;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "photoobj",
            vec![
                Column::new("objid", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8),
            ],
            1000,
        );
        c
    }

    #[test]
    fn table_lookup_by_name_and_id() {
        let c = cat();
        let t = c.table_by_name("PHOTOOBJ").unwrap();
        assert_eq!(t.name, "photoobj");
        assert_eq!(c.table(t.id).unwrap().name, "photoobj");
    }

    #[test]
    fn missing_table_is_none() {
        assert!(cat().table_by_name("nope").is_none());
    }

    #[test]
    fn create_and_drop_index() {
        let mut c = cat();
        let id = c.create_index("i_ra", "photoobj", &["ra"]).unwrap();
        let t = c.table_by_name("photoobj").unwrap().id;
        assert_eq!(c.indexes_on(t).len(), 1);
        assert!(c.index_by_name("I_RA").is_some());
        let dropped = c.drop_index(id).unwrap();
        assert_eq!(dropped.name, "i_ra");
        assert!(c.indexes_on(t).is_empty());
    }

    #[test]
    fn create_index_on_missing_column_fails() {
        let mut c = cat();
        assert!(c.create_index("i", "photoobj", &["nope"]).is_none());
    }

    #[test]
    fn stats_roundtrip() {
        let mut c = cat();
        let t = c.table_by_name("photoobj").unwrap().id;
        c.set_column_stats(t, 1, ColumnStats::unknown(8.0));
        assert!(c.column_stats(t, 1).is_some());
        assert!(c.column_stats(t, 0).is_none());
    }

    #[test]
    fn total_size_includes_indexes() {
        let mut c = cat();
        let before = c.total_size_bytes();
        c.create_index("i_ra", "photoobj", &["ra"]).unwrap();
        assert!(c.total_size_bytes() > before);
    }

    #[test]
    #[should_panic(expected = "allocated via next_table_id")]
    fn add_table_with_stale_id_panics() {
        let mut c = cat();
        let t = Table::new(TableId(99), "x", vec![Column::new("a", SqlType::Int4)], 1);
        c.add_table(t);
    }
}
