//! Column definitions.

use crate::types::SqlType;

/// A column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (unique within its table, lower-cased).
    pub name: String,
    /// Declared SQL type.
    pub ty: SqlType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
    /// Average logical width in bytes; for fixed-size types this is the
    /// fixed size, for varlena types a modelling estimate used until
    /// statistics are collected.
    pub avg_width: f64,
}

impl Column {
    /// A column with the type's natural width (8 bytes default for varlena).
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        let avg_width = ty.fixed_size().map(|n| n as f64).unwrap_or(8.0);
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: true,
            avg_width,
        }
    }

    /// Builder: mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Builder: set the expected average width (varlena columns).
    pub fn with_avg_width(mut self, w: f64) -> Self {
        self.avg_width = w;
        self
    }

    /// Average on-disk size including varlena headers.
    pub fn avg_stored_size(&self) -> f64 {
        self.ty.avg_stored_size(self.avg_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_lowercases_name() {
        let c = Column::new("ObjID", SqlType::Int8);
        assert_eq!(c.name, "objid");
    }

    #[test]
    fn fixed_width_from_type() {
        let c = Column::new("x", SqlType::Float4);
        assert_eq!(c.avg_width, 4.0);
        assert_eq!(c.avg_stored_size(), 4.0);
    }

    #[test]
    fn varlena_width_override() {
        let c = Column::new("name", SqlType::Text).with_avg_width(20.0);
        assert_eq!(c.avg_width, 20.0);
        assert_eq!(c.avg_stored_size(), 21.0);
    }

    #[test]
    fn not_null_builder() {
        let c = Column::new("id", SqlType::Int8).not_null();
        assert!(!c.nullable);
    }
}
