//! Human-readable catalog descriptions (the `\d`-style panes of the demo
//! GUI and the console's `show` commands).

use std::fmt::Write as _;

use crate::catalog::MetadataProvider;
use crate::table::TableId;

/// Describe one table: columns, types, nullability, statistics summary,
/// and the indexes defined on it.
pub fn describe_table(meta: &dyn MetadataProvider, table: TableId) -> Option<String> {
    let t = meta.table(table)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table \"{}\"  ({} rows, {} pages)",
        t.name, t.row_count, t.pages
    );
    let _ = writeln!(
        out,
        "{:<20} {:<18} {:<9} {:>10} {:>8} {:>6}",
        "column", "type", "nullable", "n_distinct", "nulls", "corr"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for (i, c) in t.columns.iter().enumerate() {
        let (nd, nf, corr) = match meta.column_stats(table, i) {
            Some(s) => (
                if s.n_distinct < 0.0 {
                    format!("{:.0}%", -s.n_distinct * 100.0)
                } else {
                    format!("{:.0}", s.n_distinct)
                },
                format!("{:.0}%", s.null_frac * 100.0),
                format!("{:+.2}", s.correlation),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let _ = writeln!(
            out,
            "{:<20} {:<18} {:<9} {:>10} {:>8} {:>6}",
            c.name,
            c.ty.sql_name(),
            if c.nullable { "yes" } else { "no" },
            nd,
            nf,
            corr
        );
    }
    if !t.primary_key.is_empty() {
        let pk: Vec<&str> = t.primary_key.iter().map(|&i| t.columns[i].name.as_str()).collect();
        let _ = writeln!(out, "primary key: ({})", pk.join(", "));
    }
    if let Some(parent) = t.partition_of {
        if let Some(p) = meta.table(parent) {
            let _ = writeln!(out, "partition of: {}", p.name);
        }
    }
    let indexes = meta.indexes_on(table);
    if !indexes.is_empty() {
        let _ = writeln!(out, "indexes:");
        for i in indexes {
            let cols: Vec<&str> =
                i.key_columns.iter().map(|&c| t.columns[c].name.as_str()).collect();
            let _ = writeln!(
                out,
                "  {} ({}){}  [{} pages]",
                i.name,
                cols.join(", "),
                if i.hypothetical { "  (what-if)" } else { "" },
                i.pages
            );
        }
    }
    Some(out)
}

/// One-line-per-table summary of the whole catalog.
pub fn describe_catalog(meta: &dyn MetadataProvider) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>10} {:>8}  notes",
        "table", "rows", "pages", "columns"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for t in meta.all_tables() {
        let notes = match t.partition_of {
            Some(parent) => meta
                .table(parent)
                .map(|p| format!("partition of {}", p.name))
                .unwrap_or_default(),
            None => {
                let n = meta.indexes_on(t.id).len();
                if n > 0 {
                    format!("{n} indexes")
                } else {
                    String::new()
                }
            }
        };
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>10} {:>8}  {}",
            t.name,
            t.row_count,
            t.pages,
            t.columns.len(),
            notes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::column::Column;
    use crate::stats::ColumnStats;
    use crate::types::SqlType;

    fn cat() -> (Catalog, TableId) {
        let mut c = Catalog::new();
        let t = c.create_table(
            "obs",
            vec![
                Column::new("id", SqlType::Int8).not_null(),
                Column::new("ra", SqlType::Float8),
            ],
            5000,
        );
        c.table_mut(t).unwrap().primary_key = vec![0];
        c.create_index("i_ra", "obs", &["ra"]).unwrap();
        let mut s = ColumnStats::unknown(8.0);
        s.n_distinct = -1.0;
        s.correlation = 1.0;
        c.set_column_stats(t, 0, s);
        (c, t)
    }

    #[test]
    fn table_description_lists_everything() {
        let (c, t) = cat();
        let d = describe_table(&c, t).unwrap();
        assert!(d.contains("Table \"obs\""), "{d}");
        assert!(d.contains("bigint"), "{d}");
        assert!(d.contains("primary key: (id)"), "{d}");
        assert!(d.contains("i_ra (ra)"), "{d}");
        assert!(d.contains("100%"), "unique column shown as ratio: {d}");
    }

    #[test]
    fn missing_table_is_none() {
        let (c, _) = cat();
        assert!(describe_table(&c, TableId(99)).is_none());
    }

    #[test]
    fn catalog_summary_has_all_tables() {
        let (c, _) = cat();
        let d = describe_catalog(&c);
        assert!(d.contains("obs"), "{d}");
        assert!(d.contains("1 indexes"), "{d}");
    }

    #[test]
    fn hypothetical_indexes_flagged() {
        let (mut c, t) = cat();
        let table = c.table(t).unwrap().clone();
        let idx = crate::table::Index::new(c.next_index_id(), "w_id", &table, &["id"])
            .unwrap()
            .hypothetical();
        c.add_index(idx);
        let d = describe_table(&c, t).unwrap();
        assert!(d.contains("(what-if)"), "{d}");
    }
}
