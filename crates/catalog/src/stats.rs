//! Per-column statistics, mirroring PostgreSQL's `pg_statistic`.
//!
//! The what-if layer works precisely because "the query optimizer primarily
//! deals with statistics" (paper §1): injecting these structures for
//! hypothetical objects is indistinguishable, to the planner, from the
//! objects existing on disk.

use crate::types::{Datum, SqlType};

/// Default number of equi-depth histogram buckets (PostgreSQL's
/// `default_statistics_target` in 8.3 was 10; we use 100 like modern PG
/// to reduce interpolation noise — the advisor only needs relative costs).
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 100;

/// Maximum number of most-common values tracked.
pub const DEFAULT_MCV_ENTRIES: usize = 10;

/// Statistics for one column, as the planner sees them.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Fraction of rows that are NULL in this column (`stanullfrac`).
    pub null_frac: f64,
    /// Number of distinct non-null values (`stadistinct`). Positive means
    /// an absolute count; negative means `-ratio` of the row count (e.g.
    /// -1.0 for a unique column), exactly like PostgreSQL.
    pub n_distinct: f64,
    /// Average logical width in bytes of non-null values (`stawidth`),
    /// excluding any varlena header.
    pub avg_width: f64,
    /// Most common values with their frequencies (fractions of all rows).
    pub mcv: Vec<(Datum, f64)>,
    /// Equi-depth histogram bounds over the values *not* covered by the
    /// MCV list. `bounds.len()` = buckets + 1; empty if not collected.
    pub histogram: Vec<Datum>,
    /// Physical-vs-logical order correlation in [-1, 1] (`stacorrelation`).
    pub correlation: f64,
}

impl ColumnStats {
    /// Statistics for a column we know nothing about (planner defaults).
    pub fn unknown(avg_width: f64) -> Self {
        ColumnStats {
            null_frac: 0.0,
            n_distinct: -0.1, // guess: 10% of rows are distinct
            avg_width,
            mcv: Vec::new(),
            histogram: Vec::new(),
            correlation: 0.0,
        }
    }

    /// Resolve `n_distinct` to an absolute count given the table row count.
    pub fn distinct_count(&self, row_count: f64) -> f64 {
        let d = if self.n_distinct < 0.0 {
            -self.n_distinct * row_count
        } else {
            self.n_distinct
        };
        d.max(1.0)
    }

    /// Total frequency mass captured by the MCV list.
    pub fn mcv_total_freq(&self) -> f64 {
        self.mcv.iter().map(|(_, f)| *f).sum()
    }

    /// Look up the frequency of `value` in the MCV list.
    pub fn mcv_freq(&self, value: &Datum) -> Option<f64> {
        self.mcv
            .iter()
            .find(|(v, _)| v.sql_eq(value))
            .map(|(_, f)| *f)
    }
}

/// Build [`ColumnStats`] from a full column of data (the substrate's ANALYZE).
///
/// Uses the whole column rather than a sample: our materialized tables are
/// laptop-scale, so exact statistics both simplify testing and remove one
/// source of noise from what-if accuracy experiments (E5, E7).
pub fn analyze_column(ty: SqlType, values: &[Datum]) -> ColumnStats {
    analyze_column_with(ty, values, DEFAULT_MCV_ENTRIES, DEFAULT_HISTOGRAM_BUCKETS)
}

/// [`analyze_column`] with explicit MCV/histogram sizing.
pub fn analyze_column_with(
    ty: SqlType,
    values: &[Datum],
    max_mcv: usize,
    buckets: usize,
) -> ColumnStats {
    let total = values.len();
    if total == 0 {
        return ColumnStats::unknown(ty.avg_stored_size(8.0));
    }

    let mut non_null: Vec<&Datum> = values.iter().filter(|v| !v.is_null()).collect();
    let null_frac = (total - non_null.len()) as f64 / total as f64;
    if non_null.is_empty() {
        return ColumnStats {
            null_frac: 1.0,
            n_distinct: 0.0,
            avg_width: 0.0,
            mcv: Vec::new(),
            histogram: Vec::new(),
            correlation: 0.0,
        };
    }

    let avg_width = non_null
        .iter()
        .map(|v| match v {
            Datum::Str(s) => s.len() as f64,
            _ => ty.fixed_size().unwrap_or(8) as f64,
        })
        .sum::<f64>()
        / non_null.len() as f64;

    // Correlation: Spearman-style rank correlation between physical
    // position and value order, computed before sorting.
    let correlation = physical_correlation(values);

    non_null.sort_by(|a, b| a.sql_cmp(b));

    // Group runs of equal values to count distincts and frequencies.
    let mut groups: Vec<(&Datum, usize)> = Vec::new();
    for v in &non_null {
        match groups.last_mut() {
            Some((gv, n)) if gv.sql_eq(v) => *n += 1,
            _ => groups.push((v, 1)),
        }
    }
    let distincts = groups.len();

    // MCVs: values appearing more often than average earn a slot.
    let avg_count = non_null.len() as f64 / distincts as f64;
    let mut by_freq: Vec<(&Datum, usize)> = groups.clone();
    by_freq.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mcv: Vec<(Datum, f64)> = by_freq
        .iter()
        .take(max_mcv)
        .filter(|(_, n)| (*n as f64) > avg_count * 1.25 && *n > 1)
        .map(|(v, n)| ((*v).clone(), *n as f64 / total as f64))
        .collect();

    // Histogram over values not in the MCV list.
    let mcv_values: Vec<&Datum> = mcv.iter().map(|(v, _)| v).collect();
    let rest: Vec<&Datum> = non_null
        .iter()
        .filter(|v| !mcv_values.iter().any(|m| m.sql_eq(v)))
        .copied()
        .collect();
    let histogram = equi_depth_bounds(&rest, buckets);

    // PostgreSQL stores n_distinct as a negative ratio when it scales
    // with the table (heuristic: distincts > 10% of rows).
    let n_distinct = if distincts as f64 > 0.1 * total as f64 {
        -(distincts as f64 / total as f64)
    } else {
        distincts as f64
    };

    ColumnStats {
        null_frac,
        n_distinct,
        avg_width,
        mcv,
        histogram,
        correlation,
    }
}

/// Equi-depth histogram bounds: `min(buckets, n-1) + 1` boundary values.
fn equi_depth_bounds(sorted: &[&Datum], buckets: usize) -> Vec<Datum> {
    if sorted.len() < 2 || buckets == 0 {
        return Vec::new();
    }
    let b = buckets.min(sorted.len() - 1);
    let mut bounds = Vec::with_capacity(b + 1);
    for i in 0..=b {
        let idx = i * (sorted.len() - 1) / b;
        bounds.push(sorted[idx].clone());
    }
    bounds
}

/// Correlation between physical row order and value order, in [-1, 1].
///
/// Uses the Pearson correlation of (position, rank); 1.0 means the column
/// is stored fully sorted (clustered), 0 means random placement.
fn physical_correlation(values: &[Datum]) -> f64 {
    let pairs: Vec<(f64, f64)> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.as_f64().map(|x| (i as f64, x)))
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Datum> {
        v.iter().map(|i| Datum::Int(*i)).collect()
    }

    #[test]
    fn analyze_empty_column_is_unknown() {
        let s = analyze_column(SqlType::Int4, &[]);
        assert_eq!(s.n_distinct, -0.1);
    }

    #[test]
    fn analyze_all_null() {
        let s = analyze_column(SqlType::Int4, &[Datum::Null, Datum::Null]);
        assert_eq!(s.null_frac, 1.0);
        assert_eq!(s.n_distinct, 0.0);
    }

    #[test]
    fn null_frac_counts_nulls() {
        let mut v = ints(&[1, 2, 3]);
        v.push(Datum::Null);
        let s = analyze_column(SqlType::Int4, &v);
        assert!((s.null_frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unique_column_gets_negative_ratio() {
        let v = ints(&(0..1000).collect::<Vec<_>>());
        let s = analyze_column(SqlType::Int4, &v);
        assert!(s.n_distinct < 0.0);
        assert!((s.distinct_count(1000.0) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn low_cardinality_column_gets_absolute_count() {
        let v: Vec<Datum> = (0..1000).map(|i| Datum::Int(i % 5)).collect();
        let s = analyze_column(SqlType::Int4, &v);
        assert_eq!(s.n_distinct, 5.0);
    }

    #[test]
    fn skewed_column_yields_mcvs() {
        // value 7 dominates
        let mut v: Vec<Datum> = (0..900).map(|_| Datum::Int(7)).collect();
        v.extend((100..200).map(Datum::Int));
        let s = analyze_column(SqlType::Int4, &v);
        let f = s.mcv_freq(&Datum::Int(7)).expect("7 should be an MCV");
        assert!((f - 0.9).abs() < 1e-9);
    }

    #[test]
    fn uniform_column_has_no_mcvs() {
        let v = ints(&(0..500).collect::<Vec<_>>());
        let s = analyze_column(SqlType::Int4, &v);
        assert!(s.mcv.is_empty());
    }

    #[test]
    fn histogram_bounds_are_sorted_and_cover_range() {
        let v = ints(&(0..1000).collect::<Vec<_>>());
        let s = analyze_column(SqlType::Int4, &v);
        assert!(!s.histogram.is_empty());
        assert_eq!(s.histogram.first().unwrap(), &Datum::Int(0));
        assert_eq!(s.histogram.last().unwrap(), &Datum::Int(999));
        for w in s.histogram.windows(2) {
            assert_ne!(w[0].sql_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn sorted_column_has_high_correlation() {
        let v = ints(&(0..200).collect::<Vec<_>>());
        let s = analyze_column(SqlType::Int4, &v);
        assert!(s.correlation > 0.99, "corr={}", s.correlation);
    }

    #[test]
    fn reversed_column_has_negative_correlation() {
        let v = ints(&(0..200).rev().collect::<Vec<_>>());
        let s = analyze_column(SqlType::Int4, &v);
        assert!(s.correlation < -0.99);
    }

    #[test]
    fn avg_width_of_strings() {
        let v = vec![
            Datum::Str("ab".into()),
            Datum::Str("abcd".into()),
            Datum::Str("abcdef".into()),
        ];
        let s = analyze_column(SqlType::Text, &v);
        assert!((s.avg_width - 4.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_count_clamps_to_one() {
        let s = ColumnStats::unknown(4.0);
        assert!(s.distinct_count(0.0) >= 1.0);
    }
}
