//! # parinda-catalog
//!
//! System-catalog substrate for the PARINDA reproduction: a PostgreSQL-style
//! type system (sizes + alignment), tables, B-tree index metadata,
//! per-column statistics (`pg_statistic` analog), and the physical layout
//! arithmetic behind the paper's Equation 1.
//!
//! Everything above this crate — optimizer, what-if simulation, advisors —
//! consumes physical-design metadata exclusively through the
//! [`MetadataProvider`] trait, which is the substrate's equivalent of the
//! planner hooks PARINDA uses in PostgreSQL 8.3.

#![allow(missing_docs)]

pub mod catalog;
pub mod column;
pub mod describe;
pub mod layout;
pub mod stats;
pub mod table;
pub mod types;

pub use catalog::{Catalog, MetadataProvider};
pub use describe::{describe_catalog, describe_table};
pub use column::Column;
pub use stats::{analyze_column, ColumnStats};
pub use table::{Index, IndexId, Table, TableId};
pub use types::{Align, Datum, SqlType};
