//! Physical layout arithmetic shared by the storage engine and the
//! what-if sizing layer (paper §3.2, Equation 1).
//!
//! Constants follow PostgreSQL 8.3 on a 64-bit platform, which is the
//! configuration the paper names: page size B = 8192 and per-row index
//! overhead o = 24.

use crate::column::Column;
use crate::types::Align;

/// Page size in bytes (PostgreSQL `BLCKSZ`).
pub const PAGE_SIZE: usize = 8192;

/// Page header size (`PageHeaderData`).
pub const PAGE_HEADER: usize = 24;

/// Per-tuple line pointer in the page slot array (`ItemIdData`).
pub const ITEM_POINTER: usize = 4;

/// Heap tuple header (`HeapTupleHeaderData`, without null bitmap).
pub const HEAP_TUPLE_HEADER: usize = 23;

/// Index row overhead *o* from Equation 1: the IndexTupleData header plus
/// the heap TID pointing back to the main table, MAXALIGN'd.
pub const INDEX_ROW_OVERHEAD: usize = 24;

/// Maximum alignment (MAXALIGN) on 64-bit platforms.
pub const MAX_ALIGN: Align = Align::Double;

/// Usable bytes in a page for tuple data + line pointers.
pub const fn usable_page_bytes() -> usize {
    PAGE_SIZE - PAGE_HEADER
}

/// Average heap tuple size for a row with the given columns, including the
/// tuple header, null bitmap, and per-column alignment padding, MAXALIGN'd.
///
/// This is the *statistical* companion of the byte-exact encoder in
/// `parinda-storage`: it uses average column widths instead of actual
/// values, which is what both the planner and the what-if table component
/// need.
pub fn avg_heap_tuple_size(columns: &[Column]) -> f64 {
    let has_nullable = columns.iter().any(|c| c.nullable);
    let bitmap = if has_nullable {
        columns.len().div_ceil(8)
    } else {
        0
    };
    let header = MAX_ALIGN.align_up(HEAP_TUPLE_HEADER + bitmap);
    // Whole tuples are MAXALIGN'd on the page, like PostgreSQL.
    align_up_f64(header as f64 + avg_columns_size(columns), MAX_ALIGN)
}

/// Average size of the data portion of a row: Σ (align(c) + size(c)),
/// where `align(c)` is the expected padding before column `c` given the
/// columns preceding it — the inner sum of Equation 1.
pub fn avg_columns_size(columns: &[Column]) -> f64 {
    let mut offset = 0.0;
    for c in columns {
        offset = align_up_f64(offset, c.ty.align());
        offset += c.avg_stored_size();
    }
    offset
}

/// Fractional-offset alignment used when sizes are statistical averages.
///
/// Rounds the running average offset up to the column's alignment boundary;
/// with integral inputs it matches exact alignment, and with fractional
/// averages it models the expected padding.
fn align_up_f64(offset: f64, align: Align) -> f64 {
    let a = align.bytes() as f64;
    (offset / a).ceil() * a
}

/// Number of heap pages needed to store `row_count` rows of the given shape.
pub fn heap_pages(row_count: u64, columns: &[Column]) -> u64 {
    if row_count == 0 {
        return 1; // an empty table still has one page in our model
    }
    let tuple = avg_heap_tuple_size(columns) + ITEM_POINTER as f64;
    let per_page = (usable_page_bytes() as f64 / tuple).floor().max(1.0);
    (row_count as f64 / per_page).ceil() as u64
}

/// Equation 1 from the paper: leaf pages of a B-tree index over `columns`
/// on a table with `row_count` rows.
///
/// ```text
/// Pages = ceil( (o + Σ_{c ∈ I} (size(c) + align(c))) * R / B )
/// ```
///
/// Internal pages are deliberately ignored, as in the paper ("we compute
/// only the sizes of the leaf pages").
pub fn index_leaf_pages(row_count: u64, columns: &[Column]) -> u64 {
    if row_count == 0 {
        return 1;
    }
    let entry = INDEX_ROW_OVERHEAD as f64 + avg_columns_size(columns);
    // Index pages also spend a line pointer per entry and reserve a
    // "special space" area; folding both into the row overhead keeps the
    // formula literally Equation 1 while staying within a few percent of
    // the built structure (validated by experiment E5).
    let per_page = (usable_page_bytes() as f64 / (entry + ITEM_POINTER as f64))
        .floor()
        .max(1.0);
    (row_count as f64 / per_page).ceil() as u64
}

/// Estimated B-tree height (root = level 0 counts as a page of its own);
/// used for index-scan descent costs.
pub fn btree_height(leaf_pages: u64, fanout: u64) -> u32 {
    let fanout = fanout.max(2);
    let mut pages = leaf_pages.max(1);
    let mut height = 0u32;
    while pages > 1 {
        pages = pages.div_ceil(fanout);
        height += 1;
    }
    height
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SqlType;

    fn col(ty: SqlType) -> Column {
        Column::new("c", ty).not_null()
    }

    #[test]
    fn columns_size_accounts_for_padding() {
        // bool (1) followed by int8 (align 8): 1 + 7 padding + 8 = 16
        let cols = vec![col(SqlType::Bool), col(SqlType::Int8)];
        assert_eq!(avg_columns_size(&cols), 16.0);
    }

    #[test]
    fn columns_size_no_padding_when_ordered() {
        let cols = vec![col(SqlType::Int8), col(SqlType::Bool)];
        assert_eq!(avg_columns_size(&cols), 9.0);
    }

    #[test]
    fn tuple_header_is_maxaligned() {
        let cols = vec![col(SqlType::Int4)];
        // header 23 -> 24 (no nullable cols), + 4 data -> MAXALIGN 32
        assert_eq!(avg_heap_tuple_size(&cols), 32.0);
    }

    #[test]
    fn nullable_adds_bitmap() {
        let cols = vec![Column::new("a", SqlType::Int4)];
        // header 23 + bitmap 1 = 24 -> aligned 24, + 4 -> MAXALIGN 32
        assert_eq!(avg_heap_tuple_size(&cols), 32.0);
        let nine: Vec<Column> = (0..9).map(|i| Column::new(format!("c{i}"), SqlType::Int4)).collect();
        // header 23 + bitmap 2 = 25 -> 32, + 36 data -> MAXALIGN 72
        assert_eq!(avg_heap_tuple_size(&nine), 72.0);
    }

    #[test]
    fn heap_pages_empty_table() {
        assert_eq!(heap_pages(0, &[col(SqlType::Int4)]), 1);
    }

    #[test]
    fn heap_pages_scale_linearly() {
        let cols = vec![col(SqlType::Int8), col(SqlType::Float8)];
        let p1 = heap_pages(100_000, &cols);
        let p2 = heap_pages(200_000, &cols);
        assert!(p2 >= 2 * p1 - 1 && p2 <= 2 * p1 + 1);
    }

    #[test]
    fn equation1_matches_hand_computation() {
        // int8 key: entry = 24 + 8 = 32, +4 line pointer = 36.
        // per page = floor(8168 / 36) = 226; 1M rows -> ceil(1e6/226) = 4425.
        let cols = vec![col(SqlType::Int8)];
        assert_eq!(index_leaf_pages(1_000_000, &cols), 4425);
    }

    #[test]
    fn wider_index_needs_more_pages() {
        let narrow = vec![col(SqlType::Int4)];
        let wide = vec![col(SqlType::Int8), col(SqlType::Float8), col(SqlType::Float8)];
        assert!(index_leaf_pages(1_000_000, &wide) > index_leaf_pages(1_000_000, &narrow));
    }

    #[test]
    fn btree_height_grows_logarithmically() {
        assert_eq!(btree_height(1, 256), 0);
        assert_eq!(btree_height(200, 256), 1);
        assert_eq!(btree_height(256 * 256, 256), 2);
    }
}
