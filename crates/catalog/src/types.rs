//! PostgreSQL-style type system: on-disk sizes, alignment, and runtime values.
//!
//! PARINDA's what-if sizing (Equation 1 of the paper) depends on two
//! per-column properties of the underlying DBMS type system: the average
//! on-disk size of a value and the alignment padding inserted before it.
//! This module reproduces PostgreSQL 8.3's `typlen`/`typalign` behaviour for
//! the types that appear in analytical workloads such as SDSS.

use std::cmp::Ordering;
use std::fmt;

/// Alignment category, mirroring PostgreSQL's `typalign` catalog column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Align {
    /// `typalign = 'c'`: byte-aligned.
    Char,
    /// `typalign = 's'`: 2-byte aligned.
    Short,
    /// `typalign = 'i'`: 4-byte aligned.
    Int,
    /// `typalign = 'd'`: 8-byte aligned.
    Double,
}

impl Align {
    /// The alignment boundary in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Align::Char => 1,
            Align::Short => 2,
            Align::Int => 4,
            Align::Double => 8,
        }
    }

    /// Round `offset` up to this alignment boundary.
    #[inline]
    pub fn align_up(self, offset: usize) -> usize {
        let a = self.bytes();
        offset.div_ceil(a) * a
    }

    /// Padding bytes required to align `offset`.
    #[inline]
    pub fn padding(self, offset: usize) -> usize {
        self.align_up(offset) - offset
    }
}

/// SQL data types supported by the substrate, with PostgreSQL 8.3 layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 1-byte boolean.
    Bool,
    /// 2-byte integer (`smallint`).
    Int2,
    /// 4-byte integer (`integer`).
    Int4,
    /// 8-byte integer (`bigint`).
    Int8,
    /// 4-byte IEEE float (`real`).
    Float4,
    /// 8-byte IEEE float (`double precision`).
    Float8,
    /// Variable-length text; average width is tracked per column.
    Text,
    /// Bounded varchar; `n` is the declared maximum number of characters.
    VarChar(u32),
    /// 4-byte calendar date.
    Date,
    /// 8-byte timestamp.
    Timestamp,
}

impl SqlType {
    /// On-disk size in bytes for fixed-length types; `None` for varlena.
    #[inline]
    pub fn fixed_size(self) -> Option<usize> {
        match self {
            SqlType::Bool => Some(1),
            SqlType::Int2 => Some(2),
            SqlType::Int4 | SqlType::Float4 | SqlType::Date => Some(4),
            SqlType::Int8 | SqlType::Float8 | SqlType::Timestamp => Some(8),
            SqlType::Text | SqlType::VarChar(_) => None,
        }
    }

    /// Alignment category (PostgreSQL `typalign`).
    #[inline]
    pub fn align(self) -> Align {
        match self {
            SqlType::Bool => Align::Char,
            SqlType::Int2 => Align::Short,
            SqlType::Int4 | SqlType::Float4 | SqlType::Date => Align::Int,
            SqlType::Int8 | SqlType::Float8 | SqlType::Timestamp => Align::Double,
            // varlena values are int-aligned in 8.3 heap tuples
            SqlType::Text | SqlType::VarChar(_) => Align::Int,
        }
    }

    /// Whether the type stores numeric values (used by histogram builders).
    #[inline]
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            SqlType::Int2
                | SqlType::Int4
                | SqlType::Int8
                | SqlType::Float4
                | SqlType::Float8
                | SqlType::Date
                | SqlType::Timestamp
        )
    }

    /// Average stored size given the column's average logical width.
    ///
    /// For fixed types this ignores `avg_width`; for varlena types it adds
    /// the 4-byte length header PostgreSQL 8.3 uses for values > 126 bytes
    /// (we conservatively use the 1-byte short header for short strings).
    pub fn avg_stored_size(self, avg_width: f64) -> f64 {
        match self.fixed_size() {
            Some(n) => n as f64,
            None => {
                let header = if avg_width <= 126.0 { 1.0 } else { 4.0 };
                header + avg_width
            }
        }
    }

    /// Human-readable SQL name.
    pub fn sql_name(self) -> String {
        match self {
            SqlType::Bool => "boolean".into(),
            SqlType::Int2 => "smallint".into(),
            SqlType::Int4 => "integer".into(),
            SqlType::Int8 => "bigint".into(),
            SqlType::Float4 => "real".into(),
            SqlType::Float8 => "double precision".into(),
            SqlType::Text => "text".into(),
            SqlType::VarChar(n) => format!("varchar({n})"),
            SqlType::Date => "date".into(),
            SqlType::Timestamp => "timestamp".into(),
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sql_name())
    }
}

/// A runtime value ("datum" in PostgreSQL parlance).
///
/// Integers and floats are widened to 64 bits at runtime; the declared
/// [`SqlType`] still governs on-disk layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Datum {
    /// True iff this is the SQL NULL value.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view used by selectivity interpolation; `None` for
    /// non-numeric or NULL values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            Datum::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats are not coerced.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view for text datums.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison with NULL ordered last (PostgreSQL `NULLS LAST`).
    ///
    /// Cross-type numeric comparisons (int vs float) are supported because
    /// the executor widens literals; comparing text with numbers orders
    /// numbers first deterministically.
    pub fn sql_cmp(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            // Deterministic but arbitrary cross-type order.
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(_), Str(_)) | (Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) | (Str(_), Float(_)) => Ordering::Greater,
        }
    }

    /// SQL equality: NULL never equals anything (three-valued logic is
    /// handled by the expression evaluator; this returns false for NULLs).
    pub fn sql_eq(&self, other: &Datum) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.sql_cmp(other) == Ordering::Equal
    }

    /// Size in bytes this value occupies on disk when stored as `ty`.
    pub fn stored_size(&self, ty: SqlType) -> usize {
        match ty.fixed_size() {
            Some(n) => n,
            None => {
                let len = match self {
                    Datum::Str(s) => s.len(),
                    Datum::Null => 0,
                    _ => 8,
                };
                let header = if len <= 126 { 1 } else { 4 };
                header + len
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_rounds_to_boundary() {
        assert_eq!(Align::Double.align_up(1), 8);
        assert_eq!(Align::Double.align_up(8), 8);
        assert_eq!(Align::Int.align_up(5), 8);
        assert_eq!(Align::Int.align_up(4), 4);
        assert_eq!(Align::Short.align_up(3), 4);
        assert_eq!(Align::Char.align_up(3), 3);
    }

    #[test]
    fn padding_is_difference() {
        for off in 0..64 {
            for a in [Align::Char, Align::Short, Align::Int, Align::Double] {
                assert_eq!(a.padding(off), a.align_up(off) - off);
                assert!(a.padding(off) < a.bytes());
            }
        }
    }

    #[test]
    fn fixed_sizes_match_postgres() {
        assert_eq!(SqlType::Bool.fixed_size(), Some(1));
        assert_eq!(SqlType::Int2.fixed_size(), Some(2));
        assert_eq!(SqlType::Int4.fixed_size(), Some(4));
        assert_eq!(SqlType::Int8.fixed_size(), Some(8));
        assert_eq!(SqlType::Float4.fixed_size(), Some(4));
        assert_eq!(SqlType::Float8.fixed_size(), Some(8));
        assert_eq!(SqlType::Text.fixed_size(), None);
    }

    #[test]
    fn alignment_matches_postgres() {
        assert_eq!(SqlType::Int8.align(), Align::Double);
        assert_eq!(SqlType::Timestamp.align(), Align::Double);
        assert_eq!(SqlType::Int4.align(), Align::Int);
        assert_eq!(SqlType::Int2.align(), Align::Short);
        assert_eq!(SqlType::Bool.align(), Align::Char);
    }

    #[test]
    fn varlena_avg_size_includes_header() {
        assert_eq!(SqlType::Text.avg_stored_size(10.0), 11.0);
        assert_eq!(SqlType::Text.avg_stored_size(200.0), 204.0);
        assert_eq!(SqlType::Int4.avg_stored_size(99.0), 4.0);
    }

    #[test]
    fn datum_cmp_nulls_last() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), Ordering::Greater);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), Ordering::Less);
        assert_eq!(Datum::Null.sql_cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn datum_cross_numeric_cmp() {
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Float(2.5)), Ordering::Less);
        assert_eq!(Datum::Float(3.0).sql_cmp(&Datum::Int(3)), Ordering::Equal);
    }

    #[test]
    fn sql_eq_is_false_for_null() {
        assert!(!Datum::Null.sql_eq(&Datum::Null));
        assert!(Datum::Int(5).sql_eq(&Datum::Int(5)));
        assert!(!Datum::Int(5).sql_eq(&Datum::Int(6)));
    }

    #[test]
    fn stored_size_of_strings() {
        let d = Datum::Str("hello".into());
        assert_eq!(d.stored_size(SqlType::Text), 6);
        let long = Datum::Str("x".repeat(200));
        assert_eq!(long.stored_size(SqlType::Text), 204);
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Datum::Str("o'neil".into()).to_string(), "'o''neil'");
        assert_eq!(Datum::Int(42).to_string(), "42");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }
}
