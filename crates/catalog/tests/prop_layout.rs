//! Property tests for the layout arithmetic behind Equation 1.

use parinda_catalog::layout::{
    avg_columns_size, avg_heap_tuple_size, heap_pages, index_leaf_pages,
};
use parinda_catalog::{analyze_column, Column, Datum, SqlType};
use proptest::prelude::*;

fn type_strategy() -> impl Strategy<Value = SqlType> {
    prop_oneof![
        Just(SqlType::Bool),
        Just(SqlType::Int2),
        Just(SqlType::Int4),
        Just(SqlType::Int8),
        Just(SqlType::Float4),
        Just(SqlType::Float8),
        Just(SqlType::Date),
        Just(SqlType::Timestamp),
    ]
}

fn columns_strategy() -> impl Strategy<Value = Vec<Column>> {
    prop::collection::vec(type_strategy(), 1..20).prop_map(|tys| {
        tys.into_iter()
            .enumerate()
            .map(|(i, ty)| Column::new(format!("c{i}"), ty).not_null())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pages_monotone_in_rows(cols in columns_strategy(), rows in 0u64..5_000_000) {
        prop_assert!(heap_pages(rows, &cols) <= heap_pages(rows + 100_000, &cols));
        prop_assert!(index_leaf_pages(rows, &cols) <= index_leaf_pages(rows + 100_000, &cols));
    }

    #[test]
    fn pages_monotone_in_width(cols in columns_strategy(), rows in 1u64..1_000_000) {
        let mut wider = cols.clone();
        wider.push(Column::new("extra", SqlType::Float8).not_null());
        prop_assert!(heap_pages(rows, &cols) <= heap_pages(rows, &wider));
        prop_assert!(index_leaf_pages(rows, &cols) <= index_leaf_pages(rows, &wider));
    }

    #[test]
    fn tuple_size_at_least_sum_of_column_sizes(cols in columns_strategy()) {
        let data: f64 = cols.iter().map(|c| c.avg_stored_size()).sum();
        prop_assert!(avg_columns_size(&cols) >= data);
        prop_assert!(avg_heap_tuple_size(&cols) >= data + 23.0);
    }

    #[test]
    fn alignment_padding_is_bounded(cols in columns_strategy()) {
        // total padding can never exceed 7 bytes per column
        let data: f64 = cols.iter().map(|c| c.avg_stored_size()).sum();
        prop_assert!(avg_columns_size(&cols) <= data + 7.0 * cols.len() as f64);
    }

    #[test]
    fn pages_are_positive(cols in columns_strategy(), rows in 0u64..10_000_000) {
        prop_assert!(heap_pages(rows, &cols) >= 1);
        prop_assert!(index_leaf_pages(rows, &cols) >= 1);
    }

    #[test]
    fn analyze_selectivity_fields_in_range(values in prop::collection::vec(-1000i64..1000, 0..500)) {
        let data: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        let s = analyze_column(SqlType::Int8, &data);
        prop_assert!((0.0..=1.0).contains(&s.null_frac));
        prop_assert!((-1.0..=1.0).contains(&s.correlation));
        prop_assert!(s.mcv_total_freq() <= 1.0 + 1e-9);
        // histogram is sorted
        for w in s.histogram.windows(2) {
            prop_assert!(w[0].sql_cmp(&w[1]) != std::cmp::Ordering::Greater);
        }
        // distinct count never exceeds the row count
        if !values.is_empty() {
            prop_assert!(s.distinct_count(values.len() as f64) <= values.len() as f64 + 1e-9);
        }
    }
}
