//! Session-API behaviours beyond the three scenarios: DDL loading, index
//! drop simulation, weighted suggestions, error paths.

use parinda::{Design, IlpOptions, Parinda, SelectionMethod};
use parinda_catalog::MetadataProvider;

const DDL: &str = "
CREATE TABLE obs (
    id BIGINT NOT NULL,
    ra DOUBLE PRECISION NOT NULL,
    mag REAL NOT NULL,
    kind SMALLINT NOT NULL,
    note TEXT,
    PRIMARY KEY (id)
) ROWS 400000;

CREATE TABLE runs (
    runid BIGINT NOT NULL,
    quality INT NOT NULL,
    PRIMARY KEY (runid)
) ROWS 3000;

CREATE INDEX i_obs_id ON obs (id);
";

#[test]
fn ddl_builds_a_working_session() {
    let session = Parinda::from_ddl(DDL).unwrap();
    assert_eq!(session.catalog().all_tables().len(), 2);
    let obs = session.catalog().table_by_name("obs").unwrap();
    assert_eq!(obs.row_count, 400_000);
    assert_eq!(obs.primary_key, vec![0]);
    assert_eq!(obs.columns.len(), 5);
    assert!(session.catalog().index_by_name("i_obs_id").is_some());

    // the schema is immediately plannable (default statistics)
    let plan = session.explain_sql("SELECT ra FROM obs WHERE id = 5").unwrap();
    assert!(plan.contains("i_obs_id"), "PK index should serve a point lookup:\n{plan}");
}

#[test]
fn ddl_errors_are_reported() {
    assert!(Parinda::from_ddl("CREATE TABLE t (a JSONB)").is_err());
    assert!(Parinda::from_ddl("CREATE INDEX i ON missing (x)").is_err());
    assert!(Parinda::from_ddl("CREATE TABLE t (a INT, PRIMARY KEY (nope))").is_err());
    let mut s = Parinda::from_ddl("CREATE TABLE t (a INT)").unwrap();
    assert!(s.execute_ddl("CREATE TABLE t (b INT)").is_err(), "duplicate table");
}

#[test]
fn drop_simulation_through_evaluate_design() {
    let mut session = Parinda::from_ddl(DDL).unwrap();
    // give obs.id realistic unique stats so the index matters
    let obs = session.catalog().table_by_name("obs").unwrap().id;
    let ids: Vec<parinda_catalog::Datum> =
        (0..50_000).map(parinda_catalog::Datum::Int).collect();
    let stats = parinda_catalog::analyze_column(parinda_catalog::SqlType::Int8, &ids);
    session.catalog_mut().set_column_stats(obs, 0, stats);

    let wl = vec![parinda::parse_select("SELECT ra FROM obs WHERE id = 42").unwrap()];
    let keep = session.evaluate_design(&wl, &Design::new()).unwrap().0;
    let drop = session
        .evaluate_design(&wl, &Design::new().with_drop("i_obs_id"))
        .unwrap()
        .0;
    assert!(
        drop.per_query[0].cost_after > keep.per_query[0].cost_after * 10.0,
        "dropping the PK index should hurt the point lookup: {} vs {}",
        drop.per_query[0].cost_after,
        keep.per_query[0].cost_after
    );
    // with_drop on a missing index surfaces an error
    assert!(session
        .evaluate_design(&wl, &Design::new().with_drop("ghost"))
        .is_err());
}

#[test]
fn weighted_suggestion_through_session() {
    use parinda_workload::{sdss_catalog, synthesize_stats, SdssScale};
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    let session = Parinda::new(cat);
    let wl = vec![
        parinda::parse_select("SELECT ra FROM photoobj WHERE objid = 42").unwrap(),
        parinda::parse_select(
            "SELECT objid FROM photoobj WHERE modelmag_r BETWEEN 17.0 AND 17.2",
        )
        .unwrap(),
    ];
    // budget fits one photoobj index; flip the weights, the winner flips
    let budget = 360 * 1024 * 1024;
    let s1 = session
        .suggest_indexes_with(
            &wl,
            budget,
            SelectionMethod::Ilp,
            &IlpOptions { weights: Some(vec![1000.0, 1.0]), ..Default::default() },
        )
        .unwrap();
    let s2 = session
        .suggest_indexes_with(
            &wl,
            budget,
            SelectionMethod::Ilp,
            &IlpOptions { weights: Some(vec![1.0, 1000.0]), ..Default::default() },
        )
        .unwrap();
    assert_eq!(s1.indexes.len(), 1, "{:?}", s1.indexes);
    assert_eq!(s2.indexes.len(), 1, "{:?}", s2.indexes);
    assert_ne!(s1.indexes[0].columns, s2.indexes[0].columns);
    assert_eq!(s1.indexes[0].columns, vec!["objid"]);
}

#[test]
fn explain_analyze_on_materialized_data() {
    use parinda_executor::explain_analyze;
    use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
    use parinda_workload::{generate_and_load, sdss_catalog, SdssScale};
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(1_000));
    let mut db = parinda::Database::new();
    generate_and_load(&mut cat, &mut db, &tables, 9);
    let sel = parinda::parse_select("SELECT type, COUNT(*) FROM photoobj GROUP BY type").unwrap();
    let q = bind(&sel, &cat).unwrap();
    let plan = plan_query(&q, &cat, &CostParams::default(), &PlannerFlags::default()).unwrap();
    let text = explain_analyze(&plan, &q, &cat, &db).unwrap();
    assert!(text.contains("actual rows="), "{text}");
    assert!(text.contains("Total runtime"), "{text}");
}

#[test]
fn suggest_drops_flags_unused_indexes_only() {
    let mut session = Parinda::from_ddl(
        "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION NOT NULL,
                           mag REAL NOT NULL, PRIMARY KEY (id)) ROWS 400000;
         CREATE INDEX i_used ON obs (id);
         CREATE INDEX i_unused ON obs (mag);",
    )
    .unwrap();
    // realistic unique stats on id so i_used actually serves the lookup
    let obs = session.catalog().table_by_name("obs").unwrap().id;
    let ids: Vec<parinda_catalog::Datum> = (0..50_000).map(parinda_catalog::Datum::Int).collect();
    session
        .catalog_mut()
        .set_column_stats(obs, 0, parinda_catalog::analyze_column(parinda_catalog::SqlType::Int8, &ids));

    let wl = vec![parinda::parse_select("SELECT ra FROM obs WHERE id = 7").unwrap()];
    let drops = session.suggest_drops(&wl).unwrap();
    let names: Vec<&str> = drops.iter().map(|d| d.index.as_str()).collect();
    assert!(names.contains(&"i_unused"), "{names:?}");
    assert!(!names.contains(&"i_used"), "{names:?}");
    let unused = drops.iter().find(|d| d.index == "i_unused").unwrap();
    assert!(unused.reclaimed_bytes > 0);
    assert!(unused.cost_delta.abs() < 1e-6);
}
