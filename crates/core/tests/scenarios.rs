//! The paper's three demonstration scenarios (§4), end-to-end over the
//! synthetic SDSS instance.

use parinda::{
    verify_whatif_index, AutoPartConfig, Design, Parinda, SelectionMethod, WhatIfIndex,
    WhatIfPartition,
};
use parinda_workload::{
    generate_and_load, sdss_catalog, sdss_workload, synthesize_stats, SdssScale,
};

/// Paper-scale session (statistics only).
fn paper_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

/// Laptop-scale session with materialized data.
fn laptop_session(rows: u64, seed: u64) -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(rows));
    let mut db = parinda::Database::new();
    generate_and_load(&mut cat, &mut db, &tables, seed);
    Parinda::with_database(cat, db)
}

// ---------- scenario 1: interactive ----------

#[test]
fn interactive_whatif_index_benefit() {
    let session = paper_session();
    let workload = sdss_workload();
    let design = Design::new()
        .with_index(WhatIfIndex::new("w_objid", "photoobj", &["objid"]))
        .with_index(WhatIfIndex::new("w_bestobjid", "specobj", &["bestobjid"]))
        .with_index(WhatIfIndex::new("w_modelmag_r", "photoobj", &["modelmag_r"]));
    let (report, _) = session.evaluate_design(&workload, &design).unwrap();

    assert!(report.design_bytes > 0);
    assert!(report.speedup() > 1.2, "speedup {}", report.speedup());
    // the point lookup (query 10) must benefit hugely from w_objid
    let point = &report.per_query[9];
    assert!(point.speedup() > 10.0, "point lookup speedup {}", point.speedup());
    assert!(
        point.features_used.iter().any(|f| f == "w_objid"),
        "{:?}",
        point.features_used
    );
    // queries untouched by the design must be unchanged
    for q in &report.per_query {
        assert!(q.cost_after <= q.cost_before * 1.0001, "{}", q.sql);
    }
}

#[test]
fn interactive_whatif_partition_benefit() {
    let session = paper_session();
    let workload = sdss_workload();
    let design = Design::new().with_partition(WhatIfPartition::new(
        "photoobj_astro",
        "photoobj",
        &["ra", "dec", "type", "modelmag_r", "modelmag_g"],
    ));
    let (report, rewritten) = session.evaluate_design(&workload, &design).unwrap();
    // the cone search (query 1) reads only astro columns: big win
    let cone = &report.per_query[0];
    assert!(cone.speedup() > 3.0, "cone speedup {}", cone.speedup());
    assert!(
        cone.features_used.iter().any(|f| f.contains("photoobj_astro")),
        "{:?}",
        cone.features_used
    );
    // its rewritten form references the fragment
    assert!(rewritten[0].to_string().contains("photoobj_astro"), "{}", rewritten[0]);
}

#[test]
fn empty_design_is_neutral() {
    let session = paper_session();
    let workload = sdss_workload();
    let (report, rewritten) = session.evaluate_design(&workload, &Design::new()).unwrap();
    assert_eq!(report.design_bytes, 0);
    for (q, rw) in report.per_query.iter().zip(&rewritten) {
        assert!((q.cost_before - q.cost_after).abs() < 1e-9, "{}", q.sql);
        assert_eq!(rw.to_string(), q.sql);
    }
}

// ---------- scenario 2: automatic partitions ----------

#[test]
fn automatic_partition_suggestion() {
    let session = paper_session();
    let workload = sdss_workload();
    let sugg = session
        .suggest_partitions(&workload, AutoPartConfig::default())
        .unwrap();
    assert!(!sugg.partitions.is_empty(), "SDSS workload should warrant partitioning");
    assert!(
        sugg.report.speedup() > 2.0,
        "partitioning speedup {} on a 100+-column table",
        sugg.report.speedup()
    );
    // rewritten workload parses and is parallel to the input
    assert_eq!(sugg.rewritten.len(), workload.len());
    for rw in &sugg.rewritten {
        parinda::parse_select(&rw.to_string()).unwrap();
    }
    // per-query never worse
    for q in &sugg.report.per_query {
        assert!(q.cost_after <= q.cost_before * 1.0001, "{}", q.sql);
    }
}

// ---------- scenario 3: automatic indexes ----------

#[test]
fn automatic_index_suggestion_ilp() {
    let session = paper_session();
    let workload = sdss_workload();
    let budget = 6 * 1024 * 1024 * 1024u64; // 6 GB on a ~30 GB database
    let sugg = session
        .suggest_indexes(&workload, budget, SelectionMethod::Ilp)
        .unwrap();
    assert!(!sugg.indexes.is_empty());
    let total: u64 = sugg.indexes.iter().map(|i| i.size_bytes).sum();
    assert!(total <= budget);
    // Indexes alone give ~1.5-2x on this mix: a third of the 30 queries
    // are unselective scans/aggregates no index can help. The paper's
    // 2x-10x headline (reproduced by bench E1) combines partitions and
    // indexes; partitions are what rescue the wide-scan queries.
    assert!(
        sugg.report.speedup() >= 1.4,
        "index speedup {:.2}x",
        sugg.report.speedup()
    );
    // benefiting queries list the indexes they use
    let attributed = sugg
        .report
        .per_query
        .iter()
        .filter(|q| q.speedup() > 1.5)
        .all(|q| !q.features_used.is_empty());
    assert!(attributed);
}

#[test]
fn ilp_beats_or_matches_greedy_on_sdss() {
    let session = paper_session();
    let workload = sdss_workload();
    let budget = 2 * 1024 * 1024 * 1024u64;
    let ilp = session.suggest_indexes(&workload, budget, SelectionMethod::Ilp).unwrap();
    let greedy = session
        .suggest_indexes(&workload, budget, SelectionMethod::Greedy)
        .unwrap();
    assert!(
        ilp.report.total_after() <= greedy.report.total_after() * 1.02,
        "ilp {} vs greedy {}",
        ilp.report.total_after(),
        greedy.report.total_after()
    );
}

#[test]
fn materialize_suggestion_and_execute() {
    let mut session = laptop_session(3_000, 11);
    let workload = sdss_workload();
    let sugg = session
        .suggest_indexes(&workload, 1024 * 1024 * 1024, SelectionMethod::Ilp)
        .unwrap();
    assert!(!sugg.indexes.is_empty());
    let ids = session.materialize_indexes(&sugg).unwrap();
    assert_eq!(ids.len(), sugg.indexes.len());
    // materialized indexes exist in catalog + storage and queries still run
    for id in &ids {
        assert!(session.catalog().index(*id).is_some());
        assert!(session.database().btree(*id).is_some());
    }
    let sel = &workload[9]; // point lookup
    let q = parinda_optimizer::bind(sel, session.catalog()).unwrap();
    let p = parinda_optimizer::plan_query(
        &q,
        session.catalog(),
        &parinda_optimizer::CostParams::default(),
        &parinda_optimizer::PlannerFlags::default(),
    )
    .unwrap();
    let rows = parinda_executor::execute(&p, session.catalog(), session.database()).unwrap();
    assert!(rows.len() <= 1);
}

// ---------- verification ----------

#[test]
fn whatif_verification_close_to_reality() {
    let mut session = laptop_session(5_000, 5);
    let query = parinda::parse_select(
        "SELECT ra, dec FROM photoobj WHERE objid = 1234",
    )
    .unwrap();
    let def = WhatIfIndex::new("w_objid", "photoobj", &["objid"]);
    let v = verify_whatif_index(&mut session, &query, &def).unwrap();
    assert!(v.same_access_path, "simulation and reality must agree on the plan");
    assert!(v.cost_error() < 0.25, "cost error {}", v.cost_error());
    assert!(v.size_error() < 0.25, "size error {}", v.size_error());
    // verification cleans up after itself
    assert!(session.catalog().index_by_name("verify_w_objid").is_none());
}

#[test]
fn verification_needs_data() {
    let mut session = paper_session();
    let query = parinda::parse_select("SELECT ra FROM photoobj WHERE objid = 1").unwrap();
    let def = WhatIfIndex::new("w", "photoobj", &["objid"]);
    assert!(matches!(
        verify_whatif_index(&mut session, &query, &def),
        Err(parinda::ParindaError::NoData)
    ));
}

// ---------- misc API ----------

#[test]
fn explain_works_through_session() {
    let session = paper_session();
    let text = session
        .explain_sql("SELECT objid FROM photoobj WHERE ra BETWEEN 1.0 AND 2.0")
        .unwrap();
    assert!(text.contains("Seq Scan"), "{text}");
    assert!(session.explain_sql("SELECT nope FROM photoobj").is_err());
}

#[test]
fn reports_render() {
    let session = paper_session();
    let workload = sdss_workload();
    let design = Design::new().with_index(WhatIfIndex::new("w", "photoobj", &["objid"]));
    let (report, _) = session.evaluate_design(&workload, &design).unwrap();
    let text = report.render();
    assert!(text.contains("average benefit"));
    assert!(text.lines().count() > 30);
}
