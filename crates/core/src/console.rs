//! The interactive console — command parsing and dispatch for the
//! terminal rendition of the demo GUI (paper Figures 2–3), shared by the
//! `parinda-cli` binary and the no-panic fuzz harness.
//!
//! The console is the tool's crash boundary: [`Console::run_line`] never
//! panics and never aborts the process. Malformed input surfaces as a
//! typed [`ParindaError`], and every dispatch runs under the
//! [`guard`](crate::session::guard) `catch_unwind` backstop, so even an
//! internal invariant breach is reported as
//! [`ParindaError::Internal`] while the session stays alive.

use parinda_catalog::MetadataProvider;
use parinda_whatif::{Design, WhatIfIndex, WhatIfPartition};
use parinda_workload::{
    generate_and_load, parse_workload, sdss_catalog, sdss_workload, synthesize_stats, SdssScale,
};

use crate::session::{guard, IndexSuggestion, Parinda, ParindaError, SelectionMethod};
use parinda_advisor::IlpOptions;
use parinda_parallel::{CancelToken, Parallelism};
use parinda_stream::{ConstraintStore, StreamAccumulator, WEIGHT_SCALE};
use parinda_trace::{Counter, Trace};

/// Largest `load laptop` row count the console accepts: beyond this the
/// generated PhotoObj data stops fitting in laptop-class memory.
pub const MAX_LAPTOP_ROWS: u64 = 10_000_000;

/// Drift (parts-per-million total variation between consecutive epoch
/// distributions) at or above which `advise auto on` re-runs the index
/// advisor after `epoch`. 100_000 ppm = 10% of the template mass moved.
pub const DRIFT_THRESHOLD_PPM: u64 = 100_000;

/// Default storage budget (MB) for streaming advice; changed with
/// `advise budget <mb>`.
pub const DEFAULT_STREAM_BUDGET_MB: u64 = 512;

/// One parsed console command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    LoadPaper,
    LoadLaptop(u64),
    LoadDdl(String),
    WorkloadSdss,
    WorkloadFile(String),
    /// `workload stats` — template clustering summary of the loaded
    /// workload (templates, statements, total weight, compression ratio).
    WorkloadStats,
    ShowTables,
    ShowIndexes,
    Describe(String),
    ShowWorkload,
    ShowDesign,
    Explain(String),
    Analyze(String),
    WhatIfIndex { name: String, table: String, columns: Vec<String> },
    WhatIfPartition { name: String, table: String, columns: Vec<String> },
    WhatIfDrop(String),
    ClearDesign,
    Eval,
    SuggestIndexes { budget_mb: u64, method: SelectionMethod },
    SuggestPartitions { replication_mb: Option<u64> },
    SuggestDrops,
    /// `threads <n|auto>` — `None` = auto-detect, `Some(n)` = fixed count.
    Threads(Option<usize>),
    ShowThreads,
    /// `budget <ms>` / `budget rounds <n>` / `budget off` — advisor
    /// budget; both `None` clears it.
    SetBudget { ms: Option<u64>, rounds: Option<usize> },
    ShowBudget,
    /// Request cooperative cancellation of the next advisor run.
    Cancel,
    /// `profile on` — start recording phase timings and counters.
    ProfileOn,
    /// `profile off` — stop recording and discard what was recorded.
    ProfileOff,
    /// `profile show` — render the recorded per-phase profile.
    ProfileShow,
    /// `feed <sql>` — stream one statement into the open epoch.
    Feed(String),
    /// `epoch` — close the epoch: decay, merge, evict, score drift (and
    /// re-advise when `advise auto on` and the drift threshold is hit).
    Epoch,
    /// `advise auto on|off` — toggle drift-triggered re-advising.
    AdviseAuto(bool),
    /// `advise budget <mb>` — storage budget for streaming advice.
    AdviseBudget(u64),
    /// `pin <index>` (alias `accept`) — force an index into every
    /// advised design; charged against the storage budget first.
    Pin(String),
    /// `ban <index>` (alias `reject`) — exclude an index from every
    /// advised design's search space.
    Ban(String),
    /// `unpin <index>` — lift a pin.
    Unpin(String),
    /// `unban <index>` — lift a ban.
    Unban(String),
    /// `drift` — last epoch-over-epoch drift vs. the re-advise threshold.
    Drift,
    Help,
    Quit,
    Empty,
}

fn usage(msg: &str) -> ParindaError {
    ParindaError::Parse(msg.to_string())
}

/// Whether replaying this command is required to reconstruct a
/// session's state. This is the daemon's journaling predicate: commands
/// for which this returns `true` are written (and fsynced) to the
/// metadata WAL *before* they are applied, so a crash-recovered session
/// replays to the identical overlay.
///
/// The streaming verbs (`feed`, `epoch`, `advise auto`, `advise
/// budget`, `pin`/`ban` and their inverses) are all journaled: the
/// accumulator's epoch counters, decayed weights, and the constraint
/// store are reconstructed exactly by replaying them in feed order.
///
/// Read-only commands (`show …`, `explain`, `eval`, the `suggest`
/// advisors, `drift`) leave no state behind and are not journaled. `cancel` is
/// deliberately excluded: it arms a one-shot token consumed by the next
/// advisor run, and replaying it would spuriously cancel the first
/// post-recovery run.
pub fn is_state_mutating(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::LoadPaper
            | Command::LoadLaptop(_)
            | Command::LoadDdl(_)
            | Command::WorkloadSdss
            | Command::WorkloadFile(_)
            | Command::WhatIfIndex { .. }
            | Command::WhatIfPartition { .. }
            | Command::WhatIfDrop(_)
            | Command::ClearDesign
            | Command::Threads(_)
            | Command::SetBudget { .. }
            | Command::ProfileOn
            | Command::ProfileOff
            | Command::Feed(_)
            | Command::Epoch
            | Command::AdviseAuto(_)
            | Command::AdviseBudget(_)
            | Command::Pin(_)
            | Command::Ban(_)
            | Command::Unpin(_)
            | Command::Unban(_)
    )
}

/// Parse one console line. Argument errors are reported as
/// [`ParindaError::Parse`]; nothing here panics on any input.
pub fn parse_command(line: &str) -> Result<Command, ParindaError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(Command::Empty);
    }
    let words: Vec<&str> = trimmed.split_whitespace().collect();
    let lower: Vec<String> = words.iter().map(|w| w.to_ascii_lowercase()).collect();
    match lower[0].as_str() {
        "quit" | "exit" | "q" => Ok(Command::Quit),
        "help" | "?" => Ok(Command::Help),
        "load" => match lower.get(1).map(|s| s.as_str()) {
            Some("paper") => Ok(Command::LoadPaper),
            Some("laptop") => match lower.get(2) {
                None => Ok(Command::LoadLaptop(20_000)),
                Some(arg) => match arg.parse::<u64>() {
                    Ok(rows) if rows <= MAX_LAPTOP_ROWS => Ok(Command::LoadLaptop(rows)),
                    Ok(rows) => Err(usage(&format!(
                        "row count {rows} exceeds the laptop-scale maximum of {MAX_LAPTOP_ROWS}"
                    ))),
                    Err(_) => Err(usage(&format!(
                        "invalid row count `{arg}` (usage: load laptop [rows])"
                    ))),
                },
            },
            Some("ddl") => words
                .get(2)
                .map(|p| Command::LoadDdl(p.to_string()))
                .ok_or_else(|| usage("usage: load ddl <path>")),
            _ => Err(usage("usage: load paper | load laptop [rows] | load ddl <path>")),
        },
        "workload" => match lower.get(1).map(|s| s.as_str()) {
            Some("sdss") => Ok(Command::WorkloadSdss),
            Some("file") => words
                .get(2)
                .map(|p| Command::WorkloadFile(p.to_string()))
                .ok_or_else(|| usage("usage: workload file <path>")),
            Some("stats") => Ok(Command::WorkloadStats),
            _ => Err(usage("usage: workload sdss | workload file <path> | workload stats")),
        },
        "describe" | "d" => lower
            .get(1)
            .map(|t| Command::Describe(t.clone()))
            .ok_or_else(|| usage("usage: describe <table>")),
        "show" => match lower.get(1).map(|s| s.as_str()) {
            Some("tables") => Ok(Command::ShowTables),
            Some("indexes") => Ok(Command::ShowIndexes),
            Some("workload") => Ok(Command::ShowWorkload),
            Some("design") => Ok(Command::ShowDesign),
            _ => Err(usage("usage: show tables|indexes|workload|design")),
        },
        "explain" => {
            let sql = trimmed[7..].trim();
            if sql.is_empty() {
                Err(usage("usage: explain <sql>"))
            } else {
                Ok(Command::Explain(sql.to_string()))
            }
        }
        "analyze" => {
            let sql = trimmed[7..].trim();
            if sql.is_empty() {
                Err(usage("usage: analyze <sql>"))
            } else {
                Ok(Command::Analyze(sql.to_string()))
            }
        }
        "whatif" => match lower.get(1).map(|s| s.as_str()) {
            Some("index") | Some("partition") => {
                if words.len() < 5 {
                    return Err(usage(&format!(
                        "usage: whatif {} <name> <table> <col[,col...]>",
                        lower[1]
                    )));
                }
                let name = lower[2].clone();
                let table = lower[3].clone();
                let columns: Vec<String> =
                    lower[4].split(',').map(|c| c.trim().to_string()).collect();
                if lower[1] == "index" {
                    Ok(Command::WhatIfIndex { name, table, columns })
                } else {
                    Ok(Command::WhatIfPartition { name, table, columns })
                }
            }
            Some("drop") => lower
                .get(2)
                .map(|i| Command::WhatIfDrop(i.clone()))
                .ok_or_else(|| usage("usage: whatif drop <index>")),
            _ => Err(usage("usage: whatif index|partition|drop …")),
        },
        "clear" => Ok(Command::ClearDesign),
        "eval" => Ok(Command::Eval),
        "threads" => match lower.get(1).map(|s| s.as_str()) {
            None => Ok(Command::ShowThreads),
            Some("auto") => Ok(Command::Threads(None)),
            Some(n) => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(|n| Command::Threads(Some(n)))
                .ok_or_else(|| usage("usage: threads [<n>|auto]")),
        },
        "budget" => match lower.get(1).map(|s| s.as_str()) {
            None => Ok(Command::ShowBudget),
            Some("off") => Ok(Command::SetBudget { ms: None, rounds: None }),
            Some("rounds") => lower
                .get(2)
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .map(|n| Command::SetBudget { ms: None, rounds: Some(n) })
                .ok_or_else(|| usage("usage: budget rounds <n>")),
            Some(ms) => ms
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms > 0)
                .map(|ms| Command::SetBudget { ms: Some(ms), rounds: None })
                .ok_or_else(|| usage("usage: budget <ms> | budget rounds <n> | budget off")),
        },
        "cancel" => Ok(Command::Cancel),
        "feed" => {
            let sql = trimmed[4..].trim();
            if sql.is_empty() {
                Err(usage("usage: feed <sql>"))
            } else {
                Ok(Command::Feed(sql.to_string()))
            }
        }
        "epoch" => Ok(Command::Epoch),
        "drift" => Ok(Command::Drift),
        "advise" => match lower.get(1).map(|s| s.as_str()) {
            Some("auto") => match lower.get(2).map(|s| s.as_str()) {
                Some("on") => Ok(Command::AdviseAuto(true)),
                Some("off") => Ok(Command::AdviseAuto(false)),
                _ => Err(usage("usage: advise auto on|off")),
            },
            Some("budget") => lower
                .get(2)
                .and_then(|n| n.parse::<u64>().ok())
                .filter(|&mb| mb > 0)
                .map(Command::AdviseBudget)
                .ok_or_else(|| usage("usage: advise budget <mb>")),
            _ => Err(usage("usage: advise auto on|off | advise budget <mb>")),
        },
        // Constraint names may be `table(col, col)` specs with spaces, so
        // take the raw remainder of the line, not a whitespace token.
        "pin" | "accept" | "ban" | "reject" | "unpin" | "unban" => {
            let verb = lower[0].as_str();
            let name = trimmed[words[0].len()..].trim();
            if name.is_empty() {
                return Err(usage(&format!("usage: {verb} <index>")));
            }
            let name = name.to_string();
            Ok(match verb {
                "pin" | "accept" => Command::Pin(name),
                "ban" | "reject" => Command::Ban(name),
                "unpin" => Command::Unpin(name),
                _ => Command::Unban(name),
            })
        }
        "profile" => match lower.get(1).map(|s| s.as_str()) {
            Some("on") => Ok(Command::ProfileOn),
            Some("off") => Ok(Command::ProfileOff),
            Some("show") | None => Ok(Command::ProfileShow),
            _ => Err(usage("usage: profile on | profile off | profile show")),
        },
        "suggest" => match lower.get(1).map(|s| s.as_str()) {
            Some("indexes") => {
                let budget_mb = lower
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| usage("usage: suggest indexes <budget-mb> [ilp|greedy]"))?;
                let method = match lower.get(3).map(|s| s.as_str()) {
                    Some("greedy") => SelectionMethod::Greedy,
                    _ => SelectionMethod::Ilp,
                };
                Ok(Command::SuggestIndexes { budget_mb, method })
            }
            Some("partitions") => Ok(Command::SuggestPartitions {
                replication_mb: lower.get(2).and_then(|s| s.parse().ok()),
            }),
            Some("drops") => Ok(Command::SuggestDrops),
            _ => Err(usage(
                "usage: suggest indexes <mb> [ilp|greedy] | suggest partitions [mb] | suggest drops",
            )),
        },
        other => {
            // Escape control bytes so adversarial input cannot inject
            // terminal escape sequences through the error message.
            let shown: String = other.chars().take(40).map(|c| c.escape_debug().to_string()).collect();
            Err(usage(&format!("unknown command `{shown}` (try `help`)")))
        }
    }
}

/// The console help text.
pub const HELP: &str = "\
commands:
  load paper                 SDSS catalog at paper scale (statistics only)
  load laptop [rows]         SDSS with generated, executable data
  load ddl <path>            schema from a CREATE TABLE/INDEX script
  workload sdss              the 30 prototypical SDSS queries
  workload file <path>       statements from a file (';'-separated)
  workload stats             template clustering summary of the workload
  show tables|indexes|workload|design
  describe <table>           columns, statistics, indexes
  explain <sql>              EXPLAIN + per-node cost breakdown (and what-if
                             deltas when a design is staged)
  analyze <sql>              EXPLAIN ANALYZE (needs loaded data)
  whatif index <name> <table> <col[,col...]>
  whatif partition <name> <table> <col[,col...]>
  whatif drop <index>        simulate dropping a real index
  clear                      discard the what-if design
  eval                       evaluate the design over the workload
  suggest indexes <mb> [ilp|greedy]
  suggest partitions [replication-mb]
  suggest drops              real indexes the workload would not miss
  feed <sql>                 stream one statement into the open epoch
  epoch                      close the epoch: decay, merge, evict, score drift
  drift                      last drift score vs. the re-advise threshold
  advise auto on|off         re-advise when an epoch's drift crosses the threshold
  advise budget <mb>         storage budget for streaming advice (default 512)
  pin <index>                force an index into every advised design (alias: accept)
  ban <index>                keep an index out of every advised design (alias: reject)
  unpin|unban <index>        lift a pin / a ban
  threads [<n>|auto]         advisor thread count (also: PARINDA_THREADS)
  budget <ms>                advisor wall-clock budget (anytime best-so-far)
  budget rounds <n>          deterministic round-cap budget
  budget off                 remove the budget (exact, exhaustive runs)
  cancel                     stop the next advisor run at its first checkpoint
  profile on|off             record phase timings and pipeline counters
  profile show               per-phase time table (% of run) and counters
  quit";

/// Outcome of feeding one line to [`Console::run_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConsoleReply {
    /// Command executed; possibly-empty text to print.
    Output(String),
    /// Command failed; the session is untouched and stays usable.
    Error(ParindaError),
    /// The user asked to leave.
    Quit,
}

/// Interactive console state: the loaded session, workload, and the
/// DBA's current what-if design.
pub struct Console {
    session: Option<Parinda>,
    workload: Vec<parinda_sql::Select>,
    /// Per-statement weights parallel to `workload` (workload files may
    /// carry frequencies; `workload sdss` is uniform). Retained so the
    /// compression statistics and weighted advising see them.
    workload_weights: Vec<f64>,
    design: Design,
    /// Thread policy chosen with `threads`; applied to every session,
    /// including ones loaded later.
    par: Parallelism,
    /// Advisor budget chosen with `budget`; applied to every session.
    budget_ms: Option<u64>,
    budget_rounds: Option<usize>,
    /// Cancellation flag shared with every session (and the CLI's
    /// Ctrl-C handler), so it survives `load`.
    cancel: CancelToken,
    /// Observability handle chosen with `profile on|off` (or attached by
    /// the CLI's `--trace-json`); applied to every session, so it
    /// survives `load` like the thread policy and budget.
    trace: Trace,
    /// Streaming workload accumulator fed with `feed`, advanced with
    /// `epoch`. Console-owned and single-writer: the daemon's WAL
    /// serializes the mutating verbs, so no locking happens here.
    stream: StreamAccumulator,
    /// The DBA's standing pin/ban constraints, honored by every advised
    /// design (streaming and `suggest indexes`).
    constraints: ConstraintStore,
    /// `advise auto on|off`: when on, `epoch` re-advises whenever the
    /// epoch's drift reaches [`DRIFT_THRESHOLD_PPM`].
    advise_auto: bool,
    /// Storage budget for streaming advice, MB (`advise budget <mb>`).
    stream_budget_mb: u64,
    /// Templates and weights of the last streaming advise: the baseline
    /// the next advise delta-maintains its INUM model from.
    advised_templates: Option<(Vec<parinda_sql::Select>, Vec<f64>)>,
}

impl Default for Console {
    fn default() -> Self {
        Console::new()
    }
}

impl Console {
    /// An empty console (no database, no workload).
    pub fn new() -> Self {
        Console {
            session: None,
            workload: Vec::new(),
            workload_weights: Vec::new(),
            design: Design::new(),
            par: Parallelism::auto(),
            budget_ms: None,
            budget_rounds: None,
            cancel: CancelToken::new(),
            trace: Trace::disabled(),
            stream: StreamAccumulator::new(),
            constraints: ConstraintStore::new(),
            advise_auto: false,
            stream_budget_mb: DEFAULT_STREAM_BUDGET_MB,
            advised_templates: None,
        }
    }

    /// A console pre-seeded with a session (used by tests and embedders).
    pub fn with_session(session: Parinda) -> Self {
        let mut c = Console::new();
        c.install(session);
        c
    }

    /// A console over a shared engine: the session shares the engine's
    /// catalog, data, and INUM plan cache with every other console on the
    /// same engine, while this console's workload, staged design, thread
    /// policy, budgets, cancellation token, and trace stay private. This
    /// is what the server opens per connection.
    pub fn with_engine(engine: &crate::session::SharedEngine) -> Self {
        Console::with_session(engine.session())
    }

    /// The loaded session, if any.
    pub fn session(&self) -> Option<&Parinda> {
        self.session.as_ref()
    }

    /// The loaded workload.
    pub fn workload(&self) -> &[parinda_sql::Select] {
        &self.workload
    }

    /// The console's cancellation token: the CLI's Ctrl-C handler
    /// cancels this to stop the advisor in flight at its next
    /// checkpoint. It is shared with every installed session.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Replace the console's cancellation token (and the installed
    /// session's). The REPL wires every console to one process-global
    /// token behind its Ctrl-C handler; the server gives each connection
    /// its own token, so cancelling one session never degrades another.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
        if let Some(s) = self.session.as_mut() {
            s.set_cancel_token(self.cancel.clone());
        }
    }

    /// Install a freshly loaded session, carrying over the thread
    /// policy, the advisor budget, and the shared cancellation token.
    fn install(&mut self, mut session: Parinda) {
        session.set_parallelism(self.par);
        session.set_budget_ms(self.budget_ms);
        session.set_budget_rounds(self.budget_rounds);
        session.set_cancel_token(self.cancel.clone());
        session.set_trace(self.trace.clone());
        self.session = Some(session);
    }

    /// The console's observability handle (shared with the session).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attach an observability handle (the CLI's `--trace-json` uses this
    /// to record the whole run); carried into every installed session.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
        if let Some(s) = self.session.as_mut() {
            s.set_trace(self.trace.clone());
        }
    }

    /// Render the current budget setting.
    fn budget_line(&self) -> String {
        match (self.budget_ms, self.budget_rounds) {
            (None, None) => "advisor budget: off (exhaustive runs)".into(),
            (Some(ms), None) => format!("advisor budget: {ms} ms per run"),
            (None, Some(r)) => format!("advisor budget: {r} round(s) per run"),
            (Some(ms), Some(r)) => format!("advisor budget: {ms} ms, {r} round(s) per run"),
        }
    }

    fn require_session(&self) -> Result<&Parinda, ParindaError> {
        self.session
            .as_ref()
            .ok_or_else(|| ParindaError::Catalog("no database loaded (try `load paper`)".into()))
    }

    /// Parse and run one console line. Never panics; never aborts.
    pub fn run_line(&mut self, line: &str) -> ConsoleReply {
        match parse_command(line) {
            Ok(Command::Quit) => ConsoleReply::Quit,
            Ok(cmd) => match self.run_command(cmd) {
                Ok(out) => ConsoleReply::Output(out),
                Err(e) => ConsoleReply::Error(e),
            },
            Err(e) => ConsoleReply::Error(e),
        }
    }

    /// Run one parsed command under the `catch_unwind` backstop: a panic
    /// anywhere below is contained and reported as
    /// [`ParindaError::Internal`] and the console remains usable.
    pub fn run_command(&mut self, cmd: Command) -> Result<String, ParindaError> {
        guard(|| self.dispatch(cmd))
    }

    fn dispatch(&mut self, cmd: Command) -> Result<String, ParindaError> {
        if parinda_failpoint::should_fail("core::dispatch") {
            return Err(ParindaError::Internal("failpoint core::dispatch".into()));
        }
        match cmd {
            Command::Empty => Ok(String::new()),
            Command::Help => Ok(HELP.to_string()),
            Command::Quit => Ok("bye".into()),
            Command::LoadPaper => {
                let (mut cat, tables) = sdss_catalog(SdssScale::paper());
                synthesize_stats(&mut cat, &tables);
                let n = cat.all_tables().len();
                let gb = cat.total_size_bytes() as f64 / (1u64 << 30) as f64;
                self.install(Parinda::new(cat));
                Ok(format!("loaded SDSS paper-scale catalog: {n} tables, {gb:.1} GB simulated"))
            }
            Command::LoadDdl(path) => {
                let text = std::fs::read_to_string(&path)?;
                let session = Parinda::from_ddl(&text)?;
                let n = session.catalog().all_tables().len();
                self.install(session);
                Ok(format!("loaded {n} tables from {path}"))
            }
            Command::LoadLaptop(rows) => {
                let (mut cat, tables) = sdss_catalog(SdssScale::laptop(rows));
                let mut db = parinda_storage::Database::new();
                generate_and_load(&mut cat, &mut db, &tables, 42);
                self.install(Parinda::with_database(cat, db));
                Ok(format!("loaded SDSS laptop-scale instance with {rows} PhotoObj rows"))
            }
            Command::WorkloadSdss => {
                self.workload = sdss_workload();
                self.workload_weights = vec![1.0; self.workload.len()];
                Ok(format!("workload: {} queries", self.workload.len()))
            }
            Command::WorkloadFile(path) => {
                let text = std::fs::read_to_string(&path)?;
                let wl = parse_workload(&text)?;
                self.workload = wl.queries();
                self.workload_weights = wl.weights();
                Ok(format!("workload: {} queries from {path}", self.workload.len()))
            }
            Command::WorkloadStats => {
                if self.workload.is_empty() {
                    return Ok("no workload loaded".into());
                }
                let wl = parinda_workload::Workload {
                    entries: self
                        .workload
                        .iter()
                        .zip(&self.workload_weights)
                        .map(|(q, &w)| parinda_workload::WorkloadEntry {
                            query: q.clone(),
                            weight: w,
                        })
                        .collect(),
                };
                let compressed =
                    parinda_workload::compress_workload_traced(&wl, &self.trace);
                Ok(format!(
                    "workload: {} statements, {} templates ({} merged), total weight {:.0}, compression {:.1}x",
                    compressed.raw_statements,
                    compressed.len(),
                    compressed.merged(),
                    compressed.raw_weight,
                    compressed.compression_ratio(),
                ))
            }
            Command::ShowTables => {
                let s = self.require_session()?;
                Ok(parinda_catalog::describe_catalog(s.catalog()))
            }
            Command::Describe(table) => {
                let s = self.require_session()?;
                let id = s
                    .catalog()
                    .table_by_name(&table)
                    .ok_or_else(|| ParindaError::Catalog(format!("unknown table {table}")))?
                    .id;
                parinda_catalog::describe_table(s.catalog(), id)
                    .ok_or_else(|| ParindaError::Internal("table vanished mid-describe".into()))
            }
            Command::ShowIndexes => {
                let s = self.require_session()?;
                let idx = s.catalog().all_indexes();
                if idx.is_empty() {
                    return Ok("no indexes".into());
                }
                let mut out = String::new();
                for i in idx {
                    let t = s.catalog().table(i.table).map(|t| t.name.clone()).unwrap_or_default();
                    let cols: Vec<String> = i
                        .key_columns
                        .iter()
                        .filter_map(|&c| {
                            s.catalog()
                                .table(i.table)
                                .and_then(|t| t.columns.get(c))
                                .map(|col| col.name.clone())
                        })
                        .collect();
                    out.push_str(&format!(
                        "{:<24} on {:<12} ({})  {} pages\n",
                        i.name,
                        t,
                        cols.join(", "),
                        i.pages
                    ));
                }
                Ok(out)
            }
            Command::ShowWorkload => {
                if self.workload.is_empty() {
                    return Ok("no workload loaded".into());
                }
                Ok(self
                    .workload
                    .iter()
                    .enumerate()
                    .map(|(i, q)| format!("Q{:02}: {q}\n", i + 1))
                    .collect())
            }
            Command::ShowDesign => {
                let mut out = String::new();
                for i in &self.design.indexes {
                    out.push_str(&format!(
                        "index     {} on {} ({})\n",
                        i.name,
                        i.table,
                        i.columns.join(", ")
                    ));
                }
                for p in &self.design.partitions {
                    out.push_str(&format!(
                        "partition {} of {} ({})\n",
                        p.name,
                        p.table,
                        p.columns.join(", ")
                    ));
                }
                for d in &self.design.drop_indexes {
                    out.push_str(&format!("drop      {d}\n"));
                }
                if out.is_empty() {
                    out = "empty design".into();
                }
                Ok(out)
            }
            Command::Threads(spec) => {
                self.par = match spec {
                    Some(n) => Parallelism::fixed(n),
                    None => Parallelism::auto(),
                };
                if let Some(s) = self.session.as_mut() {
                    s.set_parallelism(self.par);
                }
                Ok(format!("advisors will use {} thread(s)", self.par.threads()))
            }
            Command::ShowThreads => Ok(format!("advisors use {} thread(s)", self.par.threads())),
            Command::SetBudget { ms, rounds } => {
                self.budget_ms = ms;
                self.budget_rounds = rounds;
                if let Some(s) = self.session.as_mut() {
                    s.set_budget_ms(ms);
                    s.set_budget_rounds(rounds);
                }
                Ok(self.budget_line())
            }
            Command::ShowBudget => Ok(self.budget_line()),
            Command::Cancel => {
                self.cancel.cancel();
                Ok("cancellation requested: the next advisor checkpoint returns best-so-far"
                    .into())
            }
            Command::ProfileOn => {
                if !self.trace.is_enabled() {
                    self.set_trace(Trace::recording());
                }
                Ok("profiling on (see `profile show`)".into())
            }
            Command::ProfileOff => {
                self.set_trace(Trace::disabled());
                Ok("profiling off; recorded profile discarded".into())
            }
            Command::ProfileShow => {
                if !self.trace.is_enabled() {
                    return Ok("profiling is off (try `profile on`)".into());
                }
                Ok(self.trace.snapshot().render_profile())
            }
            Command::Explain(sql) => {
                self.require_session()?.explain_sql_breakdown(&sql, Some(&self.design))
            }
            Command::Analyze(sql) => {
                let s = self.require_session()?;
                let sel = parinda_sql::parse_select(&sql)?;
                let q = parinda_optimizer::bind(&sel, s.catalog())?;
                let plan = parinda_optimizer::plan_query(
                    &q,
                    s.catalog(),
                    &parinda_optimizer::CostParams::default(),
                    &parinda_optimizer::PlannerFlags::default(),
                )?;
                parinda_executor::explain_analyze(&plan, &q, s.catalog(), s.database())
                    .map_err(|e| ParindaError::Io(format!("{e} (analyze needs `load laptop`)")))
            }
            Command::WhatIfIndex { name, table, columns } => {
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                self.design = std::mem::take(&mut self.design)
                    .with_index(WhatIfIndex::new(&name, &table, &cols));
                // validate eagerly so typos surface now
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.indexes.pop();
                        return Err(e.into());
                    }
                }
                Ok(format!("what-if index {name} added"))
            }
            Command::WhatIfPartition { name, table, columns } => {
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                self.design = std::mem::take(&mut self.design)
                    .with_partition(WhatIfPartition::new(&name, &table, &cols));
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.partitions.pop();
                        return Err(e.into());
                    }
                }
                Ok(format!("what-if partition {name} added"))
            }
            Command::WhatIfDrop(name) => {
                self.design = std::mem::take(&mut self.design).with_drop(&name);
                if let Some(sess) = &self.session {
                    if let Err(e) = self.design.apply(sess.catalog()) {
                        self.design.drop_indexes.pop();
                        return Err(e.into());
                    }
                }
                Ok(format!("simulating DROP INDEX {name}"))
            }
            Command::ClearDesign => {
                self.design = Design::new();
                Ok("design cleared".into())
            }
            Command::Eval => {
                let s = self.require_session()?;
                if self.workload.is_empty() {
                    return Err(ParindaError::Advisor("no workload loaded".into()));
                }
                let (report, rewritten) = s.evaluate_design(&self.workload, &self.design)?;
                let mut out = report.render();
                let changed: Vec<String> = self
                    .workload
                    .iter()
                    .zip(&rewritten)
                    .filter(|(a, b)| a != b)
                    .map(|(_, b)| format!("  {b};"))
                    .collect();
                if !changed.is_empty() {
                    out.push_str("\nrewritten queries:\n");
                    out.push_str(&changed.join("\n"));
                    out.push('\n');
                }
                Ok(out)
            }
            Command::SuggestIndexes { budget_mb, method } => {
                let s = self.require_session()?;
                if self.workload.is_empty() {
                    return Err(ParindaError::Advisor("no workload loaded".into()));
                }
                // With pins/bans standing, route through the constrained
                // solver; the unconstrained path is kept bit-identical.
                let result = if self.constraints.is_empty() {
                    s.suggest_indexes(&self.workload, budget_mb << 20, method)
                } else {
                    let weights = vec![1.0; self.workload.len()];
                    let pinned: Vec<String> =
                        self.constraints.pinned().map(str::to_string).collect();
                    let banned: Vec<String> =
                        self.constraints.banned().map(str::to_string).collect();
                    s.suggest_indexes_stream(
                        &self.workload,
                        &weights,
                        None,
                        budget_mb << 20,
                        method,
                        &IlpOptions::default(),
                        &pinned,
                        &banned,
                    )
                };
                // the cancel flag is consumed by one advisor run
                self.cancel.reset();
                let sugg = result?;
                Ok(render_index_suggestion(&sugg))
            }
            Command::SuggestDrops => {
                let s = self.require_session()?;
                if self.workload.is_empty() {
                    return Err(ParindaError::Advisor("no workload loaded".into()));
                }
                let drops = s.suggest_drops(&self.workload)?;
                if drops.is_empty() {
                    return Ok("every existing index earns its keep".into());
                }
                let mut out = String::new();
                for d in drops {
                    out.push_str(&format!(
                        "DROP INDEX {};  -- on {}, reclaims {:.1} MB, workload cost unchanged\n",
                        d.index,
                        d.table,
                        d.reclaimed_bytes as f64 / (1 << 20) as f64
                    ));
                }
                Ok(out)
            }
            Command::SuggestPartitions { replication_mb } => {
                let s = self.require_session()?;
                if self.workload.is_empty() {
                    return Err(ParindaError::Advisor("no workload loaded".into()));
                }
                let config = parinda_advisor::AutoPartConfig {
                    replication_limit_bytes: replication_mb
                        .map(|mb| (mb << 20) as i64)
                        .unwrap_or(i64::MAX),
                    ..Default::default()
                };
                let result = s.suggest_partitions(&self.workload, config);
                // the cancel flag is consumed by one advisor run
                self.cancel.reset();
                let sugg = result?;
                let mut out = String::new();
                for p in &sugg.partitions {
                    out.push_str(&format!(
                        "PARTITION {} of {} ({})\n",
                        p.name,
                        p.table,
                        p.columns.join(", ")
                    ));
                }
                out.push('\n');
                out.push_str(&sugg.report.render());
                if let Some(b) = &sugg.budget {
                    out.push_str(&format!(
                        "\nDEGRADED: {b}; best-so-far design, rerun with `budget off` for the full search\n"
                    ));
                }
                Ok(out)
            }
            Command::Feed(sql) => {
                self.stream.feed(&sql)?;
                self.trace.count(Counter::StreamStatementsFed, 1);
                Ok(format!(
                    "fed: {} pending statement(s) for epoch {}",
                    self.stream.pending_statements(),
                    self.stream.epoch() + 1
                ))
            }
            Command::Epoch => {
                // clone the handle: the span guard must not hold a borrow
                // of `self` across the `&mut self` auto-advise below
                let trace = self.trace.clone();
                let _span = trace.span("epoch_advance");
                let summary = self.stream.advance_epoch(&trace)?;
                trace.count(Counter::EpochsAdvanced, 1);
                let mut out = format!(
                    "epoch {}: {} template(s) ({} arrived, {} evicted), total weight {:.2}, drift {} ppm",
                    summary.epoch,
                    summary.templates,
                    summary.arrived,
                    summary.evicted,
                    summary.total_weight_fp as f64 / WEIGHT_SCALE as f64,
                    summary.drift_ppm,
                );
                if self.advise_auto && summary.drift_ppm >= DRIFT_THRESHOLD_PPM {
                    trace.count(Counter::DriftEvents, 1);
                    out.push_str(&format!(
                        "\ndrift {} ppm >= {} ppm: re-advising\n",
                        summary.drift_ppm, DRIFT_THRESHOLD_PPM
                    ));
                    out.push_str(&self.advise_stream()?);
                }
                Ok(out)
            }
            Command::Drift => Ok(format!(
                "drift: {} ppm (re-advise threshold {} ppm, auto-advise {})\nepoch {}, {} template(s), {} pending statement(s)",
                self.stream.last_drift_ppm(),
                DRIFT_THRESHOLD_PPM,
                if self.advise_auto { "on" } else { "off" },
                self.stream.epoch(),
                self.stream.templates().len(),
                self.stream.pending_statements(),
            )),
            Command::AdviseAuto(on) => {
                self.advise_auto = on;
                Ok(if on {
                    format!(
                        "auto-advise on: `epoch` re-advises when drift >= {DRIFT_THRESHOLD_PPM} ppm"
                    )
                } else {
                    "auto-advise off".into()
                })
            }
            Command::AdviseBudget(mb) => {
                self.stream_budget_mb = mb;
                Ok(format!("streaming advisor storage budget: {mb} MB"))
            }
            Command::Pin(name) => {
                self.constraints.pin(&name)?;
                Ok(format!("pinned `{}`: forced into every advised design", name.trim()))
            }
            Command::Ban(name) => {
                self.constraints.ban(&name)?;
                Ok(format!("banned `{}`: excluded from every advised design", name.trim()))
            }
            Command::Unpin(name) => Ok(if self.constraints.unpin(&name) {
                format!("unpinned `{}`", name.trim())
            } else {
                format!("`{}` was not pinned", name.trim())
            }),
            Command::Unban(name) => Ok(if self.constraints.unban(&name) {
                format!("unbanned `{}`", name.trim())
            } else {
                format!("`{}` was not banned", name.trim())
            }),
        }
    }

    /// Advise over the stream accumulator's current templates under the
    /// standing constraints, delta-maintaining the INUM model from the
    /// previous advised epoch's templates when there is one.
    fn advise_stream(&mut self) -> Result<String, ParindaError> {
        let s = self
            .session
            .as_ref()
            .ok_or_else(|| ParindaError::Catalog("no database loaded (try `load paper`)".into()))?;
        if self.stream.templates().is_empty() {
            return Err(ParindaError::Advisor(
                "no streamed templates to advise over (feed statements, then `epoch`)".into(),
            ));
        }
        let queries = self.stream.queries();
        let weights = self.stream.weights();
        let pinned: Vec<String> = self.constraints.pinned().map(str::to_string).collect();
        let banned: Vec<String> = self.constraints.banned().map(str::to_string).collect();
        let previous =
            self.advised_templates.as_ref().map(|(q, w)| (q.as_slice(), w.as_slice()));
        let result = s.suggest_indexes_stream(
            &queries,
            &weights,
            previous,
            self.stream_budget_mb << 20,
            SelectionMethod::Ilp,
            &IlpOptions::default(),
            &pinned,
            &banned,
        );
        // the cancel flag is consumed by one advisor run
        self.cancel.reset();
        let sugg = result?;
        self.advised_templates = Some((queries, weights));
        Ok(render_index_suggestion(&sugg))
    }
}

/// Render an index suggestion the way the console prints it: CREATE
/// INDEX lines, the benefit report, and the `DEGRADED:` trailer when a
/// budget interrupted the run.
fn render_index_suggestion(sugg: &IndexSuggestion) -> String {
    let mut out = String::new();
    for i in &sugg.indexes {
        out.push_str(&format!(
            "CREATE INDEX {} ON {} ({});  -- {:.1} MB\n",
            i.name,
            i.table,
            i.columns.join(", "),
            i.size_bytes as f64 / (1 << 20) as f64
        ));
    }
    out.push('\n');
    out.push_str(&sugg.report.render());
    if let Some(b) = &sugg.budget {
        out.push_str(&format!(
            "\nDEGRADED: {b}; best-so-far design, rerun with `budget off` for the full search\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_commands() {
        assert_eq!(parse_command("load paper").unwrap(), Command::LoadPaper);
        assert_eq!(parse_command("load laptop 5000").unwrap(), Command::LoadLaptop(5000));
        assert_eq!(parse_command("load laptop").unwrap(), Command::LoadLaptop(20_000));
        assert_eq!(parse_command("workload sdss").unwrap(), Command::WorkloadSdss);
        assert_eq!(parse_command("workload stats").unwrap(), Command::WorkloadStats);
        assert_eq!(parse_command("  quit ").unwrap(), Command::Quit);
        assert_eq!(parse_command("").unwrap(), Command::Empty);
        assert_eq!(
            parse_command("suggest indexes 2048 greedy").unwrap(),
            Command::SuggestIndexes { budget_mb: 2048, method: SelectionMethod::Greedy }
        );
    }

    /// Regression: an unparseable row count used to silently fall back to
    /// 20k rows; it must be an argument error instead.
    #[test]
    fn load_laptop_rejects_bad_row_counts() {
        let overflow = parse_command("load laptop 99999999999999999999");
        match overflow {
            Err(ParindaError::Parse(msg)) => {
                assert!(msg.contains("99999999999999999999"), "{msg}")
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        assert!(matches!(
            parse_command("load laptop twenty"),
            Err(ParindaError::Parse(_))
        ));
        assert!(matches!(
            parse_command("load laptop 10000001"),
            Err(ParindaError::Parse(_))
        ));
        // ... and the console reports it without loading anything.
        let mut c = Console::new();
        let reply = c.run_line("load laptop 99999999999999999999");
        assert!(matches!(reply, ConsoleReply::Error(ParindaError::Parse(_))), "{reply:?}");
        assert!(c.session().is_none());
    }

    /// `workload stats` clusters the loaded statements; the 30 SDSS
    /// prototypes are distinct shapes, so nothing merges.
    #[test]
    fn workload_stats_reports_clustering() {
        let mut c = Console::new();
        assert_eq!(c.run_command(Command::WorkloadStats).unwrap(), "no workload loaded");
        c.run_command(Command::WorkloadSdss).unwrap();
        let out = c.run_command(Command::WorkloadStats).unwrap();
        assert!(out.contains("30 statements"), "{out}");
        assert!(out.contains("30 templates"), "{out}");
        assert!(out.contains("compression 1.0x"), "{out}");
    }

    #[test]
    fn parses_whatif_commands() {
        assert_eq!(
            parse_command("whatif index w1 photoobj ra,dec").unwrap(),
            Command::WhatIfIndex {
                name: "w1".into(),
                table: "photoobj".into(),
                columns: vec!["ra".into(), "dec".into()],
            }
        );
        assert_eq!(
            parse_command("whatif drop i_old").unwrap(),
            Command::WhatIfDrop("i_old".into())
        );
        assert!(parse_command("whatif index w1").is_err());
    }

    #[test]
    fn parses_threads_command() {
        assert_eq!(parse_command("threads 4").unwrap(), Command::Threads(Some(4)));
        assert_eq!(parse_command("threads auto").unwrap(), Command::Threads(None));
        assert_eq!(parse_command("threads").unwrap(), Command::ShowThreads);
        assert!(parse_command("threads 0").is_err());
        assert!(parse_command("threads many").is_err());
    }

    #[test]
    fn threads_command_sticks_across_loads() {
        let mut c = Console::new();
        c.run_command(Command::Threads(Some(2))).unwrap();
        c.run_command(Command::LoadPaper).unwrap();
        assert_eq!(c.session().unwrap().parallelism(), Parallelism::fixed(2));
        let out = c.run_command(Command::ShowThreads).unwrap();
        assert!(out.contains("2 thread"), "{out}");
    }

    #[test]
    fn explain_keeps_original_case() {
        match parse_command("explain SELECT ra FROM photoobj").unwrap() {
            Command::Explain(sql) => assert_eq!(sql, "SELECT ra FROM photoobj"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_commands_error() {
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("load mars").is_err());
    }

    #[test]
    fn console_flow_paper_scale() {
        let mut c = Console::new();
        assert!(c.run_command(Command::Eval).is_err(), "needs a database");
        c.run_command(Command::LoadPaper).unwrap();
        c.run_command(Command::WorkloadSdss).unwrap();
        c.run_command(Command::WhatIfIndex {
            name: "w_objid".into(),
            table: "photoobj".into(),
            columns: vec!["objid".into()],
        })
        .unwrap();
        let out = c.run_command(Command::Eval).unwrap();
        assert!(out.contains("average benefit"), "{out}");
        let out = c.run_command(Command::ShowDesign).unwrap();
        assert!(out.contains("w_objid"));
        c.run_command(Command::ClearDesign).unwrap();
        assert_eq!(c.run_command(Command::ShowDesign).unwrap(), "empty design");
    }

    #[test]
    fn console_rejects_bad_whatif_eagerly() {
        let mut c = Console::new();
        c.run_command(Command::LoadPaper).unwrap();
        let r = c.run_command(Command::WhatIfIndex {
            name: "w".into(),
            table: "photoobj".into(),
            columns: vec!["no_such_column".into()],
        });
        assert!(r.is_err());
        // the bad feature must not linger in the design
        assert_eq!(c.run_command(Command::ShowDesign).unwrap(), "empty design");
    }

    /// The backstop: a panic below dispatch becomes a typed internal
    /// error and the console survives to run the next command.
    #[test]
    fn dispatch_contains_panics() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = guard::<String>(|| panic!("injected dispatch panic"));
        std::panic::set_hook(quiet);
        assert_eq!(r, Err(ParindaError::Internal("injected dispatch panic".into())));

        let mut c = Console::new();
        c.run_command(Command::LoadPaper).unwrap();
        let out = c.run_command(Command::ShowTables).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn run_line_quit_and_errors() {
        let mut c = Console::new();
        assert_eq!(c.run_line("quit"), ConsoleReply::Quit);
        assert!(matches!(c.run_line("frobnicate"), ConsoleReply::Error(ParindaError::Parse(_))));
        assert!(matches!(c.run_line("   "), ConsoleReply::Output(ref s) if s.is_empty()));
    }
}
