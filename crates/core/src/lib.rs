//! # parinda
//!
//! PARINDA — PARtition and INDex Advisor — reproduced from "PARINDA: An
//! Interactive Physical Designer for PostgreSQL" (EDBT 2010) over a
//! from-scratch PostgreSQL-style substrate.
//!
//! The three components of the paper's Figure 1:
//!
//! * **Interactive partitioning/indexing** — [`Parinda::evaluate_design`]:
//!   simulate DBA-chosen what-if indexes/partitions and report per-query
//!   and average workload benefits.
//! * **Automatic index suggestion** — [`Parinda::suggest_indexes`]: ILP
//!   over the INUM cached cost model (or the greedy baseline), under a
//!   storage budget, with the option to materialize the result.
//! * **Automatic partition suggestion** — [`Parinda::suggest_partitions`]:
//!   AutoPart with automatic query rewriting.
//!
//! Plus the demo's verification path ([`verify_whatif_index`]): simulate a
//! feature, then actually build it and compare plans and sizes.
//!
//! # Example
//!
//! ```
//! use parinda::{Design, Parinda, WhatIfIndex};
//!
//! // a schema from DDL (or build a Catalog programmatically)
//! let session = Parinda::from_ddl(
//!     "CREATE TABLE obs (id BIGINT NOT NULL, ra DOUBLE PRECISION NOT NULL,
//!                        PRIMARY KEY (id)) ROWS 100000;",
//! )?;
//!
//! // what would an index on `ra` buy this query?
//! let workload = vec![parinda::parse_select(
//!     "SELECT id FROM obs WHERE ra BETWEEN 10.0 AND 10.5",
//! )?];
//! let design = Design::new().with_index(WhatIfIndex::new("w_ra", "obs", &["ra"]));
//! let (report, _) = session.evaluate_design(&workload, &design)?;
//! assert!(report.per_query[0].cost_after <= report.per_query[0].cost_before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![allow(missing_docs)]

pub mod console;
pub mod interactive;
pub mod report;
pub mod session;
pub mod verify;

pub use console::{is_state_mutating, parse_command, Command, Console, ConsoleReply, HELP};
pub use report::{BenefitReport, QueryBenefit};
pub use session::{
    guard, DropSuggestion, IndexSuggestion, Parinda, ParindaError, PartitionSuggestionReport,
    SelectionMethod, SessionState, SharedEngine, SuggestedIndex, SuggestedPartition,
};
pub use verify::{verify_whatif_index, Verification};

// Re-export the vocabulary types users need at the API surface.
pub use parinda_advisor::{AutoPartConfig, IlpOptions};
pub use parinda_parallel::{Budget, BudgetReport, CancelToken, Parallelism, THREADS_ENV};
pub use parinda_trace::{Counter, Trace, TraceReport};
pub use parinda_catalog::{Catalog, Column, Datum, SqlType};
pub use parinda_sql::{parse_select, Select};
pub use parinda_storage::Database;
pub use parinda_whatif::{Design, WhatIfIndex, WhatIfPartition};
