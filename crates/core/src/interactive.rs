//! The interactive partitioning/indexing component (paper §3, Figure 1 and
//! §4 scenario 1): the DBA picks what-if features, the tool simulates them
//! and reports per-query and average benefits plus the rewritten queries.

use parinda_advisor::{rewrite_select, Fragment, NamedFragment, PartitionDesign};
use parinda_catalog::{Catalog, MetadataProvider};
use parinda_optimizer::{bind, plan_query, CostParams, PlanKind, PlannerFlags};
use parinda_sql::Select;
use parinda_whatif::Design;

use crate::report::{BenefitReport, QueryBenefit};
use crate::session::ParindaError;

/// Evaluate a what-if design over a workload. Returns the report and the
/// rewritten workload (original statements where rewriting does not apply
/// or does not help).
pub fn evaluate_design(
    catalog: &Catalog,
    params: &CostParams,
    flags: &PlannerFlags,
    workload: &[Select],
    design: &Design,
) -> Result<(BenefitReport, Vec<Select>), ParindaError> {
    let overlay = design.apply(catalog)?;

    // Partition design in advisor vocabulary, for the rewriter.
    let mut pdesign = PartitionDesign::default();
    for p in &design.partitions {
        let parent = catalog
            .table_by_name(&p.table)
            .ok_or_else(|| ParindaError::WhatIf(format!("unknown table {}", p.table)))?;
        let cols: Vec<usize> = p
            .columns
            .iter()
            .filter_map(|c| parent.column_index(c))
            .collect();
        pdesign.fragments.push(NamedFragment {
            name: p.name.to_ascii_lowercase(),
            fragment: Fragment::new(parent.id, cols),
        });
    }

    // Hypo index names by overlay id, for feature attribution.
    let hypo_names: Vec<(parinda_catalog::IndexId, String)> = overlay
        .hypo_indexes()
        .iter()
        .map(|i| (i.id, i.name.clone()))
        .collect();

    let mut per_query = Vec::with_capacity(workload.len());
    let mut rewritten_out = Vec::with_capacity(workload.len());
    for sel in workload {
        // Before: original design.
        let q0 = bind(sel, catalog)?;
        let p0 = plan_query(&q0, catalog, params, flags)?;

        // After: the better of (original statement, rewritten statement)
        // under the overlay.
        let direct = {
            let q = bind(sel, &overlay)?;
            let p = plan_query(&q, &overlay, params, flags)?;
            (sel.clone(), p)
        };
        let via_rewrite = if pdesign.is_empty() {
            None
        } else {
            rewrite_select(sel, &overlay, &pdesign).ok().and_then(|rw| {
                let q = bind(&rw, &overlay).ok()?;
                let p = plan_query(&q, &overlay, params, flags).ok()?;
                Some((rw, p))
            })
        };
        let (chosen_sql, plan) = match via_rewrite {
            Some((rw, p)) if p.cost.total < direct.1.cost.total => (rw, p),
            _ => direct,
        };

        // Feature attribution: hypo indexes used + fragments scanned.
        let mut features: Vec<String> = Vec::new();
        for id in plan.indexes_used() {
            if let Some((_, name)) = hypo_names.iter().find(|(hid, _)| *hid == id) {
                features.push(name.clone());
            }
        }
        let mut frag_tables: Vec<String> = Vec::new();
        plan.walk(&mut |n| {
            if let PlanKind::SeqScan { table, .. } | PlanKind::IndexScan { table, .. } = &n.kind {
                if let Some(t) = overlay.table(*table) {
                    if t.partition_of.is_some() {
                        frag_tables.push(t.name.clone());
                    }
                }
            }
        });
        frag_tables.dedup();
        features.extend(frag_tables);

        per_query.push(QueryBenefit {
            sql: sel.to_string(),
            cost_before: p0.cost.total,
            cost_after: plan.cost.total,
            features_used: features,
        });
        rewritten_out.push(chosen_sql);
    }

    Ok((
        BenefitReport { per_query, design_bytes: overlay.hypothetical_bytes() },
        rewritten_out,
    ))
}
