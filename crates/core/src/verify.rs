//! What-if accuracy verification (paper §4, scenario 1: "compare the
//! execution plan of the what-if design with the execution plan of the
//! same materialized physical design. This way the accuracy of the
//! physical design simulation is verified").

use parinda_catalog::MetadataProvider;
use parinda_optimizer::{bind, explain, plan_query, CostParams, PlannerFlags};
use parinda_sql::Select;
use parinda_whatif::{simulate_index, HypotheticalCatalog, WhatIfIndex};

use crate::session::{Parinda, ParindaError};

/// Comparison of a what-if simulation against the materialized reality.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// Estimated plan cost with the what-if index.
    pub whatif_cost: f64,
    /// Plan cost after actually building the index.
    pub materialized_cost: f64,
    /// Did both plans use the (hypothetical vs real) index?
    pub same_access_path: bool,
    /// Equation-1 page estimate of the what-if index.
    pub estimated_pages: u64,
    /// Measured leaf pages of the built B-tree.
    pub measured_pages: u64,
    /// EXPLAIN text of the what-if plan (the GUI's side-by-side pane).
    pub whatif_plan: String,
    /// EXPLAIN text of the materialized plan.
    pub materialized_plan: String,
}

impl Verification {
    /// Relative cost error of the simulation.
    pub fn cost_error(&self) -> f64 {
        if self.materialized_cost <= 0.0 {
            return 0.0;
        }
        (self.whatif_cost - self.materialized_cost).abs() / self.materialized_cost
    }

    /// Relative size error of Equation 1.
    pub fn size_error(&self) -> f64 {
        if self.measured_pages == 0 {
            return 0.0;
        }
        (self.estimated_pages as f64 - self.measured_pages as f64).abs()
            / self.measured_pages as f64
    }
}

/// Simulate `def` for `query`, then materialize the same index for real and
/// compare plans, costs, and sizes. The real index is dropped afterwards so
/// the session design is unchanged.
pub fn verify_whatif_index(
    session: &mut Parinda,
    query: &Select,
    def: &WhatIfIndex,
) -> Result<Verification, ParindaError> {
    let params = CostParams::default();
    let flags = PlannerFlags::default();

    // What-if side.
    let (whatif_cost, estimated_pages, hypo_used, whatif_plan) = {
        let mut overlay = HypotheticalCatalog::new(session.catalog());
        let id = simulate_index(&mut overlay, def)?;
        let pages = overlay
            .hypo_index(id)
            .ok_or_else(|| ParindaError::Internal("hypothetical index vanished".into()))?
            .pages;
        let q = bind(query, &overlay)?;
        let p = plan_query(&q, &overlay, &params, &flags)?;
        let text = explain(&p, &q, &overlay);
        (p.cost.total, pages, p.indexes_used().contains(&id), text)
    };

    // Materialized side (requires data).
    let table_id = session
        .catalog()
        .table_by_name(&def.table)
        .ok_or_else(|| ParindaError::WhatIf(format!("unknown table {}", def.table)))?
        .id;
    if session.database().heap(table_id).is_none() {
        return Err(ParindaError::NoData);
    }
    let cols: Vec<&str> = def.columns.iter().map(|s| s.as_str()).collect();
    let real_name = format!("verify_{}", def.name);
    let id = session
        .catalog_mut()
        .create_index(&real_name, &def.table, &cols)
        .ok_or_else(|| ParindaError::WhatIf("cannot create verification index".into()))?;
    let (catalog, db) = session.catalog_db_mut();
    db.build_index(catalog, id);
    let measured_pages = session
        .catalog()
        .index(id)
        .ok_or_else(|| ParindaError::Internal("verification index vanished".into()))?
        .pages;

    let q = bind(query, session.catalog())?;
    let p = plan_query(&q, session.catalog(), &params, &flags)?;
    let real_used = p.indexes_used().contains(&id);
    let materialized_cost = p.cost.total;
    let materialized_plan = explain(&p, &q, session.catalog());

    // Clean up: drop the verification index again.
    session.catalog_mut().drop_index(id);
    session.database_mut().drop_index_storage(id);

    Ok(Verification {
        whatif_cost,
        materialized_cost,
        same_access_path: hypo_used == real_used,
        estimated_pages,
        measured_pages,
        whatif_plan,
        materialized_plan,
    })
}
