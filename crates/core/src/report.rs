//! Benefit reports — the textual equivalent of the demo GUI's output
//! panes (average workload benefit, per-query benefits, features used).

use std::fmt::Write as _;

/// Benefit of a design for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBenefit {
    /// The statement (original text form).
    pub sql: String,
    /// Optimizer cost under the original design.
    pub cost_before: f64,
    /// Optimizer cost under the evaluated design.
    pub cost_after: f64,
    /// Design features (indexes/partitions) the new plan uses, by name.
    pub features_used: Vec<String>,
}

impl QueryBenefit {
    /// Benefit as a percentage of the original cost.
    pub fn benefit_pct(&self) -> f64 {
        if self.cost_before <= 0.0 {
            return 0.0;
        }
        (1.0 - self.cost_after / self.cost_before) * 100.0
    }

    /// Speedup factor.
    pub fn speedup(&self) -> f64 {
        if self.cost_after <= 0.0 {
            return 1.0;
        }
        self.cost_before / self.cost_after
    }
}

/// A workload benefit report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenefitReport {
    pub per_query: Vec<QueryBenefit>,
    /// Extra bytes the evaluated design would occupy.
    pub design_bytes: u64,
}

impl BenefitReport {
    /// Total workload cost before.
    pub fn total_before(&self) -> f64 {
        self.per_query.iter().map(|q| q.cost_before).sum()
    }

    /// Total workload cost after.
    pub fn total_after(&self) -> f64 {
        self.per_query.iter().map(|q| q.cost_after).sum()
    }

    /// Average per-query benefit percentage (what the GUI labels "average
    /// workload benefit").
    pub fn avg_benefit_pct(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query.iter().map(|q| q.benefit_pct()).sum::<f64>() / self.per_query.len() as f64
    }

    /// Workload speedup factor.
    pub fn speedup(&self) -> f64 {
        let after = self.total_after();
        if after <= 0.0 {
            return 1.0;
        }
        self.total_before() / after
    }

    /// Render as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4} {:>14} {:>14} {:>9} {:>8}  features used",
            "#", "before", "after", "benefit", "speedup"
        );
        let _ = writeln!(out, "{}", "-".repeat(78));
        for (i, q) in self.per_query.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<4} {:>14.2} {:>14.2} {:>8.1}% {:>7.2}x  {}",
                i + 1,
                q.cost_before,
                q.cost_after,
                q.benefit_pct(),
                q.speedup(),
                if q.features_used.is_empty() {
                    "-".to_string()
                } else {
                    q.features_used.join(", ")
                }
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(78));
        let _ = writeln!(
            out,
            "total: {:.2} -> {:.2}   average benefit: {:.1}%   speedup: {:.2}x",
            self.total_before(),
            self.total_after(),
            self.avg_benefit_pct(),
            self.speedup()
        );
        if self.design_bytes > 0 {
            let _ = writeln!(
                out,
                "simulated design size: {:.1} MB",
                self.design_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenefitReport {
        BenefitReport {
            per_query: vec![
                QueryBenefit {
                    sql: "SELECT 1".into(),
                    cost_before: 100.0,
                    cost_after: 25.0,
                    features_used: vec!["idx_a".into()],
                },
                QueryBenefit {
                    sql: "SELECT 2".into(),
                    cost_before: 50.0,
                    cost_after: 50.0,
                    features_used: vec![],
                },
            ],
            design_bytes: 1024 * 1024,
        }
    }

    #[test]
    fn percentages_and_speedups() {
        let r = report();
        assert!((r.per_query[0].benefit_pct() - 75.0).abs() < 1e-9);
        assert!((r.per_query[0].speedup() - 4.0).abs() < 1e-9);
        assert!((r.avg_benefit_pct() - 37.5).abs() < 1e-9);
        assert!((r.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn totals_sum() {
        let r = report();
        assert_eq!(r.total_before(), 150.0);
        assert_eq!(r.total_after(), 75.0);
    }

    #[test]
    fn render_contains_rows_and_summary() {
        let text = report().render();
        assert!(text.contains("idx_a"), "{text}");
        assert!(text.contains("average benefit"), "{text}");
        assert!(text.contains("1.0 MB"), "{text}");
    }

    #[test]
    fn empty_report_is_neutral() {
        let r = BenefitReport::default();
        assert_eq!(r.avg_benefit_pct(), 0.0);
        assert_eq!(r.speedup(), 1.0);
    }

    #[test]
    fn zero_cost_guards() {
        let q = QueryBenefit {
            sql: String::new(),
            cost_before: 0.0,
            cost_after: 0.0,
            features_used: vec![],
        };
        assert_eq!(q.benefit_pct(), 0.0);
        assert_eq!(q.speedup(), 1.0);
    }
}
