//! The PARINDA tool session: catalog + (optionally) materialized data,
//! exposing the three components of Figure 1.
//!
//! Since the server refactor the session is split in two layers:
//!
//! * [`EngineCore`] (private) — catalog, storage, cost parameters and the
//!   engine-wide INUM plan cache, held behind an `Arc` and treated as
//!   immutable while shared. [`SharedEngine`] is the public handle that
//!   mints sessions over one core.
//! * [`SessionState`] — everything one session may change without another
//!   session noticing: thread policy, budgets, cancellation token, trace.
//!
//! A session that mutates metadata (DDL, materialization, `params_mut`)
//! transparently *privatizes* its core: copy-on-write via
//! [`Arc::make_mut`], a fresh plan cache (cached plans are functions of
//! the metadata being changed), and a new generation id. Other sessions
//! keep the old core untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parinda_advisor::{
    generate_candidates, select_indexes_greedy_constrained, select_indexes_ilp_constrained,
    suggest_partitions_traced, AutoPartConfig, CandidateLimits, IlpOptions, PartitionDesign,
    SolverConstraints,
};
use parinda_catalog::{Catalog, IndexId, MetadataProvider};
use parinda_inum::{CandidateIndex, Configuration, InumModel, InumOptions, SharedPlanCache};
use parinda_optimizer::{bind, explain, plan_query, CostParams, PlannerFlags};
use parinda_parallel::{Budget, BudgetReport, CancelToken, Parallelism};
use parinda_sql::Select;
use parinda_storage::Database;
use parinda_trace::{Counter, Trace};
use parinda_whatif::Design;

use crate::interactive::evaluate_design;
use crate::report::BenefitReport;

/// Search technique for automatic index suggestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMethod {
    /// The paper's technique: ILP over the INUM cost model (§3.4).
    Ilp,
    /// The greedy baseline used by the commercial tools (§1, §2).
    Greedy,
}

/// The workspace-wide error taxonomy: every fallible interactive path
/// funnels into one of these categories, so a frontend can always render
/// a typed, non-fatal message. User input — however malformed — must
/// surface here, never as a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ParindaError {
    /// SQL, DDL, workload-file, or console-argument parsing failed.
    Parse(String),
    /// Catalog lookup / name resolution failed (unknown table, column,
    /// index, or inconsistent metadata).
    Catalog(String),
    /// Planning or costing failed.
    Plan(String),
    /// What-if simulation failed.
    WhatIf(String),
    /// An advisor (INUM model, ILP selection, AutoPart) failed.
    Advisor(String),
    /// The ILP/LP solver failed or returned an unusable outcome.
    Solver(String),
    /// Filesystem / execution I/O failed.
    Io(String),
    /// A contained panic or broken internal invariant: a bug worth
    /// reporting, but never a reason to abort the session.
    Internal(String),
    /// Operation needs materialized data (heaps) that were never loaded.
    NoData,
}

impl ParindaError {
    /// Stable category name (for logs, tests, and the fuzz gate).
    pub fn kind(&self) -> &'static str {
        match self {
            ParindaError::Parse(_) => "parse",
            ParindaError::Catalog(_) => "catalog",
            ParindaError::Plan(_) => "plan",
            ParindaError::WhatIf(_) => "whatif",
            ParindaError::Advisor(_) => "advisor",
            ParindaError::Solver(_) => "solver",
            ParindaError::Io(_) => "io",
            ParindaError::Internal(_) => "internal",
            ParindaError::NoData => "nodata",
        }
    }
}

impl std::fmt::Display for ParindaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParindaError::Parse(e) => write!(f, "parse error: {e}"),
            ParindaError::Catalog(e) => write!(f, "catalog error: {e}"),
            ParindaError::Plan(e) => write!(f, "planning error: {e}"),
            ParindaError::WhatIf(e) => write!(f, "what-if simulation error: {e}"),
            ParindaError::Advisor(e) => write!(f, "advisor error: {e}"),
            ParindaError::Solver(e) => write!(f, "solver error: {e}"),
            ParindaError::Io(e) => write!(f, "io error: {e}"),
            ParindaError::Internal(e) => write!(f, "internal error (please report): {e}"),
            ParindaError::NoData => write!(f, "operation requires loaded table data"),
        }
    }
}

impl std::error::Error for ParindaError {}

impl From<parinda_sql::SqlError> for ParindaError {
    fn from(e: parinda_sql::SqlError) -> Self {
        ParindaError::Parse(e.to_string())
    }
}

impl From<parinda_optimizer::BindError> for ParindaError {
    fn from(e: parinda_optimizer::BindError) -> Self {
        ParindaError::Catalog(e.to_string())
    }
}

impl From<parinda_optimizer::PlanError> for ParindaError {
    fn from(e: parinda_optimizer::PlanError) -> Self {
        ParindaError::Plan(e.to_string())
    }
}

impl From<parinda_optimizer::OptimizeError> for ParindaError {
    fn from(e: parinda_optimizer::OptimizeError) -> Self {
        match e {
            parinda_optimizer::OptimizeError::Bind(b) => b.into(),
            parinda_optimizer::OptimizeError::Plan(p) => p.into(),
        }
    }
}

impl From<parinda_whatif::WhatIfError> for ParindaError {
    fn from(e: parinda_whatif::WhatIfError) -> Self {
        ParindaError::WhatIf(e.to_string())
    }
}

impl From<parinda_inum::InumError> for ParindaError {
    fn from(e: parinda_inum::InumError) -> Self {
        match e {
            parinda_inum::InumError::Worker(ref w) => ParindaError::Internal(w.clone()),
            other => ParindaError::Advisor(other.to_string()),
        }
    }
}

impl From<parinda_stream::StreamError> for ParindaError {
    fn from(e: parinda_stream::StreamError) -> Self {
        match e {
            parinda_stream::StreamError::Parse(ref m) => ParindaError::Parse(m.clone()),
            other => ParindaError::Advisor(other.to_string()),
        }
    }
}

impl From<parinda_advisor::AdvisorError> for ParindaError {
    fn from(e: parinda_advisor::AdvisorError) -> Self {
        ParindaError::Advisor(e.to_string())
    }
}

impl From<parinda_advisor::RewriteError> for ParindaError {
    fn from(e: parinda_advisor::RewriteError) -> Self {
        ParindaError::Advisor(e.to_string())
    }
}

impl From<parinda_executor::ExecError> for ParindaError {
    fn from(e: parinda_executor::ExecError) -> Self {
        ParindaError::Io(e.to_string())
    }
}

impl From<std::io::Error> for ParindaError {
    fn from(e: std::io::Error) -> Self {
        ParindaError::Io(e.to_string())
    }
}

impl From<parinda_parallel::WorkerPanic> for ParindaError {
    fn from(e: parinda_parallel::WorkerPanic) -> Self {
        ParindaError::Internal(e.to_string())
    }
}

/// Run `f` with a last-resort panic backstop: any unwind that escapes the
/// taxonomy (an internal invariant breach anywhere in the stack) is
/// contained and reported as [`ParindaError::Internal`], keeping the
/// interactive session alive. The state `f` mutated may be partially
/// updated — acceptable for an advisory tool whose designs are
/// re-evaluable — but the process never aborts on user input.
pub fn guard<T>(f: impl FnOnce() -> Result<T, ParindaError>) -> Result<T, ParindaError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            Err(ParindaError::Internal(parinda_parallel::panic_message(&*payload)))
        }
    }
}

/// Result of automatic index suggestion (scenario 3).
#[derive(Debug, Clone)]
pub struct IndexSuggestion {
    /// Suggested indexes: (name, table name, key column names, size bytes).
    pub indexes: Vec<SuggestedIndex>,
    /// Benefit report over the workload.
    pub report: BenefitReport,
    /// Whether the ILP proved optimality (always true for a greedy run
    /// that finished; `false` whenever the solver hit a node/time limit
    /// or the run was degraded by a budget).
    pub proven_optimal: bool,
    /// `true` when a budget or cancellation stopped the advisor early:
    /// the suggestion is valid but best-so-far, not the full search.
    pub degraded: bool,
    /// Accounting for the degraded run (`None` when not degraded).
    pub budget: Option<BudgetReport>,
}

/// One suggested index.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestedIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub size_bytes: u64,
}

/// Result of automatic partition suggestion (scenario 2).
#[derive(Debug, Clone)]
pub struct PartitionSuggestionReport {
    /// Suggested partitions: (partition table name, parent, columns).
    pub partitions: Vec<SuggestedPartition>,
    /// Benefit report.
    pub report: BenefitReport,
    /// Rewritten workload, parallel to the input.
    pub rewritten: Vec<Select>,
    /// The raw design (for materialization / further evaluation).
    pub design: PartitionDesign,
    /// AutoPart improvement iterations executed.
    pub iterations: usize,
    /// `true` when a budget or cancellation stopped AutoPart early: the
    /// design is valid (constraints re-checked) but best-so-far.
    pub degraded: bool,
    /// Accounting for the degraded run (`None` when not degraded).
    pub budget: Option<BudgetReport>,
}

/// One suggested partition.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestedPartition {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
}

/// A real index the workload would not miss.
#[derive(Debug, Clone, PartialEq)]
pub struct DropSuggestion {
    pub index: String,
    pub table: String,
    /// Bytes freed by dropping it.
    pub reclaimed_bytes: u64,
    /// Workload cost change when simulated absent (≈ 0 by construction).
    pub cost_delta: f64,
}

/// Process-global source of core generation ids: every metadata version
/// of every engine core in the process gets a unique id. Soundness of the
/// shared plan cache comes from the fresh cache swapped in alongside each
/// bump (see [`Parinda::privatize`]); the id itself is observability —
/// `server stats` reports it so operators can see metadata churn.
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// The shareable heart of an engine: catalog + storage + cost parameters
/// + the engine-wide INUM plan cache. Immutable while shared; sessions
/// copy-on-write it before any mutation.
#[derive(Clone)]
struct EngineCore {
    catalog: Catalog,
    db: Database,
    params: CostParams,
    flags: PlannerFlags,
    /// Thread-count policy new sessions start with.
    default_par: Parallelism,
    /// Engine-wide admission-control cap on per-request wall-clock
    /// budgets: each advisor call runs under
    /// `min(session budget, this cap)`. `None` (the default) leaves
    /// sessions exactly as budgeted as a standalone REPL — bit-identical.
    max_budget_ms: Option<u64>,
    /// Unique id of this core's metadata version (see [`GENERATION`]).
    generation: u64,
    /// Cross-session INUM plan cache; always replaced together with any
    /// metadata change, so entries are pure functions of this core.
    plan_cache: Arc<SharedPlanCache>,
}

impl EngineCore {
    fn new(catalog: Catalog) -> EngineCore {
        EngineCore {
            catalog,
            db: Database::new(),
            params: CostParams::default(),
            flags: PlannerFlags::default(),
            default_par: Parallelism::auto(),
            max_budget_ms: None,
            generation: next_generation(),
            plan_cache: Arc::new(SharedPlanCache::new()),
        }
    }
}

/// Everything one session may change without any other session sharing
/// the same engine core noticing: thread policy, budgets, cancellation
/// token, observability handle. Staged what-if designs live one layer up,
/// in the console.
#[derive(Clone)]
pub struct SessionState {
    par: Parallelism,
    /// Wall-clock budget per advisor call (`None` = unlimited).
    budget_ms: Option<u64>,
    /// Round-cap budget per advisor call (`None` = unlimited). Rounds
    /// are scheduling-independent, so round-capped runs are
    /// deterministic at any thread count.
    budget_rounds: Option<usize>,
    /// Cooperative cancellation flag shared with the frontend (Ctrl-C in
    /// the REPL; the connection reader in the server). Per-session by
    /// construction: cancelling one session never touches another.
    cancel: CancelToken,
    /// Observability handle; disabled by default. Every phase of the
    /// pipeline records spans/counters through this. Tracing is strictly
    /// write-only for the pipeline: no result ever depends on it.
    trace: Trace,
}

impl SessionState {
    fn fresh(par: Parallelism) -> SessionState {
        SessionState {
            par,
            budget_ms: None,
            budget_rounds: None,
            cancel: CancelToken::new(),
            trace: Trace::disabled(),
        }
    }
}

/// A concurrently shareable PARINDA engine: one immutable core serving
/// many simultaneous sessions.
///
/// Cloning is cheap (an `Arc` bump) and every clone mints sessions over
/// the *same* core: sessions share the catalog, storage, cost parameters
/// and the INUM plan cache (so one session's advisor run warms the cache
/// for everyone), but own their budgets, cancellation token, thread
/// policy, trace, and staged what-if designs. A session that mutates
/// metadata detaches onto a private copy-on-write core; the shared core
/// — and every other session — is never affected.
#[derive(Clone)]
pub struct SharedEngine {
    core: Arc<EngineCore>,
}

impl SharedEngine {
    /// A shareable engine over a catalog (statistics-only mode).
    pub fn new(catalog: Catalog) -> SharedEngine {
        SharedEngine::from_session(Parinda::new(catalog))
    }

    /// A shareable engine with materialized data.
    pub fn with_database(catalog: Catalog, db: Database) -> SharedEngine {
        SharedEngine::from_session(Parinda::with_database(catalog, db))
    }

    /// A shareable engine from a DDL script (see [`Parinda::from_ddl`]).
    pub fn from_ddl(script: &str) -> Result<SharedEngine, ParindaError> {
        Ok(SharedEngine::from_session(Parinda::from_ddl(script)?))
    }

    /// Promote a fully built session into a shareable engine. The
    /// session's core (catalog, data, params, warm plan cache) becomes
    /// the shared core; its per-session state is dropped.
    pub fn from_session(session: Parinda) -> SharedEngine {
        SharedEngine { core: session.core }
    }

    /// Builder: thread-count policy handed to fresh sessions. Tuning
    /// knobs never invalidate the plan cache — results are identical at
    /// any thread count.
    pub fn with_default_parallelism(mut self, par: Parallelism) -> SharedEngine {
        Arc::make_mut(&mut self.core).default_par = par;
        self
    }

    /// Builder: engine-wide wall-clock budget cap per advisor call
    /// (admission control). Each request runs under
    /// `min(session budget, cap)`; `None` removes the cap.
    pub fn with_max_budget_ms(mut self, ms: Option<u64>) -> SharedEngine {
        Arc::make_mut(&mut self.core).max_budget_ms = ms;
        self
    }

    /// Open an independent session over the shared core.
    pub fn session(&self) -> Parinda {
        Parinda {
            core: Arc::clone(&self.core),
            state: SessionState::fresh(self.core.default_par),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.core.catalog
    }

    /// The engine-wide wall-clock budget cap, if any.
    pub fn max_budget_ms(&self) -> Option<u64> {
        self.core.max_budget_ms
    }

    /// Generation id of the shared core's metadata version.
    pub fn generation(&self) -> u64 {
        self.core.generation
    }

    /// INUM plan-cache hits served engine-wide (whole-query cache
    /// populations skipped because some session already built them).
    pub fn plan_cache_hits(&self) -> u64 {
        self.core.plan_cache.hits()
    }

    /// INUM plan-cache misses engine-wide (case lists built fresh).
    pub fn plan_cache_misses(&self) -> u64 {
        self.core.plan_cache.misses()
    }

    /// Distinct query case lists currently in the shared plan cache.
    pub fn plan_cache_entries(&self) -> usize {
        self.core.plan_cache.entries()
    }
}

/// A PARINDA session: a handle on an engine core (possibly shared with
/// other sessions — see [`SharedEngine`]) plus this session's own
/// [`SessionState`].
pub struct Parinda {
    core: Arc<EngineCore>,
    state: SessionState,
}

impl Parinda {
    /// Open a standalone session over a catalog (statistics-only mode:
    /// everything works except execution and physical materialization).
    /// The session owns its core, so mutation never copies.
    pub fn new(catalog: Catalog) -> Self {
        let core = EngineCore::new(catalog);
        let state = SessionState::fresh(core.default_par);
        Parinda { core: Arc::new(core), state }
    }

    /// Open a standalone session with materialized data.
    pub fn with_database(catalog: Catalog, db: Database) -> Self {
        let mut s = Parinda::new(catalog);
        s.privatize().db = db;
        s
    }

    /// Copy-on-write escape hatch for every metadata mutation (DDL,
    /// materialization, cost-parameter edits): if other sessions share
    /// the core it is deep-copied first, so they keep the old metadata;
    /// either way the (possibly new) core gets a fresh generation and an
    /// empty INUM plan cache, because cached case lists are pure
    /// functions of exactly the state being mutated.
    fn privatize(&mut self) -> &mut EngineCore {
        let core = Arc::make_mut(&mut self.core);
        core.generation = next_generation();
        core.plan_cache = Arc::new(SharedPlanCache::new());
        core
    }

    /// The thread-count policy the session's advisors evaluate with.
    pub fn parallelism(&self) -> Parallelism {
        self.state.par
    }

    /// Change the thread-count policy (the CLI's `threads` command).
    /// Advisor output is identical at any setting; only wall-clock changes.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.state.par = par;
    }

    /// Wall-clock budget per advisor call, in milliseconds (`None` =
    /// unlimited). Under a budget the advisors become *anytime*: an
    /// expired deadline returns the best design found so far, flagged
    /// `degraded`, instead of running to completion.
    pub fn budget_ms(&self) -> Option<u64> {
        self.state.budget_ms
    }

    /// Set (or clear, with `None`) the wall-clock advisor budget.
    /// `budget off` / unlimited produces bit-identical output to a
    /// session that never had a budget.
    pub fn set_budget_ms(&mut self, ms: Option<u64>) {
        self.state.budget_ms = ms;
    }

    /// Round-cap advisor budget (`None` = unlimited). Unlike a deadline,
    /// a round cap is scheduling-independent: the same cap yields the
    /// same degraded design at any thread count.
    pub fn budget_rounds(&self) -> Option<usize> {
        self.state.budget_rounds
    }

    /// Set (or clear) the round-cap advisor budget.
    pub fn set_budget_rounds(&mut self, rounds: Option<usize>) {
        self.state.budget_rounds = rounds;
    }

    /// The session's cooperative cancellation token. Cancelling it (from
    /// any thread — e.g. a Ctrl-C handler) makes the advisor in flight
    /// stop at its next checkpoint and return best-so-far. The token is
    /// *not* auto-reset; callers clear it between runs.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.state.cancel
    }

    /// Replace the cancellation token (a frontend that owns several
    /// sessions — the REPL across `load`s, the server per connection —
    /// wires each session to the token its signal source flips).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.state.cancel = token;
    }

    /// Request cancellation of the advisor call in flight (or the next
    /// one, if none is running).
    pub fn request_cancel(&self) {
        self.state.cancel.cancel();
    }

    /// The session's observability handle (disabled unless a frontend
    /// attached one with [`Parinda::set_trace`]).
    pub fn trace(&self) -> &Trace {
        &self.state.trace
    }

    /// Attach (or detach, with [`Trace::disabled`]) an observability
    /// handle. The console's `profile on|off` commands call this; the
    /// CLI's `--trace-json` attaches one for the whole run.
    pub fn set_trace(&mut self, trace: Trace) {
        self.state.trace = trace;
    }

    /// Anchor a [`Budget`] for one advisor call: deadline measured from
    /// *now* — the session's own wall-clock budget min'd against the
    /// engine-wide admission cap — with the round cap and cancel token
    /// attached. Without an engine cap this is exactly the standalone
    /// REPL budget, bit for bit.
    fn start_budget(&self) -> Budget {
        let ms = match (self.state.budget_ms, self.core.max_budget_ms) {
            (Some(own), Some(cap)) => Some(own.min(cap)),
            (own, cap) => own.or(cap),
        };
        let mut b = match ms {
            Some(ms) => Budget::deadline_ms(ms),
            None => Budget::unlimited(),
        };
        if let Some(r) = self.state.budget_rounds {
            b = b.with_rounds(r);
        }
        b.with_cancel(self.state.cancel.clone())
    }

    /// Open a session from a DDL script (`CREATE TABLE … ROWS n;`,
    /// `CREATE INDEX …`): the demo's "original physical design" input.
    /// Tables get default planner statistics; load data or attach
    /// synthesized statistics for better estimates.
    pub fn from_ddl(script: &str) -> Result<Self, ParindaError> {
        let mut session = Parinda::new(Catalog::new());
        session.execute_ddl(script)?;
        Ok(session)
    }

    /// Apply a DDL script to the session's catalog. SELECT statements in
    /// the script are ignored (use a workload file for those). Returns the
    /// number of objects created.
    pub fn execute_ddl(&mut self, script: &str) -> Result<usize, ParindaError> {
        use parinda_sql::Statement;
        let stmts =
            parinda_sql::parse_ddl_script(script)?;
        let core = self.privatize();
        let mut created = 0;
        for stmt in stmts {
            match stmt {
                Statement::CreateTable(ct) => {
                    if core.catalog.table_by_name(&ct.name).is_some() {
                        return Err(ParindaError::Catalog(format!(
                            "table {} already exists",
                            ct.name
                        )));
                    }
                    let columns: Vec<parinda_catalog::Column> = ct
                        .columns
                        .iter()
                        .map(|c| {
                            let col = parinda_catalog::Column::new(&c.name, c.ty);
                            if c.not_null {
                                col.not_null()
                            } else {
                                col
                            }
                        })
                        .collect();
                    let id = core.catalog.create_table(&ct.name, columns, ct.rows.unwrap_or(0));
                    if !ct.primary_key.is_empty() {
                        let table = core.catalog.table_mut(id).ok_or_else(|| {
                            ParindaError::Internal("freshly created table vanished".into())
                        })?;
                        let pk: Option<Vec<usize>> =
                            ct.primary_key.iter().map(|n| table.column_index(n)).collect();
                        match pk {
                            Some(pk) => table.primary_key = pk,
                            None => {
                                return Err(ParindaError::Catalog(format!(
                                    "primary key references unknown column on {}",
                                    ct.name
                                )))
                            }
                        }
                    }
                    created += 1;
                }
                Statement::CreateIndex(ci) => {
                    let cols: Vec<&str> = ci.columns.iter().map(|s| s.as_str()).collect();
                    core.catalog
                        .create_index(&ci.name, &ci.table, &cols)
                        .ok_or_else(|| {
                            ParindaError::Catalog(format!(
                                "cannot create index {} on {}({})",
                                ci.name,
                                ci.table,
                                ci.columns.join(", ")
                            ))
                        })?;
                    created += 1;
                }
                Statement::Select(_) => {}
            }
        }
        Ok(created)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.core.catalog
    }

    /// Mutable catalog access (DDL). Copy-on-write: detaches from a
    /// shared engine core and invalidates the plan cache.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.privatize().catalog
    }

    /// The storage layer.
    pub fn database(&self) -> &Database {
        &self.core.db
    }

    /// Mutable storage access. Copy-on-write, like [`Parinda::catalog_mut`].
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.privatize().db
    }

    /// Split mutable access to catalog and storage (index builds need
    /// both). Copy-on-write, like [`Parinda::catalog_mut`].
    pub fn catalog_db_mut(&mut self) -> (&mut Catalog, &mut Database) {
        let core = self.privatize();
        (&mut core.catalog, &mut core.db)
    }

    /// Cost parameters (mutable, like editing `postgresql.conf`).
    /// Copy-on-write: cached plans are functions of these parameters, so
    /// the plan cache is invalidated even if no edit follows.
    pub fn params_mut(&mut self) -> &mut CostParams {
        &mut self.privatize().params
    }

    /// EXPLAIN a statement under the current design.
    pub fn explain_sql(&self, sql: &str) -> Result<String, ParindaError> {
        let sel = {
            let _s = self.state.trace.span("parse");
            parinda_sql::parse_select(sql)?
        };
        self.explain_query(&sel)
    }

    /// EXPLAIN a parsed statement.
    pub fn explain_query(&self, sel: &Select) -> Result<String, ParindaError> {
        let (q, p) = self.plan_one(sel)?;
        Ok(explain(&p, &q, &self.core.catalog))
    }

    /// EXPLAIN a statement with a per-node cost breakdown and, when
    /// `design` is non-empty, the what-if deltas under that hypothetical
    /// design (the console's enriched `explain <query>`).
    pub fn explain_sql_breakdown(
        &self,
        sql: &str,
        design: Option<&Design>,
    ) -> Result<String, ParindaError> {
        let sel = {
            let _s = self.state.trace.span("parse");
            parinda_sql::parse_select(sql)?
        };
        let (q, p) = self.plan_one(&sel)?;
        let base_rows = parinda_optimizer::breakdown(&p, &q, &self.core.catalog);
        let whatif_rows = match design {
            Some(d) if !d.is_empty() => {
                let _s = self.state.trace.span("whatif");
                let overlay = d.apply(&self.core.catalog)?;
                let qh = bind(&sel, &overlay)?;
                let ph = plan_query(&qh, &overlay, &self.core.params, &self.core.flags)?;
                self.state.trace.count(Counter::OptimizerInvocations, 1);
                Some(parinda_optimizer::breakdown(&ph, &qh, &overlay))
            }
            _ => None,
        };
        let mut out = explain(&p, &q, &self.core.catalog);
        out.push('\n');
        out.push_str(&parinda_optimizer::render_breakdown(&base_rows, whatif_rows.as_deref()));
        Ok(out)
    }

    /// Bind and plan one statement, recording the `plan` phase.
    fn plan_one(
        &self,
        sel: &Select,
    ) -> Result<(parinda_optimizer::BoundQuery, parinda_optimizer::PlanNode), ParindaError> {
        let _s = self.state.trace.span("plan");
        let q = bind(sel, &self.core.catalog)?;
        let p = plan_query(&q, &self.core.catalog, &self.core.params, &self.core.flags)?;
        self.state.trace.count(Counter::OptimizerInvocations, 1);
        Ok((q, p))
    }

    /// Workload cost under the current design.
    pub fn workload_cost(&self, workload: &[Select]) -> Result<f64, ParindaError> {
        let mut total = 0.0;
        for sel in workload {
            let (_, p) = self.plan_one(sel)?;
            total += p.cost.total;
        }
        Ok(total)
    }

    // ---------- scenario 1: interactive ----------

    /// Evaluate a DBA-chosen what-if design over a workload (scenario 1 /
    /// Figure 3): per-query and average benefits, features used, rewritten
    /// queries for partitions.
    pub fn evaluate_design(
        &self,
        workload: &[Select],
        design: &Design,
    ) -> Result<(BenefitReport, Vec<Select>), ParindaError> {
        let _s = self.state.trace.span("whatif");
        let r = evaluate_design(
            &self.core.catalog,
            &self.core.params,
            &self.core.flags,
            workload,
            design,
        )?;
        self.state
            .trace
            .count(Counter::OptimizerInvocations, 2 * workload.len() as u64);
        Ok(r)
    }

    // ---------- scenario 3: automatic index suggestion ----------

    /// Suggest indexes for the workload under a storage budget.
    pub fn suggest_indexes(
        &self,
        workload: &[Select],
        budget_bytes: u64,
        method: SelectionMethod,
    ) -> Result<IndexSuggestion, ParindaError> {
        self.suggest_indexes_with(workload, budget_bytes, method, &IlpOptions::default())
    }

    /// [`Parinda::suggest_indexes`] with the paper's additional DBA
    /// constraints: per-query workload weights and an update-cost cap
    /// (only the ILP honors the extra options; the greedy baseline uses
    /// the plain budget).
    pub fn suggest_indexes_with(
        &self,
        workload: &[Select],
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
    ) -> Result<IndexSuggestion, ParindaError> {
        self.suggest_indexes_inner(workload, None, budget_bytes, method, options)
    }

    /// [`Parinda::suggest_indexes_with`] over weighted statements: each
    /// query carries a multiplicity (template weights from workload
    /// compression). The INUM model is built weighted — budgeted cache
    /// population covers the heaviest templates first — and every
    /// reported cost is the weighted sum. With all weights 1.0 this is
    /// exactly [`Parinda::suggest_indexes_with`].
    pub fn suggest_indexes_weighted(
        &self,
        workload: &[Select],
        weights: &[f64],
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
    ) -> Result<IndexSuggestion, ParindaError> {
        self.suggest_indexes_inner(workload, Some(weights), budget_bytes, method, options)
    }

    /// The 100k-statement path (scenario 3 at scale): cluster the raw
    /// statement stream into weighted templates, then advise over the
    /// templates. Advising work scales with the number of *templates*,
    /// not statements; the selection equals advising over the raw stream
    /// because the weighted template cost is exactly the stream's total.
    /// Returns the suggestion plus the compression itself (for the
    /// console's `workload stats`).
    pub fn suggest_indexes_compressed(
        &self,
        workload: &parinda_workload::Workload,
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
    ) -> Result<(IndexSuggestion, parinda_workload::CompressedWorkload), ParindaError> {
        let compressed = parinda_workload::compress_workload_traced(workload, &self.state.trace);
        let queries = compressed.queries();
        let weights = compressed.weights();
        let suggestion =
            self.suggest_indexes_inner(&queries, Some(&weights), budget_bytes, method, options)?;
        Ok((suggestion, compressed))
    }

    fn suggest_indexes_inner(
        &self,
        workload: &[Select],
        weights: Option<&[f64]>,
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
    ) -> Result<IndexSuggestion, ParindaError> {
        self.suggest_indexes_core(workload, weights, None, budget_bytes, method, options, &[], &[])
    }

    /// The streaming advisor entry point (continuous tuning): advise over
    /// the epoch's templates `workload`/`weights`, incrementally
    /// maintaining the INUM model from the `previous` epoch's templates
    /// via [`InumModel::apply_delta`] when given — only new-or-vanished
    /// templates are re-bound/re-populated; everything carried over is
    /// bit-identical to a from-scratch weighted build. `pinned` /
    /// `banned` are index names (the `idx_<table>_<cols>` display form, a
    /// real catalog index name, or an explicit `table(col, col)` spec):
    /// pins are forced into the design budget-first, bans never enter the
    /// solver's search space.
    #[allow(clippy::too_many_arguments)]
    pub fn suggest_indexes_stream(
        &self,
        workload: &[Select],
        weights: &[f64],
        previous: Option<(&[Select], &[f64])>,
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
        pinned: &[String],
        banned: &[String],
    ) -> Result<IndexSuggestion, ParindaError> {
        self.suggest_indexes_core(
            workload,
            Some(weights),
            previous,
            budget_bytes,
            method,
            options,
            pinned,
            banned,
        )
    }

    /// Resolve a DBA-supplied index name into a [`CandidateIndex`]:
    /// first a generated candidate whose display name matches, then a
    /// real catalog index with that name, then an explicit
    /// `table(col, col)` spec. Anything else is a typed advisor error.
    fn resolve_candidate(
        &self,
        cands: &[CandidateIndex],
        name: &str,
    ) -> Result<CandidateIndex, ParindaError> {
        let name = name.trim();
        for c in cands {
            if let Some(table) = self.core.catalog.table(c.table) {
                if c.display_name(table) == name {
                    return Ok(c.clone());
                }
            }
        }
        if let Some(idx) = self.core.catalog.index_by_name(name) {
            return Ok(CandidateIndex::new(idx.table, idx.key_columns.clone()));
        }
        if let Some((table_name, rest)) = name.split_once('(') {
            let table = self
                .core
                .catalog
                .table_by_name(table_name.trim())
                .ok_or_else(|| {
                    ParindaError::Advisor(format!("unknown table in index spec `{name}`"))
                })?;
            let cols: Option<Vec<usize>> = rest
                .trim_end_matches(')')
                .split(',')
                .map(|c| table.column_index(c.trim()))
                .collect();
            match cols {
                Some(cols) if !cols.is_empty() => {
                    return Ok(CandidateIndex::new(table.id, cols));
                }
                _ => {
                    return Err(ParindaError::Advisor(format!(
                        "unknown column in index spec `{name}`"
                    )))
                }
            }
        }
        Err(ParindaError::Advisor(format!(
            "unknown index `{name}`: not a suggested candidate, a catalog index, \
             or a `table(col, col)` spec"
        )))
    }

    #[allow(clippy::too_many_arguments)]
    fn suggest_indexes_core(
        &self,
        workload: &[Select],
        weights: Option<&[f64]>,
        previous: Option<(&[Select], &[f64])>,
        budget_bytes: u64,
        method: SelectionMethod,
        options: &IlpOptions,
        pinned: &[String],
        banned: &[String],
    ) -> Result<IndexSuggestion, ParindaError> {
        let budget = self.start_budget();
        let mut model = match previous {
            // Incremental path: rebuild the previous epoch's model (its
            // case lists come straight out of the shared plan cache —
            // warm, no planning) and delta it onto the new templates.
            Some((prev_workload, prev_weights)) if !prev_workload.is_empty() => {
                let mut model = {
                    let _s = self.state.trace.span("inum_build");
                    InumModel::build_shared_traced(
                        &self.core.catalog,
                        prev_workload,
                        Some(prev_weights),
                        self.core.params.clone(),
                        InumOptions::default(),
                        self.state.par,
                        &Budget::unlimited().with_cancel(self.state.cancel.clone()),
                        self.state.trace.clone(),
                        &self.core.plan_cache,
                    )?
                };
                let weights_vec: Vec<f64> =
                    weights.map(|w| w.to_vec()).unwrap_or_else(|| vec![1.0; workload.len()]);
                model.apply_delta(workload, &weights_vec)?;
                model
            }
            _ => {
                let _s = self.state.trace.span("inum_build");
                InumModel::build_shared_traced(
                    &self.core.catalog,
                    workload,
                    weights,
                    self.core.params.clone(),
                    InumOptions::default(),
                    self.state.par,
                    &budget,
                    self.state.trace.clone(),
                    &self.core.plan_cache,
                )?
            }
        };
        let inum_skipped = model.degraded_queries();
        let queries = model.queries().to_vec();
        let cands = generate_candidates(&queries, CandidateLimits::default());
        let constraints = if pinned.is_empty() && banned.is_empty() {
            SolverConstraints::none()
        } else {
            let pinned_c: Vec<CandidateIndex> = pinned
                .iter()
                .map(|n| self.resolve_candidate(&cands, n))
                .collect::<Result<_, _>>()?;
            let banned_c: Vec<CandidateIndex> = banned
                .iter()
                .map(|n| self.resolve_candidate(&cands, n))
                .collect::<Result<_, _>>()?;
            // Conflicts are detected on the *resolved* candidates, not
            // the spellings: `orders(o_custkey)` and its generated
            // `idx_orders_o_custkey` display name are the same index.
            if let Some(i) = pinned_c.iter().position(|p| banned_c.contains(p)) {
                return Err(ParindaError::Advisor(format!(
                    "index `{}` is both pinned and banned",
                    pinned[i]
                )));
            }
            SolverConstraints { pinned: pinned_c, banned: banned_c }
        };
        let sel = match method {
            SelectionMethod::Ilp => select_indexes_ilp_constrained(
                &mut model,
                &cands,
                budget_bytes,
                options,
                &budget,
                &constraints,
            ),
            SelectionMethod::Greedy => select_indexes_greedy_constrained(
                &mut model,
                &cands,
                budget_bytes,
                &budget,
                &constraints,
            ),
        };

        let cfg = Configuration::from_ids(sel.chosen.iter().copied());
        let mut indexes = Vec::new();
        for &id in &sel.chosen {
            let c = model.candidate(id);
            let table = self.core.catalog.table(c.table).ok_or_else(|| {
                ParindaError::Internal("candidate references a vanished table".into())
            })?;
            indexes.push(SuggestedIndex {
                name: c.display_name(table),
                table: table.name.clone(),
                columns: c
                    .columns
                    .iter()
                    .filter_map(|&i| table.columns.get(i).map(|c| c.name.clone()))
                    .collect(),
                size_bytes: model.candidate_size(id),
            });
        }

        // Per-query feature attribution: which chosen indexes help which
        // query ("for each query the list of the used suggested indexes").
        let per_query = workload
            .iter()
            .zip(&sel.per_query)
            .map(|(sql, &(before, after))| {
                let mut features = Vec::new();
                if after < before * 0.9999 {
                    for (&id, info) in sel.chosen.iter().zip(&indexes) {
                        let without: Vec<_> =
                            sel.chosen.iter().copied().filter(|&x| x != id).collect();
                        let qidx = workload.iter().position(|w| w == sql).unwrap_or(0);
                        let cost_without =
                            model.cost(qidx, &Configuration::from_ids(without));
                        if cost_without > after * 1.0001 {
                            features.push(info.name.clone());
                        }
                    }
                }
                crate::report::QueryBenefit {
                    sql: sql.to_string(),
                    cost_before: before,
                    cost_after: after,
                    features_used: features,
                }
            })
            .collect();
        let _ = cfg;

        let degraded = sel.degraded || inum_skipped > 0;
        if degraded {
            self.state.trace.count(Counter::BudgetDegradations, 1);
        }
        let budget_report = degraded
            .then(|| sel.budget.clone().unwrap_or_else(|| budget.report(0, inum_skipped)));
        Ok(IndexSuggestion {
            indexes,
            report: BenefitReport { per_query, design_bytes: sel.total_size },
            proven_optimal: sel.proven_optimal && inum_skipped == 0,
            degraded,
            budget: budget_report,
        })
    }

    /// Physically create the suggested indexes ("the user has the option to
    /// physically create the suggested set of indexes on disk"). Requires
    /// loaded data.
    pub fn materialize_indexes(
        &mut self,
        suggestion: &IndexSuggestion,
    ) -> Result<Vec<IndexId>, ParindaError> {
        let core = self.privatize();
        let mut out = Vec::new();
        for idx in &suggestion.indexes {
            if core.db.heap(core.catalog.table_by_name(&idx.table).ok_or(ParindaError::NoData)?.id).is_none() {
                return Err(ParindaError::NoData);
            }
            let cols: Vec<&str> = idx.columns.iter().map(|s| s.as_str()).collect();
            let id = core
                .catalog
                .create_index(&idx.name, &idx.table, &cols)
                .ok_or_else(|| ParindaError::Advisor(format!("cannot create {}", idx.name)))?;
            core.db.build_index(&mut core.catalog, id);
            out.push(id);
        }
        Ok(out)
    }

    /// Physically create suggested partitions: real tables loaded with the
    /// projected rows ("the user has the option to physically create on
    /// disk the suggested partitions"). Requires loaded parent data.
    pub fn materialize_partitions(
        &mut self,
        suggestion: &PartitionSuggestionReport,
    ) -> Result<Vec<parinda_catalog::TableId>, ParindaError> {
        let core = self.privatize();
        let mut out = Vec::new();
        for (sp, nf) in suggestion.partitions.iter().zip(&suggestion.design.fragments) {
            let parent = core
                .catalog
                .table_by_name(&sp.table)
                .ok_or_else(|| ParindaError::Advisor(format!("unknown table {}", sp.table)))?
                .clone();
            let heap_missing = core.db.heap(parent.id).is_none();
            if heap_missing {
                return Err(ParindaError::NoData);
            }
            // Fragment columns: PK first, then the fragment's columns.
            let mut cols: Vec<usize> = parent.primary_key.clone();
            for &c in &nf.fragment.columns {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let col_defs: Vec<parinda_catalog::Column> =
                cols.iter().map(|&i| parent.columns[i].clone()).collect();
            let rows: Vec<Vec<parinda_catalog::Datum>> = {
                let heap = core.db.heap(parent.id).ok_or(ParindaError::NoData)?;
                heap.scan()
                    .map(|(_, row)| cols.iter().map(|&i| row[i].clone()).collect())
                    .collect()
            };
            let id = core.catalog.create_table(&sp.name, col_defs, 0);
            let part = core.catalog.table_mut(id).ok_or_else(|| {
                ParindaError::Internal("freshly created partition vanished".into())
            })?;
            part.primary_key = (0..parent.primary_key.len()).collect();
            part.partition_of = Some(parent.id);
            core.db
                .load_table(&mut core.catalog, id, rows)
                .map_err(|e| ParindaError::Advisor(e.to_string()))?;
            core.db.analyze_table(&mut core.catalog, id);
            out.push(id);
        }
        Ok(out)
    }

    /// Suggest *dropping* real indexes the workload does not need: for each
    /// existing index, simulate its absence (the what-if join of "presence
    /// or lack" of features, §3.2) and report those whose removal leaves
    /// the workload cost unchanged, together with the bytes reclaimed.
    pub fn suggest_drops(&self, workload: &[Select]) -> Result<Vec<DropSuggestion>, ParindaError> {
        let base: f64 = self.workload_cost(workload)?;
        let mut out = Vec::new();
        for idx in self.core.catalog.all_indexes().to_vec() {
            let design = Design { drop_indexes: vec![idx.name.clone()], ..Default::default() };
            let overlay = design.apply(&self.core.catalog)?;
            let mut without = 0.0;
            for sel in workload {
                let q = bind(sel, &overlay)?;
                let p = plan_query(&q, &overlay, &self.core.params, &self.core.flags)?;
                without += p.cost.total;
            }
            if without <= base * 1.0001 {
                let table = self
                    .core
                    .catalog
                    .table(idx.table)
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                out.push(DropSuggestion {
                    index: idx.name.clone(),
                    table,
                    reclaimed_bytes: idx.size_bytes(),
                    cost_delta: without - base,
                });
            }
        }
        Ok(out)
    }

    // ---------- scenario 2: automatic partition suggestion ----------

    /// Suggest table partitions for the workload (scenario 2 / Figure 2).
    pub fn suggest_partitions(
        &self,
        workload: &[Select],
        config: AutoPartConfig,
    ) -> Result<PartitionSuggestionReport, ParindaError> {
        let budget = self.start_budget();
        let sugg = suggest_partitions_traced(
            &self.core.catalog,
            workload,
            config,
            self.state.par,
            &budget,
            &self.state.trace,
        )?;
        if sugg.degraded {
            self.state.trace.count(Counter::BudgetDegradations, 1);
        }

        let mut partitions = Vec::with_capacity(sugg.design.fragments.len());
        for nf in &sugg.design.fragments {
            let parent = self.core.catalog.table(nf.fragment.table).ok_or_else(|| {
                ParindaError::Internal("suggested fragment references a vanished table".into())
            })?;
            partitions.push(SuggestedPartition {
                name: nf.name.clone(),
                table: parent.name.clone(),
                columns: nf
                    .fragment
                    .columns
                    .iter()
                    .filter_map(|&i| parent.columns.get(i).map(|c| c.name.clone()))
                    .collect(),
            });
        }

        let per_query = workload
            .iter()
            .zip(&sugg.per_query)
            .zip(&sugg.rewritten)
            .map(|((sql, &(before, after)), rw)| {
                // features = the partitions the rewritten statement touches
                let mut features: Vec<String> = sugg
                    .design
                    .fragments
                    .iter()
                    .filter(|nf| rw.from.iter().any(|t| t.name == nf.name))
                    .map(|nf| nf.name.clone())
                    .collect();
                features.dedup();
                crate::report::QueryBenefit {
                    sql: sql.to_string(),
                    cost_before: before,
                    cost_after: after,
                    features_used: features,
                }
            })
            .collect();

        Ok(PartitionSuggestionReport {
            partitions,
            report: BenefitReport { per_query, design_bytes: 0 },
            rewritten: sugg.rewritten,
            design: sugg.design,
            iterations: sugg.iterations,
            degraded: sugg.degraded,
            budget: sugg.budget,
        })
    }
}
