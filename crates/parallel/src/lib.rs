//! # parinda-parallel
//!
//! A small std-only execution engine for PARINDA's embarrassingly
//! parallel what-if evaluation loops: INUM cache population, the ILP
//! benefit matrix, and AutoPart's per-round candidate sweep are all
//! independent per query/configuration, so they fan out over a scoped
//! thread pool here.
//!
//! Design rules that keep parallel results **bit-identical** to
//! sequential execution at any thread count:
//!
//! * workers only compute *pure* per-item values — all side effects
//!   (memo merges, reductions, error selection) happen on the caller's
//!   thread, in input order;
//! * [`par_map`] / [`par_map_indexed`] return results ordered by input
//!   index regardless of completion order;
//! * [`ordered_sum`] reduces strictly in input order, so floating-point
//!   rounding matches the sequential loop exactly.
//!
//! Work distribution is dynamic: workers claim chunks of indexes from a
//! shared atomic cursor, so skewed item costs (one huge query among
//! thirty) don't serialize the sweep.
//!
//! ## Panic containment
//!
//! PARINDA is an interactive tool: a panic inside one what-if evaluation
//! must never tear down the DBA's session. Every item runs under
//! [`std::panic::catch_unwind`], and [`par_try_map`] /
//! [`par_try_map_indexed`] surface a worker panic to the caller as a
//! [`WorkerPanic`] **error** instead of unwinding. The error is
//! deterministic: all items are evaluated regardless of failures, and the
//! panic at the **lowest input index** is reported, so the same workload
//! yields the same error at any thread count. [`par_map`] /
//! [`par_map_indexed`] keep their infallible signatures by re-raising the
//! (equally deterministic) [`WorkerPanic`] as a panic on the *caller's*
//! thread, where an interactive frontend's `catch_unwind` backstop can
//! contain it.

//!
//! ## Budgets and cancellation
//!
//! Every sweep can be made *anytime*: [`par_try_map_budgeted`] /
//! [`par_map_budgeted`] take a [`Budget`] (wall-clock deadline on a
//! monotonic clock, optional round cap, [`CancelToken`]) that workers
//! poll **between chunk claims**, and return a [`Partial`] covering a
//! contiguous prefix of the input. Degraded results keep a deterministic
//! shape: which inputs were evaluated is always `0..done.len()`, never a
//! scheduling-dependent subset.

#![deny(missing_docs)]

mod budget;

pub use budget::{Budget, BudgetReport, CancelToken, Partial};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the auto-detected thread count.
pub const THREADS_ENV: &str = "PARINDA_THREADS";

/// Thread-count policy for the evaluation engine.
///
/// `Parallelism` is resolved at construction: `auto()` consults the
/// `PARINDA_THREADS` environment variable and then the machine's
/// available parallelism, so a constructed value is a plain count and
/// two equal values always behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Auto-detect: `PARINDA_THREADS` if set and valid, otherwise the
    /// machine's available parallelism, otherwise 1.
    pub fn auto() -> Self {
        if let Some(n) = env_threads() {
            return Parallelism::fixed(n);
        }
        let n = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism::fixed(n)
    }

    /// Exactly `n` threads (clamped to at least 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism { threads: NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero") }
    }

    /// Single-threaded execution.
    pub fn sequential() -> Self {
        Parallelism::fixed(1)
    }

    /// The resolved thread count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Does this policy run everything on the calling thread?
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// The `PARINDA_THREADS` override, if set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV).ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// How many indexes a worker claims per grab: enough to amortize the
/// atomic increment on microsecond-scale items, small enough to balance
/// skewed workloads.
fn chunk_size(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).max(1)
}

/// A worker panic caught at the parallel boundary.
///
/// Deterministic by construction: every item is evaluated even after a
/// failure, and the panic with the **lowest input index** is the one
/// reported, so equal inputs produce an equal `WorkerPanic` at any
/// thread count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkerPanic {
    /// Input index of the item whose evaluation panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// kept verbatim; anything else becomes a fixed placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallel worker panicked at item {}: {}", self.index, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a caught panic payload as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one item under `catch_unwind`, rendering any panic to text
/// immediately so no payload crosses a thread boundary.
fn run_item<R, F: Fn(usize) -> R>(f: &F, i: usize) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if parinda_failpoint::should_fail("parallel::item") {
            panic!("failpoint parallel::item: injected error");
        }
        f(i)
    }))
    .map_err(|p| panic_message(&*p))
}

/// Map `f` over `0..n` on the pool, returning results in index order, or
/// the deterministic [`WorkerPanic`] of the lowest-index item that
/// panicked.
///
/// `f` must be pure (or internally synchronized); it may run on any
/// worker in any order, but the output vector is always `[f(0), f(1),
/// …, f(n-1)]`. A panic in `f` never unwinds through this call and never
/// aborts sibling items: all `n` items are evaluated, then the error for
/// the lowest panicking index is returned — identical at any thread
/// count.
pub fn par_try_map_indexed<R, F>(par: Parallelism, n: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = par.threads().min(n.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<WorkerPanic> = None;
        for i in 0..n {
            match run_item(&f, i) {
                Ok(r) => out.push(r),
                Err(message) => {
                    if first_panic.is_none() {
                        first_panic = Some(WorkerPanic { index: i, message });
                    }
                }
            }
        }
        return match first_panic {
            None => Ok(out),
            Some(p) => Err(p),
        };
    }

    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, Result<R, String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, Result<R, String>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            out.push((i, run_item(&f, i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    // Reassemble in input order — determinism does not depend on which
    // worker computed what. The lowest-index panic wins.
    let mut slots: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<WorkerPanic> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.expect("every index computed exactly once") {
            Ok(r) => out.push(r),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some(WorkerPanic { index: i, message });
                }
            }
        }
    }
    match first_panic {
        None => Ok(out),
        Some(p) => Err(p),
    }
}

/// Map `f` over a slice on the pool, preserving input order and catching
/// worker panics (see [`par_try_map_indexed`]).
pub fn par_try_map<'a, T, R, F>(
    par: Parallelism,
    items: &'a [T],
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    par_try_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// Map `f` over `0..n` on the pool, returning results in index order.
///
/// Infallible variant of [`par_try_map_indexed`]: a panic in `f` is
/// contained at the worker, then re-raised **on the caller's thread** with
/// the deterministic lowest-index [`WorkerPanic`] message, so a frontend
/// `catch_unwind` sees the same failure at any thread count and the
/// scoped pool always shuts down cleanly first.
pub fn par_map_indexed<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match par_try_map_indexed(par, n, f) {
        Ok(out) => out,
        Err(p) => panic!("{p}"),
    }
}

/// Map `f` over a slice on the pool, preserving input order.
pub fn par_map<'a, T, R, F>(par: Parallelism, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    par_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// Map `f` over `0..n` on the pool under a [`Budget`], returning the
/// results for a **contiguous prefix** of the input plus a skipped
/// count.
///
/// Workers poll `budget.interrupted()` between chunk claims (and the
/// sequential path polls between items), so a deadline or a
/// [`CancelToken`] stops the sweep at the next iteration boundary. To
/// keep the degraded result's shape deterministic, completed items
/// beyond the longest contiguous prefix are discarded: `done` always
/// covers exactly inputs `0..done.len()`. A panic at an index inside
/// that prefix is reported (lowest index wins, as in
/// [`par_try_map_indexed`]); panics beyond the prefix are discarded with
/// their results.
///
/// Under an unlimited budget this is equivalent to
/// [`par_try_map_indexed`]: every item is evaluated and `skipped == 0`.
pub fn par_try_map_budgeted<R, F>(
    par: Parallelism,
    n: usize,
    budget: &Budget,
    f: F,
) -> Result<Partial<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = par.threads().min(n.max(1));
    if threads <= 1 {
        let mut done = Vec::with_capacity(n);
        let mut first_panic: Option<WorkerPanic> = None;
        let mut completed = 0usize;
        for i in 0..n {
            if budget.interrupted() {
                break;
            }
            match run_item(&f, i) {
                Ok(r) => done.push(r),
                Err(message) => {
                    if first_panic.is_none() {
                        first_panic = Some(WorkerPanic { index: i, message });
                    }
                }
            }
            completed = i + 1;
        }
        return match first_panic {
            None => Ok(Partial { done, skipped: n - completed }),
            Some(p) => Err(p),
        };
    }

    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, Result<R, String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, Result<R, String>)> = Vec::new();
                    loop {
                        if budget.interrupted() {
                            break;
                        }
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            out.push((i, run_item(&f, i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    // Keep the longest contiguous prefix of completed slots; everything
    // after the first gap was computed out of order past an interrupted
    // chunk and is discarded so the partial result has a deterministic
    // shape.
    let mut slots: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
    }
    let mut done = Vec::with_capacity(n);
    let mut first_panic: Option<WorkerPanic> = None;
    let mut prefix = 0usize;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            None => break,
            Some(Ok(r)) => done.push(r),
            Some(Err(message)) => {
                if first_panic.is_none() {
                    first_panic = Some(WorkerPanic { index: i, message });
                }
            }
        }
        prefix = i + 1;
    }
    match first_panic {
        None => Ok(Partial { done, skipped: n - prefix }),
        Some(p) => Err(p),
    }
}

/// Traced variant of [`par_try_map_indexed`]: one span at `path` covers
/// the whole sweep, and a surfaced [`WorkerPanic`] bumps the
/// `worker_panics_recovered` counter.
///
/// Span hand-off across workers needs no thread-local state: spans are
/// identified by stable paths, and the `Trace` handle is `Sync`, so a
/// worker closure that wants sub-spans simply captures `&Trace` and
/// records under a child path (`"<path>/…"`) — the sink aggregates the
/// same totals the sequential run would. Tracing never perturbs results:
/// the output vector (and any error) is exactly that of
/// [`par_try_map_indexed`].
pub fn par_try_map_indexed_traced<R, F>(
    par: Parallelism,
    n: usize,
    trace: &parinda_trace::Trace,
    path: &'static str,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _span = trace.span(path);
    let out = par_try_map_indexed(par, n, f);
    if out.is_err() {
        trace.count(parinda_trace::Counter::WorkerPanicsRecovered, 1);
    }
    out
}

/// Traced variant of [`par_try_map_budgeted`]: one span at `path` covers
/// the sweep and a surfaced [`WorkerPanic`] bumps
/// `worker_panics_recovered`. Results are exactly those of
/// [`par_try_map_budgeted`]; what a skipped item *means* (a query, a
/// candidate) is context the caller has, so skip counters stay at the
/// call sites.
pub fn par_try_map_budgeted_traced<R, F>(
    par: Parallelism,
    n: usize,
    budget: &Budget,
    trace: &parinda_trace::Trace,
    path: &'static str,
    f: F,
) -> Result<Partial<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _span = trace.span(path);
    let out = par_try_map_budgeted(par, n, budget, f);
    if out.is_err() {
        trace.count(parinda_trace::Counter::WorkerPanicsRecovered, 1);
    }
    out
}

/// Budgeted variant of [`par_map`]: map `f` over a slice under a
/// [`Budget`], returning a contiguous-prefix [`Partial`]. A worker panic
/// inside the prefix is re-raised on the caller's thread (deterministic
/// lowest-index message), as in [`par_map_indexed`].
pub fn par_map_budgeted<'a, T, R, F>(
    par: Parallelism,
    items: &'a [T],
    budget: &Budget,
    f: F,
) -> Partial<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    match par_try_map_budgeted(par, items.len(), budget, |i| f(&items[i])) {
        Ok(partial) => partial,
        Err(p) => panic!("{p}"),
    }
}

/// Compute `n` `f64` terms in parallel, then reduce **in input order**,
/// so the floating-point sum is bit-identical to the sequential loop.
pub fn ordered_sum<F>(par: Parallelism, n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if par.is_sequential() || n < 2 {
        return (0..n).map(f).sum();
    }
    par_map_indexed(par, n, f).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_input_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_indexed(Parallelism::fixed(threads), 1000, |i| i * i);
            assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_over_slice() {
        let items: Vec<String> = (0..64).map(|i| format!("q{i}")).collect();
        let out = par_map(Parallelism::fixed(4), &items, |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = par_map_indexed(Parallelism::fixed(8), 0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(Parallelism::fixed(8), 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_index_computed_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = par_map_indexed(Parallelism::fixed(7), 333, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 333);
        assert_eq!(out.len(), 333);
    }

    #[test]
    fn ordered_sum_is_bit_identical_across_thread_counts() {
        // Terms chosen so that summation order changes the rounding.
        let term = |i: usize| ((i as f64) * 1.000_000_1).powf(1.5) + 1e-9 / ((i + 1) as f64);
        let seq = ordered_sum(Parallelism::sequential(), 10_000, term);
        for threads in [2, 5, 16] {
            let par = ordered_sum(Parallelism::fixed(threads), 10_000, term);
            assert_eq!(seq.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert!(Parallelism::fixed(0).is_sequential());
        assert!(!Parallelism::fixed(2).is_sequential());
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(Parallelism::fixed(4), 100, |i| {
                if i == 57 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    /// A panicking item surfaces as an error, not an unwind, and the
    /// error is identical at every thread count (lowest index wins).
    #[test]
    fn try_map_contains_panics_deterministically() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |threads: usize| {
            par_try_map_indexed(Parallelism::fixed(threads), 200, |i| {
                if i == 31 || i == 163 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        };
        let expected = Err(WorkerPanic { index: 31, message: "boom at 31".into() });
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(run(threads), expected, "threads={threads}");
        }
        std::panic::set_hook(quiet);
    }

    #[test]
    fn try_map_ok_matches_par_map() {
        let ok = par_try_map_indexed(Parallelism::fixed(4), 100, |i| i + 1).unwrap();
        assert_eq!(ok, (1..=100).collect::<Vec<_>>());
        let slice: Vec<u32> = (0..50).collect();
        let out = par_try_map(Parallelism::fixed(3), &slice, |&x| x * 3).unwrap();
        assert_eq!(out, slice.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    /// An unlimited budget makes the budgeted map equivalent to the
    /// plain one: every item done, none skipped, at any thread count.
    #[test]
    fn budgeted_map_unlimited_is_complete() {
        for threads in [1, 2, 8] {
            let partial = par_try_map_budgeted(
                Parallelism::fixed(threads),
                500,
                &Budget::unlimited(),
                |i| i * 3,
            )
            .unwrap();
            assert!(partial.is_complete(), "threads={threads}");
            assert_eq!(partial.done, (0..500).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    /// A pre-cancelled budget stops the sweep before any work: the
    /// degenerate-but-valid empty prefix.
    #[test]
    fn budgeted_map_cancelled_before_start() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 2, 8] {
            let partial = par_try_map_budgeted(
                Parallelism::fixed(threads),
                100,
                &Budget::unlimited().with_cancel(token.clone()),
                |i| i,
            )
            .unwrap();
            assert_eq!(partial.done.len(), 0, "threads={threads}");
            assert_eq!(partial.skipped, 100, "threads={threads}");
        }
    }

    /// An expired deadline mid-sweep yields a contiguous prefix: the
    /// done results are exactly `f(0..done.len())`.
    #[test]
    fn budgeted_map_partial_is_contiguous_prefix() {
        let hits = AtomicU64::new(0);
        let token = CancelToken::new();
        let tok = token.clone();
        // Cancel after ~40 items have been evaluated (any thread).
        let partial = par_try_map_budgeted(
            Parallelism::fixed(4),
            10_000,
            &Budget::unlimited().with_cancel(token.clone()),
            move |i| {
                if hits.fetch_add(1, Ordering::Relaxed) == 40 {
                    tok.cancel();
                }
                i * 2
            },
        )
        .unwrap();
        assert!(partial.skipped > 0, "cancellation should have skipped the tail");
        assert_eq!(partial.done.len() + partial.skipped, 10_000);
        assert_eq!(partial.done, (0..partial.done.len()).map(|i| i * 2).collect::<Vec<_>>());
    }

    /// A panic inside the prefix of a budgeted sweep surfaces as the
    /// same deterministic WorkerPanic error as the unbudgeted map.
    #[test]
    fn budgeted_map_reports_prefix_panic() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 2, 8] {
            let r = par_try_map_budgeted(
                Parallelism::fixed(threads),
                50,
                &Budget::unlimited(),
                |i| {
                    if i == 11 {
                        panic!("boom at {i}");
                    }
                    i
                },
            );
            assert_eq!(
                r,
                Err(WorkerPanic { index: 11, message: "boom at 11".into() }),
                "threads={threads}"
            );
        }
        std::panic::set_hook(quiet);
    }

    /// The traced wrappers return exactly what the plain maps return and
    /// record one span per sweep, at any thread count.
    #[test]
    fn traced_maps_match_untraced_and_record_spans() {
        let trace = parinda_trace::Trace::recording();
        for threads in [1, 2, 8] {
            let out =
                par_try_map_indexed_traced(Parallelism::fixed(threads), 100, &trace, "sweep", |i| {
                    i * 2
                })
                .unwrap();
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>(), "threads={threads}");
            let partial = par_try_map_budgeted_traced(
                Parallelism::fixed(threads),
                100,
                &Budget::unlimited(),
                &trace,
                "sweep/budgeted",
                |i| i,
            )
            .unwrap();
            assert!(partial.is_complete(), "threads={threads}");
        }
        let r = trace.snapshot();
        assert_eq!(r.spans["sweep"].count, 3);
        assert_eq!(r.spans["sweep/budgeted"].count, 3);
    }

    /// A disabled trace changes nothing and records nothing.
    #[test]
    fn traced_maps_with_disabled_trace_are_transparent() {
        let trace = parinda_trace::Trace::disabled();
        let out =
            par_try_map_indexed_traced(Parallelism::fixed(3), 50, &trace, "sweep", |i| i + 1)
                .unwrap();
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        assert!(trace.snapshot().spans.is_empty());
    }

    /// A contained worker panic bumps the recovery counter while the
    /// error stays identical to the untraced variant.
    #[test]
    fn traced_map_counts_recovered_panics() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let trace = parinda_trace::Trace::recording();
        let r = par_try_map_indexed_traced(Parallelism::fixed(4), 20, &trace, "sweep", |i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i
        });
        assert_eq!(r, Err(WorkerPanic { index: 5, message: "boom at 5".into() }));
        assert_eq!(
            trace.snapshot().counter(parinda_trace::Counter::WorkerPanicsRecovered),
            1
        );
        std::panic::set_hook(quiet);
    }

    /// Non-string panic payloads are rendered to a fixed placeholder, so
    /// the error stays comparable and `Send`.
    #[test]
    fn non_string_payloads_render_fixed_text() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = par_try_map_indexed(Parallelism::fixed(2), 4, |i| {
            if i == 2 {
                std::panic::panic_any(42_u64);
            }
            i
        });
        assert_eq!(
            r,
            Err(WorkerPanic { index: 2, message: "non-string panic payload".into() })
        );
        std::panic::set_hook(quiet);
    }
}
