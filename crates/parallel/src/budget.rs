//! Budgets and cooperative cancellation for anytime advisor runs.
//!
//! PARINDA is interactive: every long-running advisor path must be able
//! to stop at an iteration boundary and return its best-so-far answer.
//! Two primitives carry that contract through the stack:
//!
//! * [`CancelToken`] — a shared flag the console (or a Ctrl-C handler)
//!   flips; workers and advisor loops poll it cooperatively.
//! * [`Budget`] — a wall-clock deadline on a **monotonic clock**
//!   ([`std::time::Instant`]), an optional cap on *rounds* (iteration
//!   counts — deterministic, scheduling-independent), and a cancel
//!   token, checked together at iteration boundaries.
//!
//! A run that stops early reports how far it got via [`BudgetReport`],
//! and the budgeted parallel maps return [`Partial`] — always a
//! **contiguous prefix** of the input, so the *shape* of a degraded
//! result never depends on thread scheduling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, cheaply cloneable and shareable
/// across threads. Cancellation is level-triggered: once [`cancel`]ed,
/// every holder observes it until [`reset`].
///
/// [`cancel`]: CancelToken::cancel
/// [`reset`]: CancelToken::reset
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Safe to call from any thread, including a
    /// signal handler's notify thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clear the flag (re-arm the token for the next operation).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A resource budget for one advisor run: wall-clock deadline, optional
/// round cap, cancel token. Checked *cooperatively* at iteration
/// boundaries — nothing is preempted, so a run always stops at a
/// consistent state and can return best-so-far.
///
/// The deadline uses [`Instant`] (monotonic), so system clock jumps
/// never extend or cut a budget. The round cap exists so tests can
/// express a deadline deterministically: "stop after 3 rounds" behaves
/// identically at any thread count and machine speed, where "stop after
/// 1 ms" does not.
#[derive(Debug, Clone)]
pub struct Budget {
    started: Instant,
    deadline: Option<Instant>,
    max_rounds: Option<usize>,
    cancel: CancelToken,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No limits: never interrupted (unless a cancel token is attached
    /// and fired). Budgeted code paths under an unlimited budget produce
    /// bit-identical results to their unbudgeted counterparts.
    pub fn unlimited() -> Self {
        Budget {
            started: Instant::now(),
            deadline: None,
            max_rounds: None,
            cancel: CancelToken::new(),
        }
    }

    /// A wall-clock budget of `ms` milliseconds, starting now.
    pub fn deadline_ms(ms: u64) -> Self {
        let now = Instant::now();
        Budget {
            started: now,
            deadline: Some(now + Duration::from_millis(ms)),
            max_rounds: None,
            cancel: CancelToken::new(),
        }
    }

    /// A deterministic budget of at most `n` rounds (no wall-clock
    /// component).
    pub fn rounds(n: usize) -> Self {
        Budget {
            started: Instant::now(),
            deadline: None,
            max_rounds: Some(n),
            cancel: CancelToken::new(),
        }
    }

    /// Attach a cancel token (shared with the console / Ctrl-C handler).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Add a round cap to an existing budget.
    pub fn with_rounds(mut self, n: usize) -> Self {
        self.max_rounds = Some(n);
        self
    }

    /// Is any limit configured? (`false` means only an attached cancel
    /// token can interrupt the run.)
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_rounds.is_some()
    }

    /// The round cap, if one is set.
    pub fn max_rounds(&self) -> Option<usize> {
        self.max_rounds
    }

    /// The wall-clock deadline, if one is set (for handing to
    /// sub-solvers with their own limit structs).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Should work stop *now*? True once cancelled or past the deadline.
    /// This is the check workers poll between chunk claims; it is cheap
    /// (one relaxed atomic load, one `Instant::now` when a deadline is
    /// set).
    pub fn interrupted(&self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Should the loop stop before starting round `rounds_done` (0-based
    /// count of rounds already completed)? Combines [`interrupted`] with
    /// the round cap.
    ///
    /// [`interrupted`]: Budget::interrupted
    pub fn exceeded(&self, rounds_done: usize) -> bool {
        if let Some(max) = self.max_rounds {
            if rounds_done >= max {
                return true;
            }
        }
        self.interrupted()
    }

    /// Wall-clock time since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Snapshot a report for a run that used this budget.
    pub fn report(&self, rounds_completed: usize, candidates_skipped: usize) -> BudgetReport {
        BudgetReport { elapsed: self.elapsed(), rounds_completed, candidates_skipped }
    }
}

/// How far a budgeted run got before its limit hit. Attached to degraded
/// recommendations so the DBA can see *why* the answer is partial and
/// how much was left on the table.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReport {
    /// Wall-clock time the run consumed.
    pub elapsed: Duration,
    /// Iteration rounds fully completed before stopping.
    pub rounds_completed: usize,
    /// Candidates (queries, index candidates, merge candidates) that
    /// were never evaluated because the budget ran out.
    pub candidates_skipped: usize,
}

impl std::fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget exhausted after {:.1} ms: {} round{} completed, {} candidate{} skipped",
            self.elapsed.as_secs_f64() * 1e3,
            self.rounds_completed,
            if self.rounds_completed == 1 { "" } else { "s" },
            self.candidates_skipped,
            if self.candidates_skipped == 1 { "" } else { "s" },
        )
    }
}

/// The result of a budgeted parallel map: the results for a
/// **contiguous prefix** of the input, plus a count of inputs that were
/// skipped when the budget interrupted the sweep.
///
/// The prefix guarantee is what keeps degraded results *valid*: callers
/// know exactly which inputs `done` covers (`0..done.len()`), never a
/// scattered subset chosen by thread timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partial<R> {
    /// Results for inputs `0..done.len()`, in input order.
    pub done: Vec<R>,
    /// Inputs `done.len()..n` that were not evaluated (or whose results
    /// were discarded to preserve the prefix guarantee).
    pub skipped: usize,
}

impl<R> Partial<R> {
    /// Did the sweep cover every input?
    pub fn is_complete(&self) -> bool {
        self.skipped == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!t2.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.interrupted());
        assert!(!b.exceeded(usize::MAX - 1));
    }

    #[test]
    fn round_cap_is_exact() {
        let b = Budget::rounds(3);
        assert!(!b.exceeded(0));
        assert!(!b.exceeded(2));
        assert!(b.exceeded(3));
        assert!(b.exceeded(4));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::deadline_ms(0);
        assert!(b.interrupted());
        assert!(b.exceeded(0));
    }

    #[test]
    fn cancel_interrupts_any_budget() {
        let b = Budget::unlimited().with_cancel(CancelToken::new());
        assert!(!b.interrupted());
        b.cancel_token().cancel();
        assert!(b.interrupted());
        assert!(b.exceeded(0));
    }

    #[test]
    fn report_display_mentions_counts() {
        let b = Budget::rounds(1);
        let r = b.report(1, 7);
        let s = r.to_string();
        assert!(s.contains("1 round completed"), "{s}");
        assert!(s.contains("7 candidates skipped"), "{s}");
    }
}
