//! # parinda-bench
//!
//! Shared fixtures for the Criterion benchmarks and the `experiments`
//! harness binary that regenerates every quantitative artifact of the
//! paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! recorded results).

#![allow(missing_docs)]

pub mod experiments;

use parinda::{Database, Parinda};
use parinda_workload::{
    generate_and_load, sdss_catalog, sdss_workload, synthesize_stats, SdssScale, SdssTables,
};

/// Paper-scale session: statistics only, ~30 GB simulated.
pub fn paper_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

/// Laptop-scale session with materialized, executable data.
pub fn laptop_session(photo_rows: u64, seed: u64) -> (Parinda, SdssTables) {
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(photo_rows));
    let mut db = Database::new();
    generate_and_load(&mut cat, &mut db, &tables, seed);
    (Parinda::with_database(cat, db), tables)
}

/// The 30-query demo workload.
pub fn workload() -> Vec<parinda::Select> {
    sdss_workload()
}

/// Execute a workload against a session, returning total rows produced
/// (to keep the optimizer honest about dead code).
pub fn execute_workload(session: &Parinda, workload: &[parinda::Select]) -> usize {
    use parinda_executor::execute;
    use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
    let params = CostParams::default();
    let flags = PlannerFlags::default();
    let mut rows = 0;
    for sel in workload {
        let q = bind(sel, session.catalog()).expect("binds");
        let p = plan_query(&q, session.catalog(), &params, &flags).expect("plans");
        rows += execute(&p, session.catalog(), session.database()).expect("executes").len();
    }
    rows
}

/// Simple fixed-width table printer for the experiment harness.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 3);
    }
}
