//! # parinda-bench
//!
//! Shared fixtures for the Criterion benchmarks and the `experiments`
//! harness binary that regenerates every quantitative artifact of the
//! paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
//! recorded results).

#![allow(missing_docs)]

pub mod experiments;

use parinda::{Database, Parinda};
use parinda_workload::{
    generate_and_load, sdss_catalog, sdss_workload, synthesize_stats, SdssScale, SdssTables,
};

/// Paper-scale session: statistics only, ~30 GB simulated.
pub fn paper_session() -> Parinda {
    let (mut cat, tables) = sdss_catalog(SdssScale::paper());
    synthesize_stats(&mut cat, &tables);
    Parinda::new(cat)
}

/// Laptop-scale session with materialized, executable data.
pub fn laptop_session(photo_rows: u64, seed: u64) -> (Parinda, SdssTables) {
    let (mut cat, tables) = sdss_catalog(SdssScale::laptop(photo_rows));
    let mut db = Database::new();
    generate_and_load(&mut cat, &mut db, &tables, seed);
    (Parinda::with_database(cat, db), tables)
}

/// The 30-query demo workload.
pub fn workload() -> Vec<parinda::Select> {
    sdss_workload()
}

/// Execute a workload against a session, returning total rows produced
/// (to keep the optimizer honest about dead code).
pub fn execute_workload(session: &Parinda, workload: &[parinda::Select]) -> usize {
    use parinda_executor::execute;
    use parinda_optimizer::{bind, plan_query, CostParams, PlannerFlags};
    let params = CostParams::default();
    let flags = PlannerFlags::default();
    let mut rows = 0;
    for sel in workload {
        let q = bind(sel, session.catalog()).expect("binds");
        let p = plan_query(&q, session.catalog(), &params, &flags).expect("plans");
        rows += execute(&p, session.catalog(), session.database()).expect("executes").len();
    }
    rows
}

/// Schema for the streaming drift scenario: an astronomy pair of tables
/// (the SDSS-flavored opening workload) and a retail pair (what the
/// workload drifts into). One union schema, because a stream session
/// keeps a single catalog while its workload changes underneath it.
pub const DRIFT_DDL: &str = "
CREATE TABLE photoobj (objid BIGINT NOT NULL, ra DOUBLE PRECISION, dec DOUBLE PRECISION,
                       flags BIGINT, magr DOUBLE PRECISION, PRIMARY KEY (objid)) ROWS 200000;
CREATE TABLE specobj (specid BIGINT NOT NULL, objid BIGINT, z DOUBLE PRECISION,
                      class BIGINT, PRIMARY KEY (specid)) ROWS 50000;
CREATE TABLE orders (o_id BIGINT NOT NULL, o_custkey BIGINT, o_total DOUBLE PRECISION,
                     o_date BIGINT, PRIMARY KEY (o_id)) ROWS 150000;
CREATE TABLE lineitem (l_id BIGINT NOT NULL, l_orderkey BIGINT, l_qty BIGINT,
                       l_price DOUBLE PRECISION, PRIMARY KEY (l_id)) ROWS 600000;";

/// One phase of the drift scenario: a name and the statements to feed,
/// in order, before closing the epoch.
pub struct DriftPhase {
    pub name: &'static str,
    pub statements: Vec<String>,
}

/// The seeded multi-phase drift scenario the stream tests and `ci.sh`
/// replay statement-by-statement: an SDSS-style phase, a transition
/// epoch mixing both workloads, and a retail phase. Literals vary per
/// statement (same seed → same statements, bit for bit), but literals
/// are normalized away by template fingerprinting, so each phase is a
/// stable template mix and the phase boundaries are where drift spikes.
pub fn drift_scenario(seed: u64, per_phase: usize) -> Vec<DriftPhase> {
    let mut state = seed;
    let mut next = move || splitmix64(&mut state);
    let sdss = |r: u64, s: u64| -> String {
        match r % 4 {
            0 => format!(
                "SELECT objid FROM photoobj WHERE ra BETWEEN {} AND {}",
                s % 180,
                s % 180 + 30
            ),
            1 => format!("SELECT objid FROM photoobj WHERE dec > {}", s % 90),
            2 => format!("SELECT objid, ra FROM photoobj WHERE magr < {}", s % 25),
            _ => format!("SELECT specid FROM specobj WHERE z > {}", s % 7),
        }
    };
    let retail = |r: u64, s: u64| -> String {
        match r % 4 {
            0 => format!("SELECT o_id FROM orders WHERE o_custkey = {}", s % 10_000),
            1 => format!(
                "SELECT o_id FROM orders WHERE o_date BETWEEN {} AND {}",
                s % 3650,
                s % 3650 + 30
            ),
            2 => format!("SELECT l_id FROM lineitem WHERE l_orderkey = {}", s % 150_000),
            _ => format!("SELECT l_id FROM lineitem WHERE l_price > {}", s % 1000),
        }
    };
    let phase = |name: &'static str,
                 next: &mut dyn FnMut() -> u64,
                 pick: &dyn Fn(u64, u64, usize) -> String| {
        DriftPhase {
            name,
            statements: (0..per_phase).map(|i| pick(next(), next(), i)).collect(),
        }
    };
    vec![
        phase("sdss", &mut next, &|r, s, _| sdss(r, s)),
        // the transition interleaves deterministically: even positions
        // keep the old workload alive, odd ones introduce the new one
        phase("transition", &mut next, &|r, s, i| {
            if i % 2 == 0 {
                sdss(r, s)
            } else {
                retail(r, s)
            }
        }),
        phase("retail", &mut next, &|r, s, _| retail(r, s)),
    ]
}

/// SplitMix64 — the scenario's only entropy source, so a seed pins the
/// whole stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simple fixed-width table printer for the experiment harness.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 3);
    }
}
